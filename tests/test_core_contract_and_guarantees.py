"""Tests for the approximation contract and the Lemma 1 / Lemma 2 helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.contract import ApproximationContract
from repro.core.guarantees import (
    conservative_quantile_level,
    conservative_upper_bound,
    generalization_error_bound,
    satisfies_probability_threshold,
)
from repro.exceptions import ContractError


class TestContract:
    def test_basic_properties(self):
        contract = ApproximationContract(epsilon=0.05, delta=0.1)
        assert contract.requested_accuracy == pytest.approx(0.95)
        assert contract.confidence == pytest.approx(0.9)

    def test_from_accuracy(self):
        contract = ApproximationContract.from_accuracy(0.99)
        assert contract.epsilon == pytest.approx(0.01)
        assert contract.delta == 0.05

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_epsilon(self, epsilon):
        with pytest.raises(ContractError):
            ApproximationContract(epsilon=epsilon)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.2])
    def test_invalid_delta(self, delta):
        with pytest.raises(ContractError):
            ApproximationContract(epsilon=0.1, delta=delta)

    @pytest.mark.parametrize("accuracy", [0.0, 1.0])
    def test_invalid_accuracy(self, accuracy):
        with pytest.raises(ContractError):
            ApproximationContract.from_accuracy(accuracy)

    def test_describe(self):
        description = ApproximationContract(epsilon=0.2, delta=0.05).describe()
        assert description["requested_accuracy"] == pytest.approx(0.8)


class TestQuantileLevel:
    def test_capped_at_one(self):
        # δ = 0.05 with the 0.95 slack pushes the raw level above 1.
        assert conservative_quantile_level(0.05, 128) == 1.0

    def test_below_one_for_loose_delta(self):
        level = conservative_quantile_level(0.3, 10_000)
        assert 0.7 < level < 0.75

    def test_level_decreases_with_more_samples(self):
        loose = conservative_quantile_level(0.3, 16)
        tight = conservative_quantile_level(0.3, 4096)
        assert tight <= loose

    def test_invalid_inputs(self):
        with pytest.raises(ContractError):
            conservative_quantile_level(0.0, 10)
        with pytest.raises(ContractError):
            conservative_quantile_level(0.1, 0)
        with pytest.raises(ContractError):
            conservative_quantile_level(0.1, 10, slack=1.5)

    @given(delta=st.floats(0.01, 0.5), k=st.integers(2, 5000))
    @settings(max_examples=80, deadline=None)
    def test_property_level_in_unit_interval_and_above_confidence(self, delta, k):
        level = conservative_quantile_level(delta, k)
        assert 0.0 < level <= 1.0
        # The conservative level is never below the nominal confidence 1 − δ
        # capped at 1 (it corrects *upwards* for Monte-Carlo error).
        assert level >= min(1.0 - delta, 1.0) - 1e-12


class TestConservativeUpperBound:
    def test_returns_max_when_level_capped(self):
        values = np.array([0.01, 0.02, 0.5, 0.03])
        assert conservative_upper_bound(values, delta=0.05) == 0.5

    def test_returns_quantile_for_loose_delta(self):
        values = np.linspace(0, 1, 1001)
        bound = conservative_upper_bound(values, delta=0.4)
        # Should be roughly the 64% quantile: (1-0.4)/0.95 + small slack.
        assert 0.6 < bound < 0.7

    def test_bound_dominates_required_fraction_of_values(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(size=500)
        delta = 0.2
        bound = conservative_upper_bound(values, delta)
        level = conservative_quantile_level(delta, 500)
        assert np.mean(values <= bound) >= level - 1e-12

    def test_rejects_empty(self):
        with pytest.raises(ContractError):
            conservative_upper_bound(np.array([]), 0.1)

    @given(
        values=st.lists(st.floats(0, 1), min_size=1, max_size=200),
        delta=st.floats(0.01, 0.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_bound_is_one_of_the_values_and_monotone_in_delta(self, values, delta):
        array = np.array(values)
        bound = conservative_upper_bound(array, delta)
        assert bound in array
        # Smaller δ (stricter) can only increase the bound.
        stricter = conservative_upper_bound(array, delta / 2)
        assert stricter >= bound - 1e-12


class TestProbabilityThreshold:
    def test_all_below_epsilon_satisfies(self):
        values = np.full(64, 0.01)
        assert satisfies_probability_threshold(values, epsilon=0.05, delta=0.05)

    def test_any_violation_fails_under_capped_level(self):
        values = np.full(64, 0.01)
        values[0] = 0.2
        assert not satisfies_probability_threshold(values, epsilon=0.05, delta=0.05)

    def test_partial_violations_allowed_for_loose_delta(self):
        values = np.concatenate([np.full(90, 0.01), np.full(10, 0.9)])
        assert satisfies_probability_threshold(values, epsilon=0.05, delta=0.3)

    def test_empty_rejected(self):
        with pytest.raises(ContractError):
            satisfies_probability_threshold(np.array([]), 0.1, 0.1)


class TestGeneralizationBound:
    def test_formula(self):
        assert generalization_error_bound(0.2, 0.1) == pytest.approx(0.2 + 0.1 - 0.02)

    def test_zero_epsilon_reduces_to_generalization_error(self):
        assert generalization_error_bound(0.3, 0.0) == pytest.approx(0.3)

    def test_bound_stays_in_unit_interval(self):
        assert generalization_error_bound(1.0, 1.0) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ContractError):
            generalization_error_bound(-0.1, 0.1)
        with pytest.raises(ContractError):
            generalization_error_bound(0.1, 1.5)

    @given(eg=st.floats(0, 1), eps=st.floats(0, 1))
    @settings(max_examples=100, deadline=None)
    def test_property_bound_dominates_both_terms_and_stays_in_unit_interval(self, eg, eps):
        bound = generalization_error_bound(eg, eps)
        assert bound >= eg - 1e-12
        assert bound >= eps - 1e-12
        assert bound <= 1.0 + 1e-12
