"""Hypothesis property tests on the BlinkML core machinery.

Invariants checked:

* the α scale of Theorem 1 is non-negative, decreasing in n and zero at
  n = N;
* sampling-by-scaling is exact: draws for any (n, N) are deterministic
  rescalings of the cached base draws;
* the conservative quantile (Lemma 2) always dominates the plain empirical
  quantile at level 1 − δ;
* the Lemma 1 bound is monotone in both arguments.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.guarantees import (
    conservative_upper_bound,
    generalization_error_bound,
)
from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import ModelStatistics, StatisticsMethod
from repro.linalg.covariance import FactoredCovariance


def make_statistics(seed: int, d: int = 4, n: int = 200) -> ModelStatistics:
    rng = np.random.default_rng(seed)
    Q = rng.normal(size=(n, d))
    covariance = FactoredCovariance.from_per_example_gradients(Q, regularization=0.05)
    return ModelStatistics(
        covariance=covariance,
        method=StatisticsMethod.OBSERVED_FISHER,
        sample_size=n,
    )


class TestAlphaProperties:
    @given(
        n=st.integers(1, 10_000),
        extra=st.integers(0, 1_000_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_alpha_nonnegative_and_zero_at_full_size(self, n, extra):
        N = n + extra
        alpha = ParameterSampler.alpha(n, N)
        assert alpha >= 0.0
        assert ParameterSampler.alpha(N, N) == 0.0

    @given(
        n1=st.integers(1, 5_000),
        n2=st.integers(1, 5_000),
        N=st.integers(5_001, 100_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_alpha_decreasing_in_n(self, n1, n2, N):
        small, large = sorted((n1, n2))
        assert ParameterSampler.alpha(large, N) <= ParameterSampler.alpha(small, N)


class TestSamplingByScaling:
    @given(
        seed=st.integers(0, 1000),
        n_a=st.integers(100, 5_000),
        n_b=st.integers(100, 5_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_scaled_draws_share_base_samples(self, seed, n_a, n_b):
        stats = make_statistics(seed)
        sampler = ParameterSampler(stats, rng=np.random.default_rng(seed))
        N = 100_000
        center = np.zeros(stats.dimension)
        draws_a = sampler.sample_around(center, n=n_a, N=N, count=16)
        draws_b = sampler.sample_around(center, n=n_b, N=N, count=16)
        alpha_a = ParameterSampler.alpha(n_a, N)
        alpha_b = ParameterSampler.alpha(n_b, N)
        rescaled = draws_a * np.sqrt(alpha_b / alpha_a)
        np.testing.assert_allclose(draws_b, rescaled, atol=1e-10)

    @given(seed=st.integers(0, 1000), count=st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_base_draws_live_in_factor_range(self, seed, count):
        stats = make_statistics(seed, d=6, n=50)
        sampler = ParameterSampler(stats, rng=np.random.default_rng(seed))
        base = sampler.base_samples(count)
        # Every draw must lie in the column space of the transform L.
        transform = stats.covariance.transform
        projector = transform @ np.linalg.pinv(transform)
        np.testing.assert_allclose(base @ projector.T, base, atol=1e-8)


class TestGuaranteeProperties:
    @given(
        values=st.lists(st.floats(0, 1), min_size=5, max_size=300),
        delta=st.floats(0.01, 0.5),
    )
    @settings(max_examples=80, deadline=None)
    def test_conservative_bound_dominates_plain_quantile(self, values, delta):
        # conservative_upper_bound takes the smallest order statistic whose
        # *empirical CDF* reaches the (inflated) Lemma-2 level, i.e. the
        # inverted-CDF quantile convention.  Compare against the same
        # convention: np.quantile's "higher" method uses (n−1)-based
        # positions and can exceed the inverted-CDF quantile by one order
        # statistic, which is not a failure of conservativeness (found by
        # hypothesis at values=[0,0,0,1,1], delta≈0.498).
        array = np.array(values)
        conservative = conservative_upper_bound(array, delta)
        plain = float(np.quantile(array, 1.0 - delta, method="inverted_cdf"))
        assert conservative >= plain - 1e-12

    @given(
        eg1=st.floats(0, 1),
        eg2=st.floats(0, 1),
        eps=st.floats(0, 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_generalization_bound_monotone(self, eg1, eg2, eps):
        low, high = sorted((eg1, eg2))
        assert generalization_error_bound(low, eps) <= generalization_error_bound(high, eps) + 1e-12

    @given(eg=st.floats(0, 1), eps1=st.floats(0, 1), eps2=st.floats(0, 1))
    @settings(max_examples=80, deadline=None)
    def test_generalization_bound_monotone_in_epsilon(self, eg, eps1, eps2):
        low, high = sorted((eps1, eps2))
        assert generalization_error_bound(eg, low) <= generalization_error_bound(eg, high) + 1e-12
