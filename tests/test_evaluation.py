"""Tests for the evaluation metrics, experiment runners and reporting helpers."""

import numpy as np
import pytest

from repro.baselines import FixedRatioBaseline, FullTrainingBaseline
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation import (
    classification_accuracy,
    format_table,
    generalization_error,
    measure_full_training,
    model_agreement,
    percentile,
    regression_r2,
    run_accuracy_sweep,
    run_baseline_comparison,
    summarize,
)
from repro.exceptions import DataError
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec


@pytest.fixture(scope="module")
def eval_splits():
    data = higgs_like(n_rows=10_000, n_features=10, seed=80)
    return train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0))


class TestMetrics:
    def test_classification_accuracy_and_error_sum_to_one(self, eval_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        model = spec.fit(eval_splits.train)
        accuracy = classification_accuracy(model, eval_splits.test)
        error = generalization_error(model, eval_splits.test)
        assert accuracy + error == pytest.approx(1.0)
        assert accuracy > 0.5

    def test_classification_accuracy_needs_labels(self, eval_splits):
        spec = LogisticRegressionSpec()
        model = spec.fit(eval_splits.train)
        unlabeled = Dataset(eval_splits.test.X)
        with pytest.raises(DataError):
            classification_accuracy(model, unlabeled)

    def test_regression_r2(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 3))
        y = X @ np.array([1.0, 2.0, -1.0]) + rng.normal(scale=0.1, size=500)
        data = Dataset(X, y)
        spec = LinearRegressionSpec(regularization=1e-5)
        model = spec.fit(data)
        assert regression_r2(model, data) > 0.95

    def test_model_agreement_bounds(self, eval_splits):
        spec = LogisticRegressionSpec()
        model = spec.fit(eval_splits.train)
        assert model_agreement(spec, model.theta, model.theta, eval_splits.holdout) == 1.0
        rng = np.random.default_rng(1)
        other = rng.normal(size=model.theta.shape)
        agreement = model_agreement(spec, model.theta, other, eval_splits.holdout)
        assert 0.0 <= agreement <= 1.0


class TestExperimentRunners:
    def test_measure_full_training(self, eval_splits):
        model, seconds = measure_full_training(LogisticRegressionSpec(), eval_splits)
        assert seconds > 0
        assert model.n_train == eval_splits.train.n_rows

    def test_run_accuracy_sweep_records(self, eval_splits):
        records = run_accuracy_sweep(
            spec_factory=lambda: LogisticRegressionSpec(regularization=1e-3),
            splits=eval_splits,
            requested_accuracies=[0.85, 0.95],
            initial_sample_size=500,
            n_parameter_samples=32,
            seed=0,
        )
        assert len(records) == 2
        for record in records:
            assert 0 <= record.actual_accuracy <= 1
            assert record.sample_size <= record.full_size
            assert 0 <= record.sample_fraction <= 1
            assert record.speedup > 0
            assert record.time_saving <= 1
            row = record.as_dict()
            assert "requested_accuracy" in row and "speedup" in row

    def test_sweep_actual_accuracy_meets_request(self, eval_splits):
        records = run_accuracy_sweep(
            spec_factory=lambda: LogisticRegressionSpec(regularization=1e-3),
            splits=eval_splits,
            requested_accuracies=[0.9],
            initial_sample_size=500,
            n_parameter_samples=64,
            seed=1,
        )
        assert records[0].actual_accuracy >= 0.9 - 0.03

    def test_run_baseline_comparison(self, eval_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        full_model, _ = measure_full_training(spec, eval_splits)
        rows = run_baseline_comparison(
            baselines=[
                FixedRatioBaseline(spec, ratio=0.02, seed=0),
                FullTrainingBaseline(spec, seed=0),
            ],
            splits=eval_splits,
            requested_accuracies=[0.9, 0.95],
            full_model=full_model,
        )
        assert len(rows) == 4
        policies = {row["policy"] for row in rows}
        assert policies == {"fixed_ratio", "full_training"}
        full_rows = [row for row in rows if row["policy"] == "full_training"]
        assert all(row["actual_accuracy"] == pytest.approx(1.0) for row in full_rows)


class TestReporting:
    def test_percentile_and_summarize(self):
        values = list(range(101))
        assert percentile(values, 50) == pytest.approx(50)
        stats = summarize(values)
        assert stats["mean"] == pytest.approx(50)
        assert stats["p5"] == pytest.approx(5)
        assert stats["p95"] == pytest.approx(95)

    def test_format_table_alignment(self):
        rows = [
            {"name": "a", "value": 1.23456},
            {"name": "long-name", "value": 7},
        ]
        table = format_table(rows)
        lines = table.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "name" in lines[0] and "value" in lines[0]
        assert len({len(line) for line in lines[2:]}) >= 1

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        table = format_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]
