"""Tests for the linear regression model class specification."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.linear_regression import LinearRegressionSpec


@pytest.fixture(scope="module")
def small_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 6))
    theta_true = rng.normal(size=6)
    y = X @ theta_true + rng.normal(scale=0.1, size=400)
    return Dataset(X, y), theta_true


class TestObjective:
    def test_loss_at_truth_is_small(self, small_data):
        data, theta_true = small_data
        spec = LinearRegressionSpec(regularization=0.0)
        noise_level = spec.loss(theta_true, data)
        assert noise_level < 0.02  # ~0.5 * noise variance

    def test_gradient_matches_numerical(self, small_data, gradient_checker):
        data, _ = small_data
        spec = LinearRegressionSpec(regularization=0.01)
        theta = np.linspace(-1, 1, 6)
        numerical = gradient_checker(lambda t: spec.loss(t, data), theta)
        np.testing.assert_allclose(spec.gradient(theta, data), numerical, atol=1e-5)

    def test_per_example_gradients_average_to_data_gradient(self, small_data):
        data, _ = small_data
        spec = LinearRegressionSpec(regularization=0.05)
        theta = np.ones(6)
        per_example = spec.per_example_gradients(theta, data)
        assert per_example.shape == (data.n_rows, 6)
        expected = per_example.mean(axis=0) + spec.regularizer_gradient(theta)
        np.testing.assert_allclose(spec.gradient(theta, data), expected)

    def test_grads_includes_regularizer(self, small_data):
        data, _ = small_data
        spec = LinearRegressionSpec(regularization=0.5)
        theta = np.ones(6)
        grads = spec.grads(theta, data)
        per_example = spec.per_example_gradients(theta, data)
        np.testing.assert_allclose(grads - per_example, np.tile(0.5 * theta, (data.n_rows, 1)))

    def test_hessian_is_closed_form(self, small_data, gradient_checker):
        data, _ = small_data
        spec = LinearRegressionSpec(regularization=0.1)
        assert spec.has_closed_form_hessian
        theta = np.zeros(6)
        H = spec.hessian(theta, data)
        # Each Hessian column equals the numerical derivative of the gradient.
        for j in range(3):
            unit = np.zeros(6)
            unit[j] = 1.0
            numerical_col = gradient_checker(
                lambda t: float(spec.gradient(t, data) @ unit), theta
            )
            np.testing.assert_allclose(H[:, j], numerical_col, atol=1e-5)

    def test_negative_regularization_rejected(self):
        with pytest.raises(ModelSpecError):
            LinearRegressionSpec(regularization=-0.1)

    def test_requires_labels(self):
        spec = LinearRegressionSpec()
        data = Dataset(np.zeros((5, 2)))
        with pytest.raises(ModelSpecError):
            spec.loss(np.zeros(2), data)


class TestFitAndPredict:
    def test_fit_recovers_true_parameters(self, small_data):
        data, theta_true = small_data
        spec = LinearRegressionSpec(regularization=1e-6)
        model = spec.fit(data)
        np.testing.assert_allclose(model.theta, theta_true, atol=0.05)

    def test_fit_matches_ridge_closed_form(self, small_data):
        data, _ = small_data
        beta = 0.1
        spec = LinearRegressionSpec(regularization=beta)
        model = spec.fit(data)
        n, d = data.X.shape
        closed_form = np.linalg.solve(
            data.X.T @ data.X / n + beta * np.eye(d), data.X.T @ data.y / n
        )
        np.testing.assert_allclose(model.theta, closed_form, atol=1e-4)

    def test_predictions_are_linear(self, small_data):
        data, _ = small_data
        spec = LinearRegressionSpec()
        theta = np.arange(6, dtype=float)
        np.testing.assert_allclose(spec.predict(theta, data.X), data.X @ theta)


class TestDifference:
    def test_zero_for_identical_parameters(self, small_data):
        data, _ = small_data
        spec = LinearRegressionSpec()
        theta = np.ones(6)
        assert spec.prediction_difference(theta, theta, data) == 0.0

    def test_symmetry(self, small_data):
        data, _ = small_data
        spec = LinearRegressionSpec()
        a, b = np.ones(6), np.zeros(6)
        assert spec.prediction_difference(a, b, data) == pytest.approx(
            spec.prediction_difference(b, a, data)
        )

    def test_normalisation_uses_label_scale(self, small_data):
        data, _ = small_data
        normalized = LinearRegressionSpec(normalize_difference=True)
        raw = LinearRegressionSpec(normalize_difference=False)
        a, b = np.ones(6), np.zeros(6)
        ratio = raw.prediction_difference(a, b, data) / normalized.prediction_difference(a, b, data)
        assert ratio == pytest.approx(float(np.std(data.y)))

    def test_grows_with_parameter_distance(self, small_data):
        data, _ = small_data
        spec = LinearRegressionSpec()
        base = np.zeros(6)
        near = np.full(6, 0.01)
        far = np.full(6, 1.0)
        assert spec.prediction_difference(base, near, data) < spec.prediction_difference(
            base, far, data
        )

    def test_describe(self):
        description = LinearRegressionSpec(regularization=0.2).describe()
        assert description["model"] == "lin"
        assert description["regularization"] == 0.2
