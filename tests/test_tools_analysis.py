"""Tests for the repo-specific invariant linter (``tools.analysis``).

Three layers:

* **fixture mini-packages** — one positive and one negative case per rule,
  built in ``tmp_path`` so each rule's trigger and its blessed idiom are
  pinned down independently of the real tree;
* **deletion detection** — mutate a *real* module (drop a ``freeze()``
  wrapper, drop a lock ``with`` block) and assert the linter notices,
  which is the property the tentpole exists for;
* **the clean-tree gate** — the real repository must produce zero
  findings, making this test module the enforcement point of every
  invariant in docs/invariants.md.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from tools.analysis import run_analysis
from tools.analysis.__main__ import main as analysis_main
from tools.analysis.context import ModuleContext
from tools.analysis.rules import (
    ALL_RULES,
    rep002_frozen,
    rep003_locks,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# Fixture repo scaffolding
# ----------------------------------------------------------------------
BASE_FILES = {
    "src/repro/__init__.py": '''\
        """Fixture package."""

        __all__ = ["thing"]


        def thing() -> int:
            return 7
        ''',
    "src/repro/config.py": '''\
        """Fixture config (no knobs)."""
        ''',
    "docs/api.md": "# API\n\nThe `thing` helper.\n",
    "docs/serving.md": "# Serving\n\n(no knobs)\n",
}


def make_repo(tmp_path: Path, files: dict[str, str] | None = None) -> Path:
    """A minimal analysable tree: base package + per-test overlays."""
    tree = dict(BASE_FILES)
    tree.update(files or {})
    for relpath, source in tree.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return tmp_path


def findings_for(root: Path, rule: str | None = None) -> list:
    findings = run_analysis(root)
    if rule is not None:
        findings = [f for f in findings if f.rule == rule]
    return findings


def test_base_fixture_tree_is_clean(tmp_path):
    assert findings_for(make_repo(tmp_path)) == []


# ----------------------------------------------------------------------
# REP001 — no global NumPy RNG
# ----------------------------------------------------------------------
class TestRep001:
    def test_global_rng_calls_are_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/bad_rng.py": """\
                    import numpy as np


                    def draw() -> np.ndarray:
                        np.random.seed(0)
                        return np.random.rand(3)
                    """
            },
        )
        found = findings_for(root, "REP001")
        assert len(found) == 2
        assert all("np.random" in f.message for f in found)
        assert {f.line for f in found} == {5, 6}

    def test_import_of_global_function_is_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/bad_import.py": """\
                    from numpy.random import shuffle  # noqa: F401
                    """
            },
        )
        assert len(findings_for(root, "REP001")) == 1

    def test_seeded_generators_are_allowed(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/good_rng.py": """\
                    import numpy as np
                    from numpy.random import default_rng


                    def draw(seed: int) -> np.ndarray:
                        rng = np.random.default_rng(seed)
                        other = default_rng(np.random.SeedSequence(seed))
                        return rng.random(3) + other.random(3)
                    """
            },
        )
        assert findings_for(root, "REP001") == []


# ----------------------------------------------------------------------
# REP002 — frozen-array discipline
# ----------------------------------------------------------------------
class TestRep002:
    def test_raw_writeable_flag_assignment_is_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/raw_flag.py": """\
                    import numpy as np


                    def lock_down(a: np.ndarray) -> np.ndarray:
                        a.flags.writeable = False
                        return a
                    """
            },
        )
        found = findings_for(root, "REP002")
        assert len(found) == 1
        assert "freeze()" in found[0].message

    def test_frozen_attr_assignment_must_flow_through_freeze(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/frozen_attr.py": """\
                    import numpy as np

                    from repro.linalg.utils import freeze


                    class Holder:
                        def __init__(self) -> None:
                            self._vec = None  # repro-lint: frozen-attr

                        def set_good(self, d: np.ndarray) -> None:
                            self._vec = freeze(np.sort(d))

                        def set_bad(self, d: np.ndarray) -> None:
                            self._vec = np.sort(d)
                    """
            },
        )
        found = findings_for(root, "REP002")
        assert len(found) == 1
        assert "_vec" in found[0].message
        assert found[0].line == 14

    def test_frozen_attr_reads_carry_frozenness(self, tmp_path):
        # Double-checked locking re-reads the attribute; that read is as
        # frozen as what was stored, so re-assigning it is fine.
        root = make_repo(
            tmp_path,
            {
                "src/repro/reread.py": """\
                    import numpy as np

                    from repro.linalg.utils import freeze


                    class Holder:
                        def __init__(self) -> None:
                            self._vec = None  # repro-lint: frozen-attr

                        def ensure(self, d: np.ndarray) -> np.ndarray:
                            cached = self._vec
                            if cached is None:
                                cached = freeze(np.sort(d))
                            self._vec = cached
                            return cached
                    """
            },
        )
        assert findings_for(root, "REP002") == []

    def test_frozen_cache_put_and_factory(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/cachey.py": """\
                    import numpy as np

                    from repro.core.caching import LRUCache
                    from repro.linalg.utils import freeze


                    class Holder:
                        def __init__(self) -> None:
                            self._cache = LRUCache("c")  # repro-lint: frozen-cache

                        def put_good(self, key: str, d: np.ndarray) -> None:
                            self._cache.put(key, freeze(np.sort(d)))

                        def put_bad(self, key: str, d: np.ndarray) -> None:
                            self._cache.put(key, np.sort(d))

                        def compute_good(self, key: str, d: np.ndarray) -> object:
                            return self._cache.get_or_compute(
                                key, lambda: freeze(np.sort(d))
                            )

                        def compute_bad(self, key: str, d: np.ndarray) -> object:
                            return self._cache.get_or_compute(
                                key, lambda: np.sort(d)
                            )
                    """
            },
        )
        found = findings_for(root, "REP002")
        assert len(found) == 2
        messages = " ".join(f.message for f in found)
        assert "stored in frozen cache" in messages
        assert "factory passed to frozen cache" in messages

    def test_returns_frozen_annotation(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/returner.py": """\
                    import numpy as np

                    from repro.linalg.utils import freeze


                    def good(d: np.ndarray) -> np.ndarray:  # repro-lint: returns-frozen
                        return freeze(np.sort(d))


                    def bad(d: np.ndarray) -> np.ndarray:  # repro-lint: returns-frozen
                        return np.sort(d)
                    """
            },
        )
        found = findings_for(root, "REP002")
        assert len(found) == 1
        assert "`bad`" in found[0].message


# ----------------------------------------------------------------------
# REP003 — lock discipline
# ----------------------------------------------------------------------
_LOCKED_CLASS = """\
    import threading


    class Box:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._items: list[int] = []  # guarded-by: _lock

        def add_good(self, value: int) -> None:
            with self._lock:
                self._items.append(value)

        def _drain_locked(self) -> list[int]:  # repro-lint: holds=_lock
            drained = list(self._items)
            self._items = []
            return drained

        def add_bad(self, value: int) -> None:
            self._items.append(value)
    """


class TestRep003:
    def test_unlocked_mutation_is_flagged(self, tmp_path):
        root = make_repo(tmp_path, {"src/repro/boxy.py": _LOCKED_CLASS})
        found = findings_for(root, "REP003")
        assert len(found) == 1
        assert "_items" in found[0].message
        assert found[0].line == 19  # the append in add_bad

    def test_init_and_holds_and_with_are_exempt(self, tmp_path):
        clean = _LOCKED_CLASS.replace(
            "        def add_bad(self, value: int) -> None:\n"
            "            self._items.append(value)\n",
            "",
        )
        assert clean != _LOCKED_CLASS
        root = make_repo(tmp_path, {"src/repro/boxy.py": clean})
        assert findings_for(root, "REP003") == []

    def test_module_level_lock_discipline(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/modglobal.py": """\
                    import threading

                    _LOCK = threading.Lock()
                    _POOL: dict[int, str] = {}  # guarded-by: _LOCK


                    def put_good(key: int, value: str) -> None:
                        with _LOCK:
                            _POOL[key] = value


                    def put_bad(key: int, value: str) -> None:
                        _POOL[key] = value
                    """
            },
        )
        found = findings_for(root, "REP003")
        assert len(found) == 1
        assert found[0].line == 13


# ----------------------------------------------------------------------
# REP004 — process-backend picklability
# ----------------------------------------------------------------------
class TestRep004:
    def test_lambda_bound_without_pickle_pair_is_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/accum.py": """\
                    class FancyAccumulator:
                        def configure(self, scale: float) -> None:
                            self._fn = lambda x: x * scale
                    """
            },
        )
        found = findings_for(root, "REP004")
        assert len(found) == 1
        assert "__getstate__" in found[0].message

    def test_pickle_pair_silences_the_rule(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/accum_ok.py": """\
                    class FancyAccumulator:
                        def configure(self, scale: float) -> None:
                            self._fn = lambda x: x * scale

                        def __getstate__(self) -> dict:
                            state = dict(self.__dict__)
                            state["_fn"] = None
                            return state

                        def __setstate__(self, state: dict) -> None:
                            self.__dict__.update(state)
                    """
            },
        )
        assert findings_for(root, "REP004") == []

    def test_non_target_classes_are_ignored(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/plain.py": """\
                    class Plain:
                        def configure(self, scale: float) -> None:
                            self._fn = lambda x: x * scale
                    """
            },
        )
        assert findings_for(root, "REP004") == []


# ----------------------------------------------------------------------
# REP005 — config-knob parity
# ----------------------------------------------------------------------
_KNOB_DOC = """\
    # Serving

    | knob | default | env-overridable |
    | --- | --- | --- |
    | `DEFAULT_FOO` | 3 | **yes** |
    """


class TestRep005:
    def test_bare_constant_is_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/config.py": '"""Cfg."""\n\nDEFAULT_FOO = 3\n',
                "docs/serving.md": _KNOB_DOC,
            },
        )
        found = findings_for(root, "REP005")
        assert len(found) == 1
        assert "bare constant" in found[0].message

    def test_env_name_must_match_knob_name(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/config.py": (
                    '"""Cfg."""\n\nDEFAULT_FOO = _env_int("DEFAULT_BAR", 3)\n'
                ),
                "docs/serving.md": _KNOB_DOC,
            },
        )
        found = findings_for(root, "REP005")
        assert len(found) == 1
        assert "its own name" in found[0].message

    def test_parity_holds_for_wrapped_and_documented_knob(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/config.py": (
                    '"""Cfg."""\n\nDEFAULT_FOO = _env_int("DEFAULT_FOO", 3)\n'
                ),
                "docs/serving.md": _KNOB_DOC,
            },
        )
        assert findings_for(root, "REP005") == []

    def test_missing_doc_row_and_stale_doc_row(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/config.py": (
                    '"""Cfg."""\n\nDEFAULT_FOO = _env_int("DEFAULT_FOO", 3)\n'
                ),
                "docs/serving.md": """\
                    # Serving

                    | knob | default | env-overridable |
                    | --- | --- | --- |
                    | `DEFAULT_GONE` | 1 | **yes** |
                    """,
            },
        )
        found = findings_for(root, "REP005")
        messages = " ".join(f.message for f in found)
        assert "no row" in messages  # DEFAULT_FOO undocumented
        assert "does not define it" in messages  # DEFAULT_GONE stale

    def test_doc_row_must_say_yes(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/config.py": (
                    '"""Cfg."""\n\nDEFAULT_FOO = _env_int("DEFAULT_FOO", 3)\n'
                ),
                "docs/serving.md": _KNOB_DOC.replace("**yes**", "no"),
            },
        )
        found = findings_for(root, "REP005")
        assert len(found) == 1
        assert "**yes**" in found[0].message


# ----------------------------------------------------------------------
# REP006 — public-API parity
# ----------------------------------------------------------------------
class TestRep006:
    def test_phantom_export_is_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/__init__.py": """\
                    \"\"\"Fixture package.\"\"\"

                    __all__ = ["thing", "ghost"]


                    def thing() -> int:
                        return 7
                    """
            },
        )
        found = findings_for(root, "REP006")
        # A phantom export is doubly wrong: nothing binds it, and the doc
        # cannot document it.  Both findings name it.
        assert len(found) == 2
        assert all("ghost" in f.message for f in found)
        assert any("nothing binds it" in f.message for f in found)

    def test_unexported_public_binding_is_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/__init__.py": """\
                    \"\"\"Fixture package.\"\"\"

                    __all__ = ["thing"]


                    def thing() -> int:
                        return 7


                    def stray() -> int:
                        return 8
                    """
            },
        )
        found = findings_for(root, "REP006")
        assert len(found) == 1
        assert "stray" in found[0].message

    def test_undocumented_export_is_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/__init__.py": """\
                    \"\"\"Fixture package.\"\"\"

                    __all__ = ["thing", "helper"]


                    def thing() -> int:
                        return 7


                    def helper() -> int:
                        return 8
                    """
            },
        )
        found = findings_for(root, "REP006")
        assert len(found) == 1
        assert "helper" in found[0].message
        assert "docs/api.md" in found[0].message


# ----------------------------------------------------------------------
# REP007 — typed-def coverage
# ----------------------------------------------------------------------
class TestRep007:
    def test_unannotated_defs_are_flagged(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/untyped.py": """\
                    def no_param_type(x) -> int:
                        return x


                    def no_return(x: int):
                        return x


                    def no_star(*args, **kwargs) -> None:
                        pass
                    """
            },
        )
        found = findings_for(root, "REP007")
        assert len(found) == 3
        by_line = {f.line: f.message for f in found}
        assert "x" in by_line[1]
        assert "return annotation" in by_line[5]
        assert "*args" in by_line[9] and "**kwargs" in by_line[9]

    def test_init_may_omit_return_and_self_is_skipped(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/typed.py": """\
                    class Thing:
                        def __init__(self, size: int):
                            self.size = size

                        def grow(self, by: int) -> int:
                            self.size += by
                            return self.size

                        @classmethod
                        def default(cls) -> "Thing":
                            return cls(0)
                    """
            },
        )
        assert findings_for(root, "REP007") == []


# ----------------------------------------------------------------------
# Suppressions (REP000 bookkeeping)
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_disable_with_reason_suppresses_and_is_not_stale(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/suppressed.py": """\
                    import numpy as np


                    def draw() -> None:
                        np.random.seed(0)  # repro-lint: disable=REP001 (fixture exercising the legacy path)
                    """
            },
        )
        assert findings_for(root) == []

    def test_disable_without_reason_is_rep000(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/bare_disable.py": """\
                    import numpy as np


                    def draw() -> None:
                        np.random.seed(0)  # repro-lint: disable=REP001
                    """
            },
        )
        found = findings_for(root)
        rules = {f.rule for f in found}
        # The finding survives AND the bare disable is itself reported.
        assert rules == {"REP000", "REP001"}

    def test_stale_suppression_is_rep000(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/stale.py": """\
                    def fine() -> int:  # repro-lint: disable=REP001 (nothing here triggers it)
                        return 1
                    """
            },
        )
        found = findings_for(root)
        assert len(found) == 1
        assert found[0].rule == "REP000"
        assert "stale suppression" in found[0].message

    def test_standalone_disable_covers_next_statement(self, tmp_path):
        root = make_repo(
            tmp_path,
            {
                "src/repro/standalone.py": """\
                    import numpy as np


                    def draw() -> None:
                        # repro-lint: disable=REP001 (fixture exercising the legacy path)
                        np.random.seed(0)
                    """
            },
        )
        assert findings_for(root) == []


# ----------------------------------------------------------------------
# Deletion detection on REAL modules — the property the linter is for
# ----------------------------------------------------------------------
class TestDeletionDetection:
    def _mutated_module(self, tmp_path, relpath: str, old: str, new: str):
        source = (REPO_ROOT / relpath).read_text(encoding="utf-8")
        assert old in source, f"anchor text missing from {relpath}: {old!r}"
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source.replace(old, new, 1), encoding="utf-8")
        return ModuleContext(tmp_path, path)

    def test_unchanged_real_sampler_is_clean(self, tmp_path):
        module = self._mutated_module(
            tmp_path, "src/repro/data/sampling.py", "freeze(", "freeze("
        )
        assert list(rep002_frozen.check_module(module)) == []

    def test_deleting_a_freeze_wrapper_is_caught(self, tmp_path):
        # Drop the freeze() around the sampler's cached permutation — the
        # exact regression REP002 exists to stop.
        module = self._mutated_module(
            tmp_path,
            "src/repro/data/sampling.py",
            "freeze(self._rng.permutation(self._dataset.n_rows))",
            "self._rng.permutation(self._dataset.n_rows)",
        )
        found = list(rep002_frozen.check_module(module))
        assert len(found) >= 1
        assert any("_permutation" in f.message for f in found)

    def test_unchanged_real_cache_is_clean(self, tmp_path):
        module = self._mutated_module(
            tmp_path, "src/repro/core/caching.py", "with self._lock:", "with self._lock:"
        )
        assert list(rep003_locks.check_module(module)) == []

    def test_deleting_a_lock_block_is_caught(self, tmp_path):
        # Replace one lock acquisition with a plain block: the mutations
        # inside it are now unguarded and REP003 must fire.
        module = self._mutated_module(
            tmp_path, "src/repro/core/caching.py", "with self._lock:", "if True:"
        )
        found = list(rep003_locks.check_module(module))
        assert len(found) >= 1
        assert all(f.rule == "REP003" for f in found)


# ----------------------------------------------------------------------
# The clean-tree gate + CLI
# ----------------------------------------------------------------------
class TestRealTree:
    def test_repository_is_invariant_clean(self):
        findings = run_analysis(REPO_ROOT)
        rendered = "\n".join(f.render() for f in findings)
        assert findings == [], f"invariant findings on the real tree:\n{rendered}"

    def test_cli_check_passes_on_real_tree(self, capsys):
        assert analysis_main(["--check"]) == 0
        assert "invariant lint clean." in capsys.readouterr().out

    def test_cli_lists_every_rule(self, capsys):
        assert analysis_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.RULE_ID in out
        assert len(ALL_RULES) == 7

    def test_cli_exits_nonzero_on_findings(self, capsys, monkeypatch, tmp_path):
        # Point the CLI at a fixture tree by analysing one bad file in
        # place under the real root is not possible, so go through
        # run_analysis directly and mirror the CLI contract instead.
        root = make_repo(
            tmp_path,
            {
                "src/repro/bad.py": "import numpy as np\n\n\ndef d() -> float:\n    return np.random.rand()\n"
            },
        )
        findings = run_analysis(root)
        assert findings, "expected the fixture violation to be reported"


@pytest.mark.parametrize("rule", [r.RULE_ID for r in ALL_RULES])
def test_every_rule_has_id_and_summary(rule):
    assert rule.startswith("REP")
    module = next(r for r in ALL_RULES if r.RULE_ID == rule)
    assert isinstance(module.SUMMARY, str) and module.SUMMARY
