"""Tests for the max-entropy (softmax) classifier specification."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.max_entropy import MaxEntropySpec, softmax


@pytest.fixture(scope="module")
def blob_data():
    rng = np.random.default_rng(2)
    n_per_class, d, K = 150, 4, 3
    centers = rng.normal(scale=3.0, size=(K, d))
    X = np.vstack([rng.normal(size=(n_per_class, d)) + centers[k] for k in range(K)])
    y = np.repeat(np.arange(K), n_per_class)
    permutation = rng.permutation(len(y))
    return Dataset(X[permutation], y[permutation]), K


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        probabilities = softmax(rng.normal(size=(10, 4)))
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(10))

    def test_stability_for_large_logits(self):
        probabilities = softmax(np.array([[1000.0, 0.0, -1000.0]]))
        assert np.all(np.isfinite(probabilities))
        assert probabilities[0, 0] == pytest.approx(1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


class TestObjective:
    def test_parameter_count(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec(n_classes=K)
        assert spec.n_parameters(data) == K * data.n_features

    def test_class_count_inferred_from_labels(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec()
        assert spec.n_parameters(data) == K * data.n_features
        assert spec.n_classes == K

    def test_loss_at_zero_is_log_K(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec(n_classes=K, regularization=0.0)
        theta = np.zeros(K * data.n_features)
        assert spec.loss(theta, data) == pytest.approx(np.log(K))

    def test_gradient_matches_numerical(self, blob_data, gradient_checker):
        data, K = blob_data
        small = data.take(np.arange(80))
        spec = MaxEntropySpec(n_classes=K, regularization=0.01)
        rng = np.random.default_rng(3)
        theta = 0.1 * rng.normal(size=K * data.n_features)
        numerical = gradient_checker(lambda t: spec.loss(t, small), theta)
        np.testing.assert_allclose(spec.gradient(theta, small), numerical, atol=1e-5)

    def test_hessian_matches_numerical(self, blob_data, gradient_checker):
        data, K = blob_data
        small = data.take(np.arange(50))
        spec = MaxEntropySpec(n_classes=K, regularization=0.05)
        theta = np.full(K * data.n_features, 0.1)
        H = spec.hessian(theta, small)
        p = K * data.n_features
        assert H.shape == (p, p)
        for j in [0, p // 2, p - 1]:
            unit = np.zeros(p)
            unit[j] = 1.0
            numerical_col = gradient_checker(
                lambda t: float(spec.gradient(t, small) @ unit), theta
            )
            np.testing.assert_allclose(H[:, j], numerical_col, atol=1e-5)

    def test_per_example_gradient_shape(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec(n_classes=K)
        theta = np.zeros(K * data.n_features)
        per_example = spec.per_example_gradients(theta, data)
        assert per_example.shape == (data.n_rows, K * data.n_features)

    def test_rejects_labels_outside_class_range(self):
        spec = MaxEntropySpec(n_classes=2)
        data = Dataset(np.zeros((3, 2)), np.array([0, 1, 2]))
        with pytest.raises(ModelSpecError):
            spec.loss(np.zeros(4), data)

    def test_rejects_single_class_configuration(self):
        with pytest.raises(ModelSpecError):
            MaxEntropySpec(n_classes=1)

    def test_reshape_validates_length(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec(n_classes=K)
        with pytest.raises(ModelSpecError):
            spec.reshape(np.zeros(5), data.n_features)


class TestFitPredictDiff:
    def test_fit_reaches_high_training_accuracy(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec(n_classes=K, regularization=1e-3)
        model = spec.fit(data)
        accuracy = float(np.mean(model.predict(data.X) == data.y))
        assert accuracy > 0.9

    def test_predictions_in_class_range(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec(n_classes=K)
        predictions = spec.predict(np.zeros(K * data.n_features) + 0.1, data.X)
        assert set(np.unique(predictions)) <= set(range(K))

    def test_difference_identical_and_bounds(self, blob_data):
        data, K = blob_data
        spec = MaxEntropySpec(n_classes=K)
        rng = np.random.default_rng(4)
        theta_a = rng.normal(size=K * data.n_features)
        theta_b = rng.normal(size=K * data.n_features)
        assert spec.prediction_difference(theta_a, theta_a, data) == 0.0
        assert 0.0 <= spec.prediction_difference(theta_a, theta_b, data) <= 1.0
