"""Tests for the shared linear-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import StatisticsError
from repro.linalg.utils import (
    frobenius_distance,
    safe_cholesky,
    sample_multivariate_normal,
    symmetrize,
)


class TestSymmetrize:
    def test_result_is_symmetric(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(5, 5))
        S = symmetrize(A)
        np.testing.assert_allclose(S, S.T)

    def test_symmetric_input_unchanged(self):
        A = np.array([[2.0, 1.0], [1.0, 3.0]])
        np.testing.assert_allclose(symmetrize(A), A)

    def test_rejects_non_square(self):
        with pytest.raises(StatisticsError):
            symmetrize(np.zeros((2, 3)))

    @given(arrays(np.float64, (4, 4), elements=st.floats(-10, 10)))
    @settings(max_examples=50, deadline=None)
    def test_property_idempotent(self, A):
        once = symmetrize(A)
        twice = symmetrize(once)
        np.testing.assert_allclose(once, twice)


class TestSafeCholesky:
    def test_reconstructs_spd_matrix(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(6, 6))
        spd = A @ A.T + 6 * np.eye(6)
        L = safe_cholesky(spd)
        np.testing.assert_allclose(L @ L.T, spd, atol=1e-8)

    def test_handles_near_singular(self):
        # Rank-deficient PSD matrix needs jitter but should still factor.
        v = np.array([1.0, 2.0, 3.0])
        psd = np.outer(v, v)
        L = safe_cholesky(psd)
        np.testing.assert_allclose(L @ L.T, psd, atol=1e-4)

    def test_rejects_hopeless_matrix(self):
        with pytest.raises(StatisticsError):
            safe_cholesky(np.array([[1.0, 0.0], [0.0, -50.0]]), jitter=1e-16, max_tries=1)


class TestMultivariateNormalSampling:
    def test_sample_moments(self):
        rng = np.random.default_rng(2)
        mean = np.array([1.0, -2.0])
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        samples = sample_multivariate_normal(mean, cov, 40_000, rng)
        np.testing.assert_allclose(samples.mean(axis=0), mean, atol=0.05)
        np.testing.assert_allclose(np.cov(samples.T), cov, atol=0.08)

    def test_sample_shape(self):
        rng = np.random.default_rng(3)
        samples = sample_multivariate_normal(np.zeros(3), np.eye(3), 7, rng)
        assert samples.shape == (7, 3)


class TestFrobeniusDistance:
    def test_zero_for_identical(self):
        A = np.arange(9, dtype=float).reshape(3, 3)
        assert frobenius_distance(A, A) == 0.0

    def test_normalisation(self):
        A = np.zeros((2, 2))
        B = np.ones((2, 2))
        assert frobenius_distance(A, B, normalize=False) == pytest.approx(2.0)
        assert frobenius_distance(A, B, normalize=True) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(StatisticsError):
            frobenius_distance(np.zeros((2, 2)), np.zeros((3, 3)))
