"""Shared fixtures for the test suite.

All fixtures are deterministic (seeded) and small enough that the whole
suite runs in a couple of minutes on a laptop.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import criteo_like, gas_like, higgs_like, mnist_like


@pytest.fixture(autouse=True)
def _isolated_repro_env(monkeypatch, tmp_path):
    """Scrub ``REPRO_*`` runtime overrides so tests never leak state.

    Every test starts with a clean environment: no ambient override can
    change cache defaults mid-suite, and no test can poison a neighbour by
    exporting one.  The one override that *re-targets* rather than
    disables: when the surrounding run enables the warm cache
    (``REPRO_WARM_CACHE_DIR`` — the CI warm-enabled tier-1 job), it is
    re-pointed at a per-test temporary directory so tests share no on-disk
    entries while the warm code path stays active.  ``REPRO_OBS_ENABLED``
    survives the scrub the same way (the CI obs-enabled tier-1 job runs
    the whole suite with telemetry on to prove results are identical);
    tests that assert on enablement semantics set their own value.
    """
    warm_enabled = bool(os.environ.get("REPRO_WARM_CACHE_DIR", "").strip())
    obs_override = os.environ.get("REPRO_OBS_ENABLED")
    for name in [name for name in os.environ if name.startswith("REPRO_")]:
        monkeypatch.delenv(name)
    if obs_override is not None:
        monkeypatch.setenv("REPRO_OBS_ENABLED", obs_override)
    if not warm_enabled:
        yield
        return
    warm_dir = tmp_path / "warm-cache"
    monkeypatch.setenv("REPRO_WARM_CACHE_DIR", str(warm_dir))
    yield
    # Retire the per-test shared tier (and its write-behind thread) so a
    # long suite does not accumulate one tier per test in the process-wide
    # memo.
    from repro.data.store import warm_cache as warm_cache_module

    with warm_cache_module._shared_lock:
        tier = warm_cache_module._shared_tiers.pop(
            os.path.abspath(str(warm_dir)), None
        )
    if tier is not None:
        tier.close()


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(2024)


@pytest.fixture(scope="session")
def regression_dataset() -> Dataset:
    """Small dense regression workload (Gas-like)."""
    return gas_like(n_rows=4_000, n_features=12, seed=7)


@pytest.fixture(scope="session")
def binary_dataset() -> Dataset:
    """Small dense binary-classification workload (HIGGS-like)."""
    return higgs_like(n_rows=5_000, n_features=14, seed=11)


@pytest.fixture(scope="session")
def sparse_binary_dataset() -> Dataset:
    """Small sparse binary-classification workload (Criteo-like)."""
    return criteo_like(n_rows=3_000, n_features=60, density=0.1, seed=13)


@pytest.fixture(scope="session")
def multiclass_dataset() -> Dataset:
    """Small multiclass workload (MNIST-like)."""
    return mnist_like(n_rows=4_000, n_features=25, n_classes=4, seed=17)


@pytest.fixture(scope="session")
def unsupervised_dataset() -> Dataset:
    """Unlabelled version of the MNIST-like workload (for PPCA)."""
    base = mnist_like(n_rows=3_000, n_features=16, n_classes=4, seed=19)
    return Dataset(base.X, None, name="mnist_like_unlabelled")


@pytest.fixture(scope="session")
def regression_splits(regression_dataset):
    return train_holdout_test_split(
        regression_dataset,
        SplitSpec(holdout_fraction=0.15, test_fraction=0.15),
        rng=np.random.default_rng(1),
    )


@pytest.fixture(scope="session")
def binary_splits(binary_dataset):
    return train_holdout_test_split(
        binary_dataset,
        SplitSpec(holdout_fraction=0.15, test_fraction=0.15),
        rng=np.random.default_rng(2),
    )


@pytest.fixture(scope="session")
def multiclass_splits(multiclass_dataset):
    return train_holdout_test_split(
        multiclass_dataset,
        SplitSpec(holdout_fraction=0.15, test_fraction=0.15),
        rng=np.random.default_rng(3),
    )


def numerical_gradient(function, theta: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient used to validate analytic gradients."""
    theta = np.asarray(theta, dtype=np.float64)
    gradient = np.zeros_like(theta)
    for j in range(theta.shape[0]):
        forward = theta.copy()
        backward = theta.copy()
        forward[j] += eps
        backward[j] -= eps
        gradient[j] = (function(forward) - function(backward)) / (2 * eps)
    return gradient


@pytest.fixture(scope="session")
def gradient_checker():
    """Expose the central-difference helper to tests as a fixture."""
    return numerical_gradient
