"""Tests for the BlinkML coordinator (Section 2.3 workflow)."""

import numpy as np
import pytest

from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.exceptions import DataError
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.ppca import PPCASpec
from repro.data.synthetic import higgs_like, mnist_like


@pytest.fixture(scope="module")
def binary_splits_large():
    data = higgs_like(n_rows=30_000, n_features=12, seed=50)
    return train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(2))


class TestWorkflow:
    def test_returns_contract_satisfying_model(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=1000, n_parameter_samples=64, seed=0)
        contract = ApproximationContract(epsilon=0.05, delta=0.05)
        result = trainer.train(splits.train, splits.holdout, contract)

        full = trainer.train_full(splits.train)
        actual_difference = spec.prediction_difference(
            result.model.theta, full.theta, splits.holdout
        )
        assert actual_difference <= contract.epsilon + 0.02
        assert result.sample_size <= splits.train.n_rows
        assert result.initial_sample_size == 1000
        assert result.full_size == splits.train.n_rows

    def test_loose_contract_returns_initial_model(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=1000, n_parameter_samples=64, seed=0)
        result = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.4))
        assert result.used_initial_model
        assert result.sample_size == 1000
        assert result.timings.final_training_seconds == 0.0

    def test_tight_contract_uses_larger_sample(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=64, seed=0)
        loose = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.10))
        tight = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.02))
        assert tight.sample_size >= loose.sample_size

    def test_sample_fraction_below_one_for_moderate_accuracy(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=1000, n_parameter_samples=64, seed=1)
        result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.95)
        assert result.sample_fraction < 1.0

    def test_train_with_accuracy_wrapper(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=800, n_parameter_samples=48, seed=0)
        result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.9, delta=0.1)
        assert result.contract.epsilon == pytest.approx(0.1)
        assert result.contract.delta == pytest.approx(0.1)

    def test_initial_sample_capped_at_N(self):
        data = higgs_like(n_rows=3_000, n_features=8, seed=51)
        splits = train_holdout_test_split(data, SplitSpec(0.2, 0.2), rng=np.random.default_rng(3))
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=10_000, n_parameter_samples=32, seed=0)
        result = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.05))
        assert result.used_initial_model
        assert result.sample_size == splits.train.n_rows

    def test_empty_holdout_rejected(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec()
        trainer = BlinkML(spec, initial_sample_size=100)
        with pytest.raises((DataError, Exception)):
            trainer.train(
                splits.train,
                splits.holdout.take(np.array([0])).take(np.array([], dtype=int)),
                ApproximationContract(epsilon=0.1),
            )

    def test_timings_populated(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=48, seed=0)
        result = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.02))
        timing = result.timings.as_dict()
        assert timing["initial_training_seconds"] > 0
        assert timing["statistics_seconds"] > 0
        assert timing["total_seconds"] >= timing["initial_training_seconds"]

    def test_summary_string(self, binary_splits_large):
        splits = binary_splits_large
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=32, seed=0)
        result = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.1))
        summary = result.summary()
        assert "lr" in summary
        assert "%" in summary


class TestOtherModelClasses:
    def test_linear_regression_workflow(self, regression_splits):
        spec = LinearRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=400, n_parameter_samples=48, seed=0)
        result = trainer.train_with_accuracy(
            regression_splits.train, regression_splits.holdout, 0.95
        )
        full = trainer.train_full(regression_splits.train)
        difference = spec.prediction_difference(
            result.model.theta, full.theta, regression_splits.holdout
        )
        assert difference <= 0.05 + 0.02

    def test_max_entropy_workflow(self, multiclass_splits):
        spec = MaxEntropySpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=400, n_parameter_samples=32, seed=0)
        result = trainer.train_with_accuracy(
            multiclass_splits.train, multiclass_splits.holdout, 0.9
        )
        full = trainer.train_full(multiclass_splits.train)
        difference = spec.prediction_difference(
            result.model.theta, full.theta, multiclass_splits.holdout
        )
        assert difference <= 0.1 + 0.05

    def test_ppca_workflow(self):
        data = mnist_like(n_rows=6_000, n_features=12, n_classes=3, seed=52)
        unlabeled = Dataset(data.X - data.X.mean(axis=0), None, name="ppca_data")
        splits = train_holdout_test_split(
            unlabeled, SplitSpec(0.1, 0.1), rng=np.random.default_rng(4)
        )
        spec = PPCASpec(n_factors=3, sigma2=1.0)
        trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=32, seed=0)
        result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.95)
        full = trainer.train_full(splits.train)
        difference = spec.prediction_difference(result.model.theta, full.theta, splits.holdout)
        assert difference <= 0.05 + 0.03
