"""Tests for the weighted (non-uniform) sampler.

Non-uniform sampling is the paper's stated extension path (Sections 3.2 and
7): the estimators keep working as long as the sampling probabilities are
known.  These tests pin down the sampler's contract: distinct rows, weights
respected, zero-weight rows never drawn, and importance weights that make a
weighted mean unbiased for the population mean.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.sampling import WeightedSampler
from repro.exceptions import DataError


def make_dataset(n=200):
    values = np.arange(n, dtype=np.float64).reshape(-1, 1)
    return Dataset(values, np.zeros(n))


class TestValidation:
    def test_weight_length_mismatch(self):
        with pytest.raises(DataError):
            WeightedSampler(make_dataset(10), np.ones(5))

    def test_negative_weights_rejected(self):
        weights = np.ones(10)
        weights[3] = -1.0
        with pytest.raises(DataError):
            WeightedSampler(make_dataset(10), weights)

    def test_non_finite_weights_rejected(self):
        weights = np.ones(10)
        weights[0] = np.inf
        with pytest.raises(DataError):
            WeightedSampler(make_dataset(10), weights)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(DataError):
            WeightedSampler(make_dataset(10), np.zeros(10))

    def test_probabilities_normalised(self):
        sampler = WeightedSampler(make_dataset(4), np.array([1.0, 1.0, 2.0, 0.0]))
        np.testing.assert_allclose(sampler.probabilities.sum(), 1.0)


class TestSampling:
    def test_indices_are_distinct_and_in_range(self):
        sampler = WeightedSampler(
            make_dataset(100), np.ones(100), rng=np.random.default_rng(0)
        )
        indices = sampler.sample_indices(30)
        assert len(np.unique(indices)) == 30
        assert indices.min() >= 0 and indices.max() < 100

    def test_zero_weight_rows_never_sampled(self):
        weights = np.ones(50)
        weights[10:20] = 0.0
        sampler = WeightedSampler(make_dataset(50), weights, rng=np.random.default_rng(1))
        for _ in range(20):
            indices = sampler.sample_indices(30)
            assert not np.any((indices >= 10) & (indices < 20))

    def test_cannot_draw_more_than_positive_weight_rows(self):
        weights = np.zeros(20)
        weights[:5] = 1.0
        sampler = WeightedSampler(make_dataset(20), weights)
        with pytest.raises(DataError):
            sampler.sample_indices(6)

    def test_invalid_sample_size(self):
        sampler = WeightedSampler(make_dataset(10), np.ones(10))
        with pytest.raises(DataError):
            sampler.sample_indices(0)

    def test_heavier_rows_sampled_more_often(self):
        n = 40
        weights = np.ones(n)
        weights[:5] = 20.0  # five heavy rows
        sampler = WeightedSampler(make_dataset(n), weights, rng=np.random.default_rng(2))
        heavy_hits = 0
        repetitions = 300
        for _ in range(repetitions):
            indices = sampler.sample_indices(5)
            heavy_hits += np.sum(indices < 5)
        # Heavy rows carry ~74% of the total weight, so they should dominate
        # the draws; uniform sampling would give only ~12.5%.
        assert heavy_hits / (5 * repetitions) > 0.5

    def test_sample_returns_raw_horvitz_thompson_weights(self):
        n_rows, n = 100, 25
        weights = np.linspace(1, 5, n_rows)
        sampler = WeightedSampler(
            make_dataset(n_rows), weights, rng=np.random.default_rng(3)
        )
        subset, importance = sampler.sample(n)
        assert subset.n_rows == n
        assert importance.shape == (n,)
        assert np.all(importance > 0)
        # Raw HT weights are 1/(n·p_i) for the sampled rows — no silent
        # renormalisation (the old mean-one rescaling destroyed the
        # unbiasedness the weights exist for).
        row_values = subset.X[:, 0]
        expected = 1.0 / (n * sampler.probabilities[row_values.astype(int)])
        np.testing.assert_allclose(importance, expected)

    def test_mean_one_normalization_is_explicit_opt_in(self):
        sampler = WeightedSampler(
            make_dataset(100), np.linspace(1, 5, 100), rng=np.random.default_rng(3)
        )
        _, importance = sampler.sample(25, normalize=True)
        assert importance.mean() == pytest.approx(1.0)

    def test_weighted_mean_of_constant_column_exactly_unbiased(self):
        # Regression test for the HT-weight bug: under uniform weights every
        # raw HT weight is exactly N/n, so the weighted estimator of the
        # population mean, (1/N)·Σ w_i·y_i, recovers a constant column
        # exactly — deterministically, not merely in expectation.  The old
        # mean-one-normalised weights gave (n/N)·c instead.
        n_rows, n, constant = 500, 40, 7.25
        data = Dataset(np.full((n_rows, 1), constant), np.zeros(n_rows))
        sampler = WeightedSampler(data, np.ones(n_rows), rng=np.random.default_rng(5))
        subset, importance = sampler.sample(n)
        np.testing.assert_allclose(importance, np.full(n, n_rows / n))
        estimate = float(np.sum(importance * subset.X[:, 0]) / n_rows)
        assert estimate == pytest.approx(constant, rel=1e-12)

    def test_importance_weighted_mean_tracks_population_mean(self):
        # Weight rows by their value (size-biased sampling); the HT weights
        # must undo the bias so (1/N)·Σ w_i·y_i stays close to the
        # population mean.
        n_rows, n = 2000, 200
        data = make_dataset(n_rows)
        weights = data.X[:, 0] + 1.0
        rng = np.random.default_rng(4)
        sampler = WeightedSampler(data, weights, rng=rng)
        estimates = []
        for _ in range(200):
            subset, importance = sampler.sample(n)
            estimates.append(float(np.sum(importance * subset.X[:, 0]) / n_rows))
        population_mean = float(data.X[:, 0].mean())
        naive_means = []
        for _ in range(50):
            subset, _ = sampler.sample(n)
            naive_means.append(float(subset.X[:, 0].mean()))
        # The importance-weighted estimate is closer to the truth than the
        # naive (biased) sample mean.
        assert abs(np.mean(estimates) - population_mean) < abs(
            np.mean(naive_means) - population_mean
        )

    @given(n_rows=st.integers(5, 60), n_draw=st.integers(1, 5), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_property_draws_are_valid(self, n_rows, n_draw, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 5.0, size=n_rows)
        sampler = WeightedSampler(make_dataset(n_rows), weights, rng=rng)
        indices = sampler.sample_indices(min(n_draw, n_rows))
        assert len(np.unique(indices)) == len(indices)
        assert indices.min() >= 0 and indices.max() < n_rows
