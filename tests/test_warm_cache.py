"""Tests for the cross-process warm cache tier.

Covers the tier itself (atomic publication, digest verification +
quarantine, crash and tamper recovery, byte-bounded GC, deterministic
serialisation), the key builders (distinctness and stability properties),
the session/registry wiring (a fresh process answers repeat contracts with
zero streamed passes, bitwise identical to a cold run), and multi-process
contention against one shared warm directory.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro import (
    ApproximationContract,
    EstimationSession,
    LogisticRegressionSpec,
    SessionRegistry,
    WarmCacheStats,
    WarmCacheTier,
)
from repro.data import ShardStore, train_holdout_test_split
from repro.data.splits import SplitSpec
from repro.data.synthetic import higgs_like
from repro.data.store.warm_cache import (
    DIFF_KIND,
    SIZE_KIND,
    diff_entry_key,
    entry_filename,
    payload_digest,
    resolve_warm_cache,
    serialize_entry,
    shared_warm_cache,
    size_entry_key,
)
from repro.evaluation.streaming import streaming_pass_count
from repro.exceptions import ServingError
from repro.serving import CoalescingService

# ----------------------------------------------------------------------
# A deterministic forcing workload: the initial model cannot satisfy the
# contract, so a cold serve runs the full pipeline (diff vector, size
# search, final model, final estimate).  Module-level so the spawn-based
# workers rebuild the identical datasets in their own interpreters.
# ----------------------------------------------------------------------
_ROWS = 2_500
_FEATURES = 10
_SESSION_KWARGS = dict(rng=0, n_parameter_samples=24, initial_sample_size=250)
_CONTRACT = (0.015, 0.05)
_EXTRA_CONTRACTS = ((0.010, 0.05), (0.020, 0.10))


def _splits():
    return train_holdout_test_split(
        higgs_like(n_rows=_ROWS, n_features=_FEATURES, seed=13),
        SplitSpec(holdout_fraction=0.2, test_fraction=0.1),
        rng=np.random.default_rng(9),
    )


def _session(warm_cache, splits=None) -> EstimationSession:
    splits = splits if splits is not None else _splits()
    return EstimationSession(
        LogisticRegressionSpec(regularization=1e-3),
        splits.train,
        splits.holdout,
        warm_cache=warm_cache,
        **_SESSION_KWARGS,
    )


def _result_row(result) -> tuple[bytes, float, int]:
    return (
        result.model.theta.tobytes(),
        float(result.estimated_epsilon),
        int(result.sample_size),
    )


def _serve_worker(warm_dir: str, contracts, out_queue) -> None:
    """Spawn target: serve ``contracts`` against a shared warm directory."""
    session = _session(warm_dir)
    rows = []
    before = streaming_pass_count()
    for epsilon, delta in contracts:
        result = session.train_to(ApproximationContract(epsilon, delta))
        rows.append(_result_row(result))
    passes = streaming_pass_count() - before
    tier = session.warm_cache
    tier.flush()
    out_queue.put((os.getpid(), rows, passes, tier.stats().quarantined))


def _key_worker(out_queue) -> None:
    """Spawn target: report the warm keys a fresh interpreter builds."""
    session = _session(False)
    diff_key = session._warm_diff_key(
        (session._theta_digest(session.initial_model.theta), 1_000, session.full_size)
    )
    size_key = session._warm_size_key(_CONTRACT)
    out_queue.put((diff_key, size_key))


def _payload(seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "differences": np.sort(rng.standard_normal(32)),
        "meta": np.arange(4, dtype=np.int64),
    }


# ----------------------------------------------------------------------
# Tier unit tests
# ----------------------------------------------------------------------
class TestWarmCacheTier:
    def test_roundtrip_and_counters(self, tmp_path):
        tier = WarmCacheTier(tmp_path, write_behind=False)
        payload = _payload()
        assert tier.get(DIFF_KIND, "k1") is None
        tier.put(DIFF_KIND, "k1", payload)
        loaded = tier.get(DIFF_KIND, "k1")
        assert loaded is not None
        np.testing.assert_array_equal(loaded["differences"], payload["differences"])
        np.testing.assert_array_equal(loaded["meta"], payload["meta"])
        assert not loaded["differences"].flags.writeable
        stats = tier.stats()
        assert isinstance(stats, WarmCacheStats)
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.entries == 1 and stats.bytes > 0
        assert stats.requests == 2 and stats.hit_rate == 0.5

    def test_write_behind_flush(self, tmp_path):
        tier = WarmCacheTier(tmp_path, write_behind=True)
        tier.put(DIFF_KIND, "k1", _payload())
        tier.flush()
        assert tier.get(DIFF_KIND, "k1") is not None
        tier.close()
        # Post-close puts are dropped (and counted), gets keep working.
        tier.put(DIFF_KIND, "k2", _payload(1))
        assert tier.stats().dropped_writes == 1
        assert tier.get(DIFF_KIND, "k1") is not None

    def test_serialization_is_deterministic(self):
        payload = _payload()
        reordered = dict(reversed(list(payload.items())))
        assert serialize_entry(DIFF_KIND, "k", payload) == serialize_entry(
            DIFF_KIND, "k", reordered
        )
        assert payload_digest(payload) == payload_digest(reordered)

    def test_racing_writers_produce_identical_bytes(self, tmp_path):
        """Last-writer-wins is benign: same key → byte-identical files."""
        a = WarmCacheTier(tmp_path / "a", write_behind=False)
        b = WarmCacheTier(tmp_path / "b", write_behind=False)
        a.put(DIFF_KIND, "k1", _payload())
        b.put(DIFF_KIND, "k1", _payload())
        (file_a,) = glob.glob(str(tmp_path / "a" / "warm-*.npz"))
        (file_b,) = glob.glob(str(tmp_path / "b" / "warm-*.npz"))
        with open(file_a, "rb") as fa, open(file_b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_bit_flip_quarantined_and_recomputed(self, tmp_path):
        tier = WarmCacheTier(tmp_path, write_behind=False)
        tier.put(DIFF_KIND, "k1", _payload())
        (path,) = glob.glob(str(tmp_path / "warm-*.npz"))
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(blob))
        assert tier.get(DIFF_KIND, "k1") is None
        stats = tier.stats()
        assert stats.quarantined == 1
        assert stats.entries == 0
        quarantined = glob.glob(str(tmp_path / "quarantine" / "warm-*.npz"))
        assert len(quarantined) == 1
        # Transparent recovery: the next put republishes a good entry.
        tier.put(DIFF_KIND, "k1", _payload())
        assert tier.get(DIFF_KIND, "k1") is not None

    def test_key_collision_is_rejected(self, tmp_path):
        """An entry copied under another key's file name never serves."""
        tier = WarmCacheTier(tmp_path, write_behind=False)
        tier.put(DIFF_KIND, "k1", _payload())
        source = os.path.join(tmp_path, entry_filename(DIFF_KIND, "k1"))
        target = os.path.join(tmp_path, entry_filename(DIFF_KIND, "k2"))
        with open(source, "rb") as handle:
            blob = handle.read()
        with open(target, "wb") as handle:
            handle.write(blob)
        assert tier.get(DIFF_KIND, "k2") is None
        assert tier.stats().quarantined == 1
        assert tier.get(DIFF_KIND, "k1") is not None

    def test_crashed_writer_leaves_no_visible_entry(self, tmp_path):
        """SIGKILL mid-write = temp file present, final name never created."""
        tier = WarmCacheTier(tmp_path, write_behind=False)
        final = os.path.join(tmp_path, entry_filename(DIFF_KIND, "k1"))
        temp = f"{final}.tmp-99999-deadbeef"
        os.makedirs(tmp_path, exist_ok=True)
        with open(temp, "wb") as handle:
            handle.write(serialize_entry(DIFF_KIND, "k1", _payload())[:64])
        # The tier opens clean: the torn temp is invisible to reads...
        assert tier.get(DIFF_KIND, "k1") is None
        assert tier.stats().quarantined == 0
        # ...a fresh temp survives GC (the writer may still be alive)...
        tier.gc()
        assert os.path.exists(temp)
        # ...and an aged temp is swept.
        os.utime(temp, (time.time() - 3_600, time.time() - 3_600))
        tier.gc()
        assert not os.path.exists(temp)
        # Recompute path: publishing k1 now works normally.
        tier.put(DIFF_KIND, "k1", _payload())
        assert tier.get(DIFF_KIND, "k1") is not None

    def test_gc_evicts_oldest_to_byte_bound(self, tmp_path):
        tier = WarmCacheTier(tmp_path, write_behind=False)
        entry_bytes = len(serialize_entry(DIFF_KIND, "k0", _payload()))
        tier.max_bytes = 3 * entry_bytes + entry_bytes // 2
        now = time.time()
        for index in range(4):
            tier.put(DIFF_KIND, f"k{index}", _payload())
            path = os.path.join(tmp_path, entry_filename(DIFF_KIND, f"k{index}"))
            stamp = now - 100 + index
            os.utime(path, (stamp, stamp))
        tier.put(DIFF_KIND, "k4", _payload())
        stats = tier.stats()
        assert stats.bytes <= tier.max_bytes
        assert stats.gc_removed >= 1
        # Oldest-first: k0 (and possibly k1) went; the newest survives.
        assert tier.get(DIFF_KIND, "k0") is None
        assert tier.get(DIFF_KIND, "k4") is not None

    def test_resolve_semantics(self, tmp_path, monkeypatch):
        tier = WarmCacheTier(tmp_path / "t")
        assert resolve_warm_cache(tier) is tier
        assert resolve_warm_cache(False) is None
        monkeypatch.delenv("REPRO_WARM_CACHE_DIR", raising=False)
        assert resolve_warm_cache(None) is None
        monkeypatch.setenv("REPRO_WARM_CACHE_DIR", str(tmp_path / "env"))
        resolved = resolve_warm_cache(None)
        assert resolved is not None
        assert resolved is resolve_warm_cache(True)
        # Same directory → the process-shared instance.
        assert resolve_warm_cache(tmp_path / "env") is resolved
        assert shared_warm_cache(tmp_path / "env") is resolved


# ----------------------------------------------------------------------
# Key properties
# ----------------------------------------------------------------------
class TestKeyProperties:
    def test_distinct_parameters_give_distinct_keys(self):
        base = dict(
            spec_digest="s" * 32,
            holdout_digest="h" * 32,
            draws_digest="d" * 32,
            theta_digest="t" * 32,
            n0=300,
            N=6_000,
            k=32,
            probe_batch=4,
            epsilon=0.005,
            delta=0.05,
        )
        keys = {size_entry_key(**base)}
        for field, values in {
            "epsilon": (0.004, 0.0051),
            "delta": (0.04, 0.1),
            "probe_batch": (1, 8),
            "theta_digest": ("u" * 32,),
            "draws_digest": ("e" * 32,),
            "spec_digest": ("q" * 32,),
            "holdout_digest": ("g" * 32,),
            "n0": (301,),
            "N": (6_001,),
            "k": (64,),
        }.items():
            for value in values:
                keys.add(size_entry_key(**{**base, field: value}))
        assert len(keys) == 14

        diff_base = dict(
            spec_digest="s" * 32,
            holdout_digest="h" * 32,
            draws_digest="d" * 32,
            theta_digest="t" * 32,
            n=1_000,
            N=6_000,
            k=32,
        )
        assert diff_entry_key(**diff_base) != size_entry_key(**base)
        assert diff_entry_key(**diff_base) != diff_entry_key(
            **{**diff_base, "n": 1_001}
        )

    def test_keys_stable_across_kwarg_ordering(self):
        forward = dict(
            spec_digest="s",
            holdout_digest="h",
            draws_digest="d",
            theta_digest="t",
            n=10,
            N=100,
            k=8,
        )
        reordered = dict(reversed(list(forward.items())))
        assert diff_entry_key(**forward) == diff_entry_key(**reordered)

    def test_float_keys_are_bit_exact(self):
        base = dict(
            spec_digest="s",
            holdout_digest="h",
            draws_digest="d",
            theta_digest="t",
            n0=10,
            N=100,
            k=8,
            probe_batch=1,
        )
        a = size_entry_key(**base, epsilon=0.1, delta=0.05)
        b = size_entry_key(**base, epsilon=0.1 + 1e-18, delta=0.05)
        c = size_entry_key(**base, epsilon=np.nextafter(0.1, 1.0), delta=0.05)
        assert a == b  # 0.1 + 1e-18 rounds to the same float64
        assert a != c  # one ulp apart → distinct keys

    def test_keys_stable_across_storage_tiers(self, tmp_path):
        """Dataset vs ShardedDataset holdouts of the same rows share keys."""
        splits = _splits()
        sharded_holdout = ShardStore.write(
            splits.holdout, tmp_path / "holdout", shard_rows=512
        ).dataset()
        spec = LogisticRegressionSpec(regularization=1e-3)
        in_memory = EstimationSession(
            spec, splits.train, splits.holdout, warm_cache=False, **_SESSION_KWARGS
        )
        sharded = EstimationSession(
            spec, splits.train, sharded_holdout, warm_cache=False, **_SESSION_KWARGS
        )
        diff_key = in_memory._warm_diff_key(
            (in_memory._theta_digest(in_memory.initial_model.theta), 1_000, _ROWS)
        )
        assert diff_key == sharded._warm_diff_key(
            (sharded._theta_digest(sharded.initial_model.theta), 1_000, _ROWS)
        )
        assert in_memory._warm_size_key(_CONTRACT) == sharded._warm_size_key(
            _CONTRACT
        )

    def test_keys_stable_across_processes(self):
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        worker = ctx.Process(target=_key_worker, args=(queue,))
        worker.start()
        child_diff, child_size = queue.get(timeout=120)
        worker.join(timeout=120)
        assert worker.exitcode == 0
        session = _session(False)
        diff_key = session._warm_diff_key(
            (session._theta_digest(session.initial_model.theta), 1_000, session.full_size)
        )
        assert diff_key == child_diff
        assert session._warm_size_key(_CONTRACT) == child_size


# ----------------------------------------------------------------------
# Session integration
# ----------------------------------------------------------------------
class TestSessionWarmServing:
    def test_restart_answers_with_zero_streamed_passes(self, tmp_path):
        contract = ApproximationContract(*_CONTRACT)
        splits = _splits()
        cold = _session(str(tmp_path), splits)
        before = streaming_pass_count()
        cold_result = cold.train_to(contract)
        cold_passes = streaming_pass_count() - before
        assert cold_passes > 0
        cold.warm_cache.flush()

        # "Restart": a brand-new session against the same warm directory.
        warm = _session(str(tmp_path), splits)
        before = streaming_pass_count()
        warm_result = warm.train_to(contract)
        assert streaming_pass_count() - before == 0
        assert _result_row(warm_result) == _result_row(cold_result)
        answer = warm.answer(contract)
        assert answer.from_cache
        stats = warm.warm_cache_stats()
        assert stats is not None and stats.hits >= 3 and stats.quarantined == 0

    def test_warm_results_match_cold_control_bitwise(self, tmp_path):
        contract = ApproximationContract(*_CONTRACT)
        splits = _splits()
        seeded = _session(str(tmp_path), splits)
        seeded_result = seeded.train_to(contract)
        seeded.warm_cache.flush()
        warm = _session(str(tmp_path), splits)
        warm_result = warm.train_to(contract)
        control = _session(False, splits)
        control_result = control.train_to(contract)
        assert _result_row(warm_result) == _result_row(control_result)
        assert _result_row(seeded_result) == _result_row(control_result)

    def test_corrupt_entries_recompute_not_misserve(self, tmp_path):
        contract = ApproximationContract(*_CONTRACT)
        splits = _splits()
        cold = _session(str(tmp_path), splits)
        cold_result = cold.train_to(contract)
        cold.warm_cache.flush()
        for path in glob.glob(str(tmp_path / "warm-*.npz")):
            blob = bytearray(open(path, "rb").read())
            blob[len(blob) // 3] ^= 0xFF
            with open(path, "wb") as handle:
                handle.write(bytes(blob))
        tampered = _session(str(tmp_path), splits)
        before = streaming_pass_count()
        tampered_result = tampered.train_to(contract)
        assert streaming_pass_count() - before > 0  # recomputed, not served
        assert _result_row(tampered_result) == _result_row(cold_result)
        stats = tampered.warm_cache_stats()
        assert stats is not None and stats.quarantined >= 1

    def test_env_var_enables_warm_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_CACHE_DIR", str(tmp_path / "warm"))
        session = _session(None)
        assert session.warm_cache is not None
        assert session.warm_cache.directory == os.path.abspath(
            str(tmp_path / "warm")
        )
        disabled = _session(False)
        assert disabled.warm_cache is None
        monkeypatch.delenv("REPRO_WARM_CACHE_DIR")
        assert _session(None).warm_cache is None

    def test_train_to_many_publishes_each_survivor_once(self, tmp_path):
        contracts = [
            ApproximationContract(*_CONTRACT),
            ApproximationContract(*_CONTRACT),  # duplicate
            ApproximationContract(*_EXTRA_CONTRACTS[0]),
        ]
        splits = _splits()
        cold = _session(str(tmp_path), splits)
        outcome = cold.train_to_many(contracts)
        cold.warm_cache.flush()
        # One entry per distinct (ε, δ) that ran its own size search (the
        # fused dispatch may satisfy a weaker contract from a stronger one).
        size_entries = glob.glob(str(tmp_path / "warm-size-*.npz"))
        assert 1 <= len(size_entries) <= 2
        warm = _session(str(tmp_path), splits)
        before = streaming_pass_count()
        warm_outcome = warm.train_to_many(contracts)
        assert streaming_pass_count() - before == 0
        assert [_result_row(result) for result in warm_outcome.results] == [
            _result_row(result) for result in outcome.results
        ]


# ----------------------------------------------------------------------
# Registry / service integration
# ----------------------------------------------------------------------
class TestRegistryWarmTier:
    def test_registry_shares_one_tier_and_reports_stats(self, tmp_path):
        splits = _splits()
        registry = SessionRegistry(warm_cache=str(tmp_path))
        spec = LogisticRegressionSpec(regularization=1e-3)
        first = registry.get_or_create(
            "a", spec, splits.train, splits.holdout, **_SESSION_KWARGS
        )
        second = registry.get_or_create(
            "b", spec, splits.train, splits.holdout, rng=1, n_parameter_samples=32,
            initial_sample_size=300,
        )
        assert first.warm_cache is registry.warm_cache
        assert second.warm_cache is registry.warm_cache
        first.train_to(ApproximationContract(*_CONTRACT))
        registry.warm_cache.flush()
        warm_stats = registry.stats().warm
        assert warm_stats is not None and warm_stats.writes >= 1
        # Explicit kwargs win over the registry tier.
        opted_out = registry.get_or_create(
            "c", spec, splits.train, splits.holdout, warm_cache=False,
            **_SESSION_KWARGS,
        )
        assert opted_out.warm_cache is None

    def test_registry_false_forces_members_cold(self, tmp_path, monkeypatch):
        """Registry-level ``warm_cache=False`` beats the environment."""
        monkeypatch.setenv("REPRO_WARM_CACHE_DIR", str(tmp_path / "warm"))
        splits = _splits()
        registry = SessionRegistry(warm_cache=False)
        session = registry.get_or_create(
            "a", LogisticRegressionSpec(regularization=1e-3), splits.train,
            splits.holdout, **_SESSION_KWARGS,
        )
        assert registry.warm_cache is None
        assert session.warm_cache is None

    def test_registry_without_tier_reports_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WARM_CACHE_DIR", raising=False)
        registry = SessionRegistry()
        assert registry.warm_cache is None
        assert registry.stats().warm is None

    def test_service_forwards_warm_cache_to_default_registry(self, tmp_path):
        service = CoalescingService(
            warm_cache=str(tmp_path), start_housekeeping=False
        )
        try:
            assert service.registry.warm_cache is not None
        finally:
            service.close()
        with pytest.raises(ServingError):
            CoalescingService(
                SessionRegistry(), warm_cache=str(tmp_path),
                start_housekeeping=False,
            )


# ----------------------------------------------------------------------
# Multi-process contention
# ----------------------------------------------------------------------
class TestMultiProcess:
    def test_concurrent_workers_share_one_warm_dir(self, tmp_path):
        """Overlapping contracts, one directory, no torn reads, identical
        answers — every worker must match a serial cold run bitwise."""
        contracts = [_CONTRACT, *_EXTRA_CONTRACTS, _CONTRACT]
        serial = _session(False)
        expected = [
            _result_row(serial.train_to(ApproximationContract(*pair)))
            for pair in contracts
        ]
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_serve_worker, args=(str(tmp_path), contracts, queue)
            )
            for _ in range(3)
        ]
        for worker in workers:
            worker.start()
        outcomes = [queue.get(timeout=300) for _ in workers]
        for worker in workers:
            worker.join(timeout=300)
            assert worker.exitcode == 0
        for _pid, rows, _passes, quarantined in outcomes:
            assert rows == expected
            assert quarantined == 0
        # The directory holds only verifiable content-addressed entries.
        follower = _session(str(tmp_path))
        before = streaming_pass_count()
        replay = [
            _result_row(follower.train_to(ApproximationContract(*pair)))
            for pair in contracts
        ]
        assert streaming_pass_count() - before == 0
        assert replay == expected
