"""Tests for the cross-session serving registry (repro.core.registry).

Mechanics (capacity, eviction order, rebalancing, counters) are exercised
against a lightweight fake session so they are fast and fully
deterministic; the serving guarantees — single-flight construction, the
global byte budget, fingerprint invalidation, threaded-vs-serial identity —
are exercised against real :class:`EstimationSession` fleets on small
synthetic workloads.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.caching import CacheStats
from repro.core.contract import ApproximationContract
from repro.core.registry import SessionRegistry
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.exceptions import BlinkMLError
from repro.models.logistic_regression import LogisticRegressionSpec

SPEC = LogisticRegressionSpec(regularization=1e-3)


def small_splits(seed: int = 5):
    data = higgs_like(n_rows=1_500, n_features=8, seed=seed)
    return train_holdout_test_split(
        data,
        SplitSpec(holdout_fraction=0.2, test_fraction=0.1),
        rng=np.random.default_rng(seed),
    )


def session_kwargs(seed: int = 0) -> dict:
    return dict(initial_sample_size=150, n_parameter_samples=16, rng=seed)


# ----------------------------------------------------------------------
# Fake-session mechanics
# ----------------------------------------------------------------------
class FakeSession:
    """Just enough surface for the registry: budget, bytes, idle clock."""

    def __init__(self, spec, train, holdout, **kwargs):
        self.spec = spec
        self.kwargs = kwargs
        self.budget: int | None = None
        self.budget_history: list[int] = []
        self._last_used_at = time.monotonic()

    def resize_cache_budget(self, total_bytes: int) -> None:
        self.budget = int(total_bytes)
        self.budget_history.append(self.budget)

    def cache_bytes(self) -> int:
        return 0

    def cache_stats(self) -> dict[str, CacheStats]:
        return {}

    @property
    def last_used_at(self) -> float:
        return self._last_used_at

    @property
    def idle_seconds(self) -> float:
        return time.monotonic() - self._last_used_at

    def _touch(self) -> None:
        self._last_used_at = time.monotonic()


@pytest.fixture
def fake_registry():
    def build(**kwargs):
        kwargs.setdefault("session_factory", FakeSession)
        kwargs.setdefault("min_session_bytes", 1)
        return SessionRegistry(**kwargs)

    return build


@pytest.fixture(scope="module")
def tiny_splits():
    return small_splits()


def test_get_or_create_serves_same_instance(fake_registry, tiny_splits):
    registry = fake_registry(max_sessions=4, max_total_bytes=1024)
    first = registry.get_or_create("k", SPEC, tiny_splits.train, tiny_splits.holdout)
    second = registry.get_or_create("k", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert first is second
    stats = registry.stats()
    assert (stats.hits, stats.misses) == (1, 1)
    assert len(registry) == 1 and "k" in registry
    assert registry.get("k") is first
    assert registry.get("absent") is None


def test_capacity_is_min_of_count_and_byte_bounds(fake_registry):
    assert fake_registry(max_sessions=8, max_total_bytes=None).capacity == 8
    assert fake_registry(max_sessions=None, max_total_bytes=None).capacity is None
    registry = fake_registry(max_sessions=8, max_total_bytes=100, min_session_bytes=30)
    assert registry.capacity == 3  # the pool splits three ways before thinning out
    registry = fake_registry(max_sessions=2, max_total_bytes=100, min_session_bytes=30)
    assert registry.capacity == 2


def test_eviction_picks_longest_idle_not_insertion_order(fake_registry, tiny_splits):
    registry = fake_registry(max_sessions=2, max_total_bytes=None)
    a = registry.get_or_create("a", SPEC, tiny_splits.train, tiny_splits.holdout)
    b = registry.get_or_create("b", SPEC, tiny_splits.train, tiny_splits.holdout)
    # "a" was inserted first but served most recently, so "b" is idler.
    b._last_used_at = a.last_used_at - 10.0
    registry.get_or_create("c", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert registry.keys() == ["a", "c"]
    assert registry.stats().evictions == 1


def test_newly_admitted_session_is_never_the_victim(fake_registry, tiny_splits):
    registry = fake_registry(max_sessions=1, max_total_bytes=None)
    registry.get_or_create("a", SPEC, tiny_splits.train, tiny_splits.holdout)
    registry.get_or_create("b", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert registry.keys() == ["b"]


def test_rebalance_shares_pool_evenly_at_zero_traffic(fake_registry, tiny_splits):
    # FakeSession reports no cache stats, so the traffic-weighted default
    # degenerates to the even split of the pre-weighting registry.
    registry = fake_registry(max_sessions=4, max_total_bytes=1200)
    a = registry.get_or_create("a", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert a.budget == 1200
    b = registry.get_or_create("b", SPEC, tiny_splits.train, tiny_splits.holdout)
    c = registry.get_or_create("c", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert a.budget == b.budget == c.budget == 400
    assert registry.session_budget_bytes() == 400
    # Invalidation frees the victim's share for the survivors.
    assert registry.invalidate("b")
    assert a.budget == c.budget == 600
    assert not registry.invalidate("b")
    stats = registry.stats()
    assert stats.invalidations == 1
    assert stats.session_budget_bytes == 600


class TrafficFakeSession(FakeSession):
    """A fake whose cache traffic the test scripts directly."""

    def __init__(self, spec, train, holdout, **kwargs):
        super().__init__(spec, train, holdout, **kwargs)
        self.requests = 0

    def cache_stats(self) -> dict[str, CacheStats]:
        return {
            "diff": CacheStats(
                name="diff", hits=self.requests, misses=0, evictions=0,
                entries=0, bytes=0, max_entries=None, max_bytes=None,
            )
        }


@pytest.fixture
def traffic_registry():
    def build(**kwargs):
        kwargs.setdefault("session_factory", TrafficFakeSession)
        kwargs.setdefault("min_session_bytes", 100)
        return SessionRegistry(**kwargs)

    return build


def test_traffic_weighted_shares_favor_hot_sessions(traffic_registry, tiny_splits):
    registry = traffic_registry(max_sessions=4, max_total_bytes=10_000)
    hot = registry.get_or_create("hot", SPEC, tiny_splits.train, tiny_splits.holdout)
    cold = registry.get_or_create("cold", SPEC, tiny_splits.train, tiny_splits.holdout)
    hot.requests, cold.requests = 900, 100
    registry.rebalance()
    # Floor + surplus proportional to (1 + traffic): hot gets most of the
    # pool, cold keeps at least the min_session_bytes floor.
    assert hot.budget > cold.budget
    assert cold.budget >= registry.min_session_bytes
    assert hot.budget + cold.budget <= registry.max_total_bytes
    surplus = 10_000 - 2 * 100
    assert hot.budget == 100 + surplus * 901 // 1002
    assert cold.budget == 100 + surplus * 101 // 1002
    # Traffic shifting flips the shares at the next rebalance.
    hot.requests, cold.requests = 900, 9_000
    registry.rebalance()
    assert cold.budget > hot.budget


def test_traffic_weights_decay_when_a_hot_session_goes_idle(
    traffic_registry, tiny_splits
):
    # Weights are exponentially decayed traffic averages, not lifetime
    # totals: a session that served a million requests long ago loses its
    # dominance geometrically once idle, while a modestly but *steadily*
    # serving session overtakes it.
    registry = traffic_registry(max_sessions=4, max_total_bytes=10_000)
    old = registry.get_or_create("old", SPEC, tiny_splits.train, tiny_splits.holdout)
    new = registry.get_or_create("new", SPEC, tiny_splits.train, tiny_splits.holdout)
    old.requests = 1_000_000
    registry.rebalance()
    assert old.budget > new.budget
    # "old" goes idle; "new" serves 500 requests per interval.
    flipped_after = None
    for interval in range(30):
        new.requests += 500
        registry.rebalance()
        if new.budget > old.budget:
            flipped_after = interval
            break
    assert flipped_after is not None, "idle session outweighed steady traffic forever"
    # With both fully idle the averages decay to zero: even split again.
    for _ in range(40):
        registry.rebalance()
    assert old.budget == new.budget


def test_membership_churn_does_not_collapse_hot_shares(traffic_registry, tiny_splits):
    # A membership-triggered rebalance moments after a periodic one sees a
    # near-zero traffic window; the decayed average must keep the hot
    # session dominant instead of snapping everyone to the even split
    # (which would evict the hottest pair's cached vectors).
    registry = traffic_registry(max_sessions=4, max_total_bytes=100_000)
    hot = registry.get_or_create("hot", SPEC, tiny_splits.train, tiny_splits.holdout)
    cold = registry.get_or_create("cold", SPEC, tiny_splits.train, tiny_splits.holdout)
    hot.requests = 100_000
    registry.rebalance()
    dominant = hot.budget
    # Fleet churn immediately afterwards: a new member admitted with no
    # further traffic anywhere (zero-width window).
    registry.get_or_create("new", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert hot.budget > cold.budget  # still dominant, not even-split
    assert hot.budget > registry.max_total_bytes // 3
    assert dominant >= hot.budget  # smaller fleet share, but same ordering


def test_traffic_shares_reflected_in_stats(traffic_registry, tiny_splits):
    registry = traffic_registry(max_sessions=4, max_total_bytes=10_000)
    a = registry.get_or_create("a", SPEC, tiny_splits.train, tiny_splits.holdout)
    registry.get_or_create("b", SPEC, tiny_splits.train, tiny_splits.holdout)
    a.requests = 500
    registry.rebalance()
    stats = registry.stats()
    rows = {info.key: info for info in stats.per_session}
    assert rows["a"].traffic == 500 and rows["b"].traffic == 0
    assert rows["a"].budget_bytes == registry.session_shares()["a"]
    assert rows["a"].budget_bytes > rows["b"].budget_bytes
    assert sum(info.budget_bytes for info in stats.per_session) <= 10_000


def test_even_policy_ignores_traffic(traffic_registry, tiny_splits):
    registry = traffic_registry(
        max_sessions=4, max_total_bytes=10_000, rebalance_policy="even"
    )
    hot = registry.get_or_create("hot", SPEC, tiny_splits.train, tiny_splits.holdout)
    cold = registry.get_or_create("cold", SPEC, tiny_splits.train, tiny_splits.holdout)
    hot.requests = 10_000
    registry.rebalance()
    assert hot.budget == cold.budget == 5_000


def test_unknown_rebalance_policy_rejected():
    with pytest.raises(BlinkMLError):
        SessionRegistry(rebalance_policy="round-robin")


def test_byte_pool_bounds_fleet_size(fake_registry, tiny_splits):
    registry = fake_registry(max_sessions=None, max_total_bytes=100, min_session_bytes=40)
    for key in ("a", "b", "c"):
        registry.get_or_create(key, SPEC, tiny_splits.train, tiny_splits.holdout)
    # capacity = 100 // 40 = 2: admitting "c" evicted the idlest member.
    assert len(registry) == 2
    assert registry.stats().evictions == 1


def test_evict_idle(fake_registry, tiny_splits):
    registry = fake_registry(max_sessions=8, max_total_bytes=None)
    a = registry.get_or_create("a", SPEC, tiny_splits.train, tiny_splits.holdout)
    registry.get_or_create("b", SPEC, tiny_splits.train, tiny_splits.holdout)
    a._last_used_at -= 100.0
    assert registry.evict_idle(50.0) == 1
    assert registry.keys() == ["b"]
    assert registry.evict_idle(50.0) == 0


def test_clear_counts_invalidations(fake_registry, tiny_splits):
    registry = fake_registry()
    registry.get_or_create("a", SPEC, tiny_splits.train, tiny_splits.holdout)
    registry.get_or_create("b", SPEC, tiny_splits.train, tiny_splits.holdout)
    registry.clear()
    stats = registry.stats()
    assert len(registry) == 0
    assert stats.invalidations == 2
    assert stats.evictions == 0


def test_constructor_validation():
    with pytest.raises(BlinkMLError):
        SessionRegistry(max_sessions=0)
    with pytest.raises(BlinkMLError):
        SessionRegistry(max_total_bytes=0)
    with pytest.raises(BlinkMLError):
        SessionRegistry(min_session_bytes=0)
    with pytest.raises(BlinkMLError):
        SessionRegistry(max_total_bytes=10, min_session_bytes=100)


def test_construction_error_propagates_and_is_retried(tiny_splits):
    attempts = []

    def flaky_factory(spec, train, holdout, **kwargs):
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("boom")
        return FakeSession(spec, train, holdout, **kwargs)

    registry = SessionRegistry(
        session_factory=flaky_factory, min_session_bytes=1, max_total_bytes=None
    )
    with pytest.raises(RuntimeError):
        registry.get_or_create("k", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert len(registry) == 0
    session = registry.get_or_create("k", SPEC, tiny_splits.train, tiny_splits.holdout)
    assert isinstance(session, FakeSession)
    assert len(attempts) == 2


def test_single_flight_construction_under_contention(tiny_splits):
    constructions = []
    barrier_released = threading.Event()

    def slow_factory(spec, train, holdout, **kwargs):
        constructions.append(threading.get_ident())
        barrier_released.wait(5.0)
        return FakeSession(spec, train, holdout, **kwargs)

    registry = SessionRegistry(
        session_factory=slow_factory, min_session_bytes=1, max_total_bytes=None
    )
    with ThreadPoolExecutor(8) as pool:
        futures = [
            pool.submit(
                registry.get_or_create,
                "k",
                SPEC,
                tiny_splits.train,
                tiny_splits.holdout,
            )
            for _ in range(8)
        ]
        # Give the followers time to queue behind the leader, then release.
        time.sleep(0.1)
        barrier_released.set()
        sessions = [future.result() for future in futures]
    assert len(constructions) == 1
    assert all(session is sessions[0] for session in sessions)
    stats = registry.stats()
    assert stats.misses == 1
    assert stats.hits == 7


# ----------------------------------------------------------------------
# Real-session fleets
# ----------------------------------------------------------------------
def test_fingerprint_mismatched_dataset_always_misses(tiny_splits):
    # warm_cache=False: this test asserts the *cost* of invalidation (the
    # fresh session recomputes).  A live warm tier would legitimately serve
    # the recompute from disk — holdout and θ0 are unchanged — and flip
    # from_cache to True.
    registry = SessionRegistry(max_sessions=4, max_total_bytes=None, warm_cache=False)
    original = registry.get_or_create(
        "pair", SPEC, tiny_splits.train, tiny_splits.holdout, **session_kwargs()
    )
    original.answer(ApproximationContract.from_accuracy(0.85))
    assert original.cache_stats()["diff"].misses == 1

    # The training data changes under the same key: one flipped value.
    changed_X = tiny_splits.train.X.copy()
    changed_X[0, 0] += 1.0
    changed_train = Dataset(changed_X, tiny_splits.train.y)
    fresh = registry.get_or_create(
        "pair", SPEC, changed_train, tiny_splits.holdout, **session_kwargs()
    )
    assert fresh is not original
    assert registry.stats().fingerprint_invalidations == 1
    # The fresh session starts cold: nothing cached against the old data
    # can be served, and the first answer recomputes its difference vector.
    assert fresh.cache_stats()["diff"].misses == 0
    answer = fresh.answer(ApproximationContract.from_accuracy(0.85))
    assert not answer.from_cache

    # Offering the changed data again is a plain hit (fingerprint matches).
    assert (
        registry.get_or_create(
            "pair", SPEC, changed_train, tiny_splits.holdout, **session_kwargs()
        )
        is fresh
    )
    # An equal-content dataset matches even as a different object.
    equal_train = Dataset(changed_X.copy(), np.asarray(tiny_splits.train.y).copy())
    assert (
        registry.get_or_create(
            "pair", SPEC, equal_train, tiny_splits.holdout, **session_kwargs()
        )
        is fresh
    )


def test_fleet_stays_within_global_byte_budget(tiny_splits):
    budget = 64 * 1024
    registry = SessionRegistry(
        max_sessions=3, max_total_bytes=budget, min_session_bytes=1024
    )
    pairs = {f"pair-{seed}": small_splits(seed=seed) for seed in (5, 6, 7)}
    theta_requests = [(n, delta) for n in (200, 300, 450, 600, 800) for delta in (0.05, 0.2)]
    peak = 0
    for key, splits in pairs.items():
        session = registry.get_or_create(
            key, SPEC, splits.train, splits.holdout, **session_kwargs()
        )
        for n, delta in theta_requests:
            session.accuracy_estimate(session.initial_model.theta, n, delta)
            current = registry.stats().bytes
            peak = max(peak, current)
            assert current <= budget
    assert peak > 0
    # Each member's cache caps sum to at most its assigned share (traffic
    # weighting makes shares unequal), every share respects the floor, and
    # the shares collectively never exceed the pool.
    shares = registry.session_shares()
    for key in registry.keys():
        caps = registry.get(key).cache_byte_caps()
        assert sum(caps.values()) <= shares[key]
        assert shares[key] >= registry.min_session_bytes
    assert sum(shares.values()) <= budget


def test_repeated_contracts_serve_from_cache_with_zero_new_evaluations(tiny_splits):
    registry = SessionRegistry(max_sessions=4, max_total_bytes=None)
    contracts = [
        ApproximationContract.from_accuracy(0.85),
        ApproximationContract.from_accuracy(0.90, delta=0.2),
    ]
    session = registry.get_or_create(
        "pair", SPEC, tiny_splits.train, tiny_splits.holdout, **session_kwargs()
    )
    for contract in contracts:
        session.answer(contract)
    misses_after_first_pass = session.cache_stats()["diff"].misses
    for _ in range(3):
        session = registry.get_or_create(
            "pair", SPEC, tiny_splits.train, tiny_splits.holdout, **session_kwargs()
        )
        for contract in contracts:
            assert session.answer(contract).from_cache
    assert session.cache_stats()["diff"].misses == misses_after_first_pass


def test_threaded_fleet_identical_to_serial(tiny_splits):
    """Hammer get_or_create/answer from a pool; answers must match serial."""
    pairs = {f"pair-{seed}": (small_splits(seed=seed), seed) for seed in (11, 12, 13)}
    contracts = [
        ApproximationContract.from_accuracy(0.85),
        ApproximationContract.from_accuracy(0.90, delta=0.2),
        ApproximationContract.from_accuracy(0.95, delta=0.01),
    ]
    workload = [(key, contract) for key in pairs for contract in contracts] * 4

    def serve(registry, key, contract):
        splits, seed = pairs[key]
        session = registry.get_or_create(
            key, SPEC, splits.train, splits.holdout, **session_kwargs(seed)
        )
        return session.answer(contract).estimate.epsilon

    def run(n_threads):
        registry = SessionRegistry(
            max_sessions=4, max_total_bytes=256 * 1024, min_session_bytes=1024
        )
        if n_threads == 1:
            served = [serve(registry, key, contract) for key, contract in workload]
        else:
            with ThreadPoolExecutor(n_threads) as pool:
                served = list(
                    pool.map(lambda request: serve(registry, *request), workload)
                )
        return served, registry

    serial, _ = run(1)
    threaded, registry = run(8)
    assert serial == threaded  # bitwise-identical epsilons
    stats = registry.stats()
    # Single-flight: one construction per distinct key, everything else hits.
    assert stats.misses == len(pairs)
    assert stats.hits == len(workload) - len(pairs)
    assert stats.bytes <= 256 * 1024


def test_threaded_invalidate_and_eviction_churn(tiny_splits):
    """Concurrent get_or_create + invalidate never deadlocks or corrupts."""
    registry = SessionRegistry(
        max_sessions=2,
        max_total_bytes=64 * 1024,
        min_session_bytes=1024,
        session_factory=FakeSession,
    )
    keys = ["a", "b", "c", "d"]
    errors: list[BaseException] = []

    def churn(worker: int) -> None:
        try:
            for i in range(25):
                key = keys[(worker + i) % len(keys)]
                registry.get_or_create(
                    key, SPEC, tiny_splits.train, tiny_splits.holdout
                )
                if i % 7 == 0:
                    registry.invalidate(key)
                registry.stats()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=churn, args=(w,)) for w in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
    assert not errors
    assert len(registry) <= 2
    stats = registry.stats()
    assert stats.sessions == len(stats.per_session)


def test_stats_rollup_aggregates_member_caches(tiny_splits):
    registry = SessionRegistry(max_sessions=4, max_total_bytes=None)
    for seed in (21, 22):
        splits = small_splits(seed=seed)
        session = registry.get_or_create(
            f"pair-{seed}", SPEC, splits.train, splits.holdout, **session_kwargs(seed)
        )
        session.answer(ApproximationContract.from_accuracy(0.9))
        session.answer(ApproximationContract.from_accuracy(0.9))
    totals = registry.stats().cache_totals()
    members = [registry.get(key) for key in registry.keys()]
    for name in ("diff", "model", "size"):
        assert totals[name].hits == sum(
            member.cache_stats()[name].hits for member in members
        )
        assert totals[name].misses == sum(
            member.cache_stats()[name].misses for member in members
        )
    assert totals["diff"].bytes == registry.stats().bytes - (
        totals["model"].bytes + totals["size"].bytes
    )
