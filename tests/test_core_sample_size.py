"""Tests for the Sample Size Estimator (Section 4)."""

import numpy as np
import pytest

from repro.core.contract import ApproximationContract
from repro.core.parameter_sampler import ParameterSampler
from repro.core.sample_size import (
    SampleSizeEstimate,
    SampleSizeEstimator,
    adaptive_probe_count,
)
from repro.core.statistics import compute_statistics
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.exceptions import SampleSizeError
from repro.models.logistic_regression import LogisticRegressionSpec


@pytest.fixture(scope="module")
def initial_model_setup():
    rng = np.random.default_rng(40)
    X = rng.normal(size=(40_000, 6))
    theta_true = rng.normal(size=6)
    y = (rng.uniform(size=40_000) < 1 / (1 + np.exp(-X @ theta_true))).astype(int)
    splits = train_holdout_test_split(
        Dataset(X, y), SplitSpec(0.1, 0.1), rng=np.random.default_rng(1)
    )
    spec = LogisticRegressionSpec(regularization=1e-3)
    n0 = 1000
    sample = splits.train.take(np.arange(n0))
    initial_model = spec.fit(sample)
    statistics = compute_statistics(spec, initial_model.theta, sample)
    return spec, splits, initial_model, statistics, n0


def make_estimator(spec, splits, k=64):
    return SampleSizeEstimator(spec, splits.holdout, n_parameter_samples=k)


class TestBinarySearch:
    def test_estimate_within_bounds(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits)
        contract = ApproximationContract(epsilon=0.05, delta=0.05)
        estimate = estimator.estimate(model.theta, n0, splits.train.n_rows, contract, stats)
        assert isinstance(estimate, SampleSizeEstimate)
        assert n0 <= estimate.sample_size <= splits.train.n_rows
        assert estimate.n_probability_evaluations == len(estimate.probed_sizes)

    def test_tighter_contract_needs_larger_sample(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits)
        loose = estimator.estimate(
            model.theta, n0, splits.train.n_rows,
            ApproximationContract(epsilon=0.10, delta=0.05), stats,
        )
        tight = estimator.estimate(
            model.theta, n0, splits.train.n_rows,
            ApproximationContract(epsilon=0.01, delta=0.05), stats,
        )
        assert tight.sample_size >= loose.sample_size

    def test_number_of_probes_is_logarithmic(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits)
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        estimate = estimator.estimate(model.theta, n0, splits.train.n_rows, contract, stats)
        N = splits.train.n_rows
        # 2 endpoint checks + at most ceil(log2(N - n0)) bisection steps.
        assert estimate.n_probability_evaluations <= 2 + int(np.ceil(np.log2(N - n0))) + 1

    def test_very_loose_contract_returns_n0(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits)
        contract = ApproximationContract(epsilon=0.9, delta=0.05)
        estimate = estimator.estimate(model.theta, n0, splits.train.n_rows, contract, stats)
        assert estimate.sample_size == n0
        assert estimate.feasible

    def test_shared_sampler_makes_search_deterministic(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits)
        contract = ApproximationContract(epsilon=0.04, delta=0.05)
        sampler = ParameterSampler(stats, rng=np.random.default_rng(3))
        a = estimator.estimate(model.theta, n0, splits.train.n_rows, contract, stats, sampler)
        b = estimator.estimate(model.theta, n0, splits.train.n_rows, contract, stats, sampler)
        assert a.sample_size == b.sample_size

    def test_contract_satisfied_monotone_in_n(self, initial_model_setup):
        """Empirical check of Theorem 2: satisfaction probability rises with n."""
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits, k=96)
        contract = ApproximationContract(epsilon=0.05, delta=0.2)
        sampler = ParameterSampler(stats, rng=np.random.default_rng(4))
        N = splits.train.n_rows
        outcomes = [
            estimator.contract_satisfied(model.theta, n0, candidate, N, contract, sampler)
            for candidate in [n0, N // 8, N // 2, N]
        ]
        # Once satisfied, staying satisfied as n grows (with shared draws).
        first_true = outcomes.index(True) if True in outcomes else len(outcomes)
        assert all(outcomes[first_true:])

    def test_skip_lower_probe_saves_one_evaluation(self, initial_model_setup):
        # The coordinator only reaches the search after the accuracy
        # estimator rejected n0, so the lower-endpoint probe is redundant.
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits)
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        N = splits.train.n_rows
        default = estimator.estimate(
            model.theta, n0, N, contract, stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(11)),
        )
        skipped = estimator.estimate(
            model.theta, n0, N, contract, stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(11)),
            skip_lower_probe=True,
        )
        # n0 is never Monte-Carlo-evaluated: the first probe is the upper
        # endpoint, and with identical base draws the search lands on the
        # same answer with exactly one evaluation fewer.
        assert n0 not in skipped.probed_sizes
        assert skipped.probed_sizes[0] == N
        assert skipped.n_probability_evaluations == default.n_probability_evaluations - 1
        assert skipped.sample_size == default.sample_size
        assert skipped.feasible == default.feasible

    def test_skip_lower_probe_degenerate_n0_equals_N(self, initial_model_setup):
        # With n0 = N the search window is a single point; skipping the
        # lower probe must still terminate after the (free) upper probe.
        spec, splits, model, stats, _ = initial_model_setup
        estimator = make_estimator(spec, splits)
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        N = splits.train.n_rows
        estimate = estimator.estimate(
            model.theta, N, N, contract, stats, skip_lower_probe=True
        )
        assert estimate.feasible
        assert estimate.sample_size == N
        assert estimate.n_probability_evaluations == 1
        assert estimate.probed_sizes == (N,)

    def test_invalid_sizes(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits)
        contract = ApproximationContract(epsilon=0.05, delta=0.05)
        with pytest.raises(SampleSizeError):
            estimator.estimate(model.theta, 0, splits.train.n_rows, contract, stats)
        with pytest.raises(SampleSizeError):
            estimator.estimate(model.theta, splits.train.n_rows + 1, splits.train.n_rows, contract, stats)

    def test_rejects_too_few_parameter_samples(self, initial_model_setup):
        spec, splits, *_ = initial_model_setup
        with pytest.raises(SampleSizeError):
            SampleSizeEstimator(spec, splits.holdout, n_parameter_samples=1)


class TestAdaptiveProbeBatching:
    """probe_batch is a ceiling; the per-round count adapts to the bracket."""

    def test_unit_schedule(self):
        # Wide brackets use the full batch; narrow ones shrink it without
        # adding passes; a width-2 bracket has exactly one useful midpoint.
        assert adaptive_probe_count(1024, 3) == 3
        assert adaptive_probe_count(9, 3) == 2
        assert adaptive_probe_count(5, 3) == 2
        assert adaptive_probe_count(2, 3) == 1
        assert adaptive_probe_count(1, 3) == 0
        # probe_batch=1 is the classic bisection at every width.
        for span in (2, 3, 10, 1000):
            assert adaptive_probe_count(span, 1) == 1
        # The count never exceeds what the bracket can use.
        for span in range(2, 50):
            for batch in range(1, 6):
                count = adaptive_probe_count(span, batch)
                assert 1 <= count <= min(batch, span - 1)

    def test_same_pass_count_as_fixed_batch(self):
        # The adaptive count is chosen so (count+1)^rounds >= span with the
        # same rounds the fixed batch needs, so passes never increase.
        for span in range(2, 2_000, 37):
            for batch in (2, 3, 5):
                fixed_rounds = 1
                while (batch + 1) ** fixed_rounds < span:
                    fixed_rounds += 1
                count = adaptive_probe_count(span, batch)
                assert (count + 1) ** fixed_rounds >= span

    def test_rejects_probe_batch_below_one(self):
        for bad in (0, -1, -100):
            with pytest.raises(SampleSizeError, match="probe_batch"):
                adaptive_probe_count(10, bad)

    def test_resolved_bracket_probes_nothing(self):
        # span <= 1 means low and high are adjacent (or equal): there is no
        # interior point left, whatever the batch ceiling.
        for span in (1, 0, -3):
            for batch in (1, 2, 7):
                assert adaptive_probe_count(span, batch) == 0

    def test_width_two_bracket_has_one_midpoint(self):
        for batch in (1, 2, 16, 10_000):
            assert adaptive_probe_count(2, batch) == 1

    def test_probe_batch_larger_than_span_caps_at_interior(self):
        # A ceiling wider than the bracket stacks exactly the interior
        # points (resolving in one pass), never phantom candidates.
        for span in range(2, 12):
            assert adaptive_probe_count(span, 10_000) == span - 1

    def test_adaptive_batched_search_matches_bisection_with_fewer_probes(
        self, initial_model_setup
    ):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits, k=32)
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        N = splits.train.n_rows
        bisect = estimator.estimate(
            model.theta, n0, N, contract, stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(5)),
            probe_batch=1,
        )
        # Spy on the stacked passes to observe the per-round schedule.
        round_sizes = []
        original = estimator.contract_satisfied_batch

        def spy(theta0, n0_, candidates, N_, contract_, sampler_):
            round_sizes.append(len(candidates))
            return original(theta0, n0_, candidates, N_, contract_, sampler_)

        estimator.contract_satisfied_batch = spy
        try:
            batched = estimator.estimate(
                model.theta, n0, N, contract, stats,
                sampler=ParameterSampler(stats, rng=np.random.default_rng(5)),
                probe_batch=3,
            )
        finally:
            del estimator.contract_satisfied_batch
        # Same answer under the shared-draw monotone predicate...
        assert batched.sample_size == bisect.sample_size
        assert batched.feasible == bisect.feasible
        assert all(n0 <= probe <= N for probe in batched.probed_sizes)
        # ...and the observed schedule is genuinely adaptive: no round ever
        # stacked above the ceiling, the first (widest) bracket used the
        # full batch, and at least one narrowed round stacked fewer.  The
        # first two spy entries are the single-candidate endpoint probes.
        bracket_rounds = round_sizes[2:]
        assert bracket_rounds, "search never entered the bracket loop"
        assert all(1 <= size <= 3 for size in bracket_rounds)
        assert bracket_rounds[0] == 3
        assert min(bracket_rounds) < 3


class TestFusedLockstepSearch:
    """estimate_many: lockstep fused search ≡ serial searches, fewer passes."""

    CONTRACTS = [
        ApproximationContract(epsilon=0.02, delta=0.05),
        ApproximationContract(epsilon=0.03, delta=0.05),
        ApproximationContract(epsilon=0.05, delta=0.05),
        ApproximationContract(epsilon=0.03, delta=0.10),
    ]

    def test_matches_serial_estimates_exactly(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits, k=32)
        N = splits.train.n_rows
        # Serial baseline: one shared sampler, as a session would hold
        # (cached base draws make the vectors order-independent).
        serial_sampler = ParameterSampler(stats, rng=np.random.default_rng(17))
        rounds_per_search = []
        serial = []
        for contract in self.CONTRACTS:
            original = estimator.contract_satisfied_batch
            rounds = 0

            def spy(*args, _original=original, **kwargs):
                nonlocal rounds
                rounds += 1
                return _original(*args, **kwargs)

            estimator.contract_satisfied_batch = spy
            try:
                serial.append(
                    estimator.estimate(
                        model.theta, n0, N, contract, stats,
                        sampler=serial_sampler,
                        skip_lower_probe=True, probe_batch=3,
                    )
                )
            finally:
                del estimator.contract_satisfied_batch
            rounds_per_search.append(rounds)

        fused = estimator.estimate_many(
            model.theta, n0, N, self.CONTRACTS, stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(17)),
            skip_lower_probe=True, probe_batch=3,
        )
        assert len(fused.estimates) == len(self.CONTRACTS)
        for lone, member in zip(serial, fused.estimates):
            assert member.sample_size == lone.sample_size
            assert member.feasible == lone.feasible
            assert member.probed_sizes == lone.probed_sizes
            assert member.n_probability_evaluations == lone.n_probability_evaluations
        # Exact accounting: serial cost is each member's own round count;
        # the fused run shares rounds, so it can only be cheaper.
        assert fused.serial_passes == sum(rounds_per_search)
        assert fused.fused_passes < fused.serial_passes
        assert fused.passes_saved == fused.serial_passes - fused.fused_passes

    def test_duplicate_contracts_cost_nothing_extra(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits, k=32)
        N = splits.train.n_rows
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        lone = estimator.estimate_many(
            model.theta, n0, N, [contract], stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(21)),
            skip_lower_probe=True, probe_batch=3,
        )
        tripled = estimator.estimate_many(
            model.theta, n0, N, [contract] * 3, stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(21)),
            skip_lower_probe=True, probe_batch=3,
        )
        # Identical contracts schedule identical candidates: the union pass
        # absorbs them, so the fused cost does not grow with multiplicity.
        assert tripled.fused_passes == lone.fused_passes
        assert tripled.serial_passes == 3 * lone.serial_passes
        for member in tripled.estimates:
            assert member.sample_size == lone.estimates[0].sample_size
            assert member.probed_sizes == lone.estimates[0].probed_sizes

    def test_empty_and_invalid_inputs(self, initial_model_setup):
        spec, splits, model, stats, n0 = initial_model_setup
        estimator = make_estimator(spec, splits, k=32)
        N = splits.train.n_rows
        empty = estimator.estimate_many(model.theta, n0, N, [], stats)
        assert empty.estimates == ()
        assert (empty.fused_passes, empty.serial_passes) == (0, 0)
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        with pytest.raises(SampleSizeError):
            estimator.estimate_many(model.theta, 0, N, [contract], stats)
        with pytest.raises(SampleSizeError):
            estimator.estimate_many(
                model.theta, n0, N, [contract], stats, probe_batch=0
            )


class TestProbeBatchBoundaryValidation:
    """probe_batch is validated with a clear error at every entry layer."""

    def test_coordinator_rejects_bad_probe_batch(self):
        from repro.core.coordinator import BlinkML

        spec = LogisticRegressionSpec(regularization=1e-3)
        with pytest.raises(SampleSizeError, match="probe_batch must be at least 1"):
            BlinkML(spec, probe_batch=0)
        with pytest.raises(SampleSizeError, match="probe_batch"):
            BlinkML(spec, probe_batch=-2)

    def test_session_rejects_bad_probe_batch(self):
        from repro.core.session import EstimationSession

        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 3))
        y = (rng.uniform(size=30) < 0.5).astype(int)
        data = Dataset(X, y)
        spec = LogisticRegressionSpec(regularization=1e-3)
        # Raises before any model is trained.
        with pytest.raises(SampleSizeError, match="probe_batch must be at least 1"):
            EstimationSession(
                spec, data, data, initial_sample_size=10, probe_batch=0
            )
