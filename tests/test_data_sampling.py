"""Unit and property tests for uniform and reservoir sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.sampling import UniformSampler, reservoir_sample
from repro.exceptions import DataError


def make_dataset(n=100, d=2):
    rng = np.random.default_rng(3)
    return Dataset(np.arange(n * d, dtype=float).reshape(n, d), rng.integers(0, 2, size=n))


class TestUniformSampler:
    def test_sample_size(self):
        sampler = UniformSampler(make_dataset(50), rng=np.random.default_rng(0))
        assert sampler.sample(10).n_rows == 10

    def test_sample_without_replacement(self):
        sampler = UniformSampler(make_dataset(30), rng=np.random.default_rng(0))
        sample = sampler.sample(30)
        # All rows distinct when sampling the whole population.
        assert len({tuple(row) for row in sample.X}) == 30

    def test_sample_too_large_raises(self):
        sampler = UniformSampler(make_dataset(10))
        with pytest.raises(DataError):
            sampler.sample(11)

    def test_sample_nonpositive_raises(self):
        sampler = UniformSampler(make_dataset(10))
        with pytest.raises(DataError):
            sampler.sample(0)

    def test_nested_samples_are_nested(self):
        sampler = UniformSampler(make_dataset(100), rng=np.random.default_rng(1))
        small = sampler.nested_sample(10)
        large = sampler.nested_sample(40)
        small_rows = {tuple(row) for row in small.X}
        large_rows = {tuple(row) for row in large.X}
        assert small_rows <= large_rows

    def test_nested_sample_is_uniformly_spread(self):
        # The prefix of a random permutation should not be biased toward the
        # head of the dataset: its mean row index should be near the middle.
        sampler = UniformSampler(make_dataset(1000, 1), rng=np.random.default_rng(2))
        sample = sampler.nested_sample(300)
        mean_row_id = sample.X[:, 0].mean()
        assert 300 < mean_row_id < 700

    def test_sample_indices_range(self):
        sampler = UniformSampler(make_dataset(20), rng=np.random.default_rng(0))
        indices = sampler.sample_indices(5)
        assert indices.min() >= 0 and indices.max() < 20
        assert len(np.unique(indices)) == 5

    def test_concurrent_nested_samples_share_one_permutation(self):
        # Regression: the permutation is built lazily; two concurrent first
        # calls to nested_sample could each build their own permutation and
        # break the nesting invariant (D0 ⊂ Dn) for one of the callers.
        # Double-checked init must leave every caller on a single
        # permutation, so any smaller sample is a prefix of any larger one.
        from concurrent.futures import ThreadPoolExecutor

        for attempt in range(5):  # several fresh samplers widen the race window
            sampler = UniformSampler(
                make_dataset(400), rng=np.random.default_rng(attempt)
            )
            sizes = [10, 50, 100, 200, 400] * 4
            with ThreadPoolExecutor(8) as pool:
                samples = list(pool.map(sampler.nested_sample, sizes))
            reference = sampler.nested_sample(400)
            for size, sample in zip(sizes, samples):
                np.testing.assert_array_equal(sample.X, reference.X[:size])

    def test_permutation_is_read_only(self):
        sampler = UniformSampler(make_dataset(20), rng=np.random.default_rng(0))
        sampler.nested_sample(5)
        assert sampler._permutation.flags.writeable is False


class TestReservoirSample:
    def test_exact_size(self):
        rows = (np.array([i, i]) for i in range(100))
        reservoir = reservoir_sample(rows, 10, rng=np.random.default_rng(0))
        assert reservoir.shape == (10, 2)

    def test_short_stream_raises(self):
        rows = (np.array([i]) for i in range(3))
        with pytest.raises(DataError):
            reservoir_sample(rows, 5)

    def test_invalid_k_raises(self):
        with pytest.raises(DataError):
            reservoir_sample(iter([]), 0)

    def test_uniformity(self):
        # Each of the 20 stream items should appear in roughly 25% of
        # reservoirs of size 5 over many repetitions.
        counts = np.zeros(20)
        rng = np.random.default_rng(7)
        repetitions = 400
        for _ in range(repetitions):
            rows = (np.array([float(i)]) for i in range(20))
            reservoir = reservoir_sample(rows, 5, rng=rng)
            for value in reservoir[:, 0]:
                counts[int(value)] += 1
        frequencies = counts / repetitions
        assert np.all(frequencies > 0.15)
        assert np.all(frequencies < 0.37)

    @given(
        n_stream=st.integers(min_value=1, max_value=60),
        k=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_reservoir_rows_come_from_stream(self, n_stream, k):
        rows = [np.array([float(i)]) for i in range(n_stream)]
        if k > n_stream:
            with pytest.raises(DataError):
                reservoir_sample(iter(rows), k, rng=np.random.default_rng(0))
        else:
            reservoir = reservoir_sample(iter(rows), k, rng=np.random.default_rng(0))
            values = set(reservoir[:, 0])
            assert values <= {float(i) for i in range(n_stream)}
            assert len(values) == k
