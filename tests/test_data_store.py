"""Tests for the out-of-core shard store (repro.data.store).

Four contract groups, mirroring the subsystem's load-bearing claims:

* **write→read roundtrip** — a store materialises, gathers and samples
  bitwise-identically to the in-memory :class:`Dataset` it was written
  from, independent of shard size;
* **digest compatibility** — the manifest-level content digest equals
  ``Dataset.content_digest()`` of the same data (the registry fingerprints
  sharded members without materialising them), and any tampering with the
  shard files or manifest is detected;
* **streaming parity** — accuracy/sample-size-relevant streamed diffs over
  a ``ShardedDataset`` match the in-memory path bitwise for classification
  families and to 1e-12 for regression, under the serial, thread and
  process backends alike;
* **strict failure** — partial or corrupt stores (truncated manifest,
  missing shards, header mismatches) refuse to open rather than serving
  questionable rows.
"""

from __future__ import annotations

import json
import os
import pickle

import numpy as np
import pytest

from repro.core.session import EstimationSession
from repro.core.contract import ApproximationContract
from repro.core.registry import SessionRegistry
from repro.data.dataset import Dataset
from repro.data.sampling import UniformSampler
from repro.data.store import (
    MANIFEST_FILENAME,
    LabelMoments,
    ShardManifest,
    ShardStore,
    ShardStoreWriter,
    ShardedDataset,
    write_blocks,
)
from repro.data.synthetic import higgs_like, power_like
from repro.evaluation.streaming import (
    StreamingConfig,
    iter_holdout_blocks,
    streaming_pairwise_prediction_differences,
    streaming_prediction_differences,
)
from repro.exceptions import DataError, ModelSpecError
from repro.models.base import ModelClassSpec
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec


@pytest.fixture(scope="module")
def cls_data() -> Dataset:
    return higgs_like(n_rows=2_000, n_features=6, seed=11)


@pytest.fixture(scope="module")
def reg_data() -> Dataset:
    return power_like(n_rows=1_500, n_features=5, seed=12)


def write_store(dataset: Dataset, directory, shard_rows: int = 256) -> ShardedDataset:
    return ShardStore.write(dataset, directory, shard_rows=shard_rows).dataset()


# ----------------------------------------------------------------------
# Write → read roundtrip
# ----------------------------------------------------------------------
class TestRoundtrip:
    @pytest.mark.parametrize("shard_rows", [64, 256, 999, 5_000])
    def test_materialize_is_bitwise_identical(self, cls_data, tmp_path, shard_rows):
        sharded = write_store(cls_data, tmp_path, shard_rows=shard_rows)
        back = sharded.materialize()
        assert np.array_equal(back.X, cls_data.X)
        assert np.array_equal(back.y, cls_data.y)
        assert back.y.dtype == cls_data.y.dtype
        assert sharded.n_rows == cls_data.n_rows
        assert sharded.n_features == cls_data.n_features
        assert sharded.is_supervised

    def test_take_matches_dataset_take(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path)
        rng = np.random.default_rng(0)
        for size in (1, 7, 500, cls_data.n_rows):
            indices = rng.permutation(cls_data.n_rows)[:size]
            expected = cls_data.take(indices)
            actual = sharded.take(indices)
            assert np.array_equal(actual.X, expected.X)
            assert np.array_equal(actual.y, expected.y)

    def test_take_validates_indices(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path)
        with pytest.raises(DataError):
            sharded.take(np.array([], dtype=np.intp))
        with pytest.raises(DataError):
            sharded.take(np.array([cls_data.n_rows]))
        with pytest.raises(DataError):
            sharded.take(np.array([-1]))

    def test_uniform_sampler_draws_identically_from_shards(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path)
        mem = UniformSampler(cls_data, rng=np.random.default_rng(3))
        ooc = UniformSampler(sharded, rng=np.random.default_rng(3))
        for n in (10, 50, 200):
            a, b = mem.nested_sample(n), ooc.nested_sample(n)
            assert np.array_equal(a.X, b.X) and np.array_equal(a.y, b.y)
        a, b = mem.sample(100), ooc.sample(100)
        assert np.array_equal(a.X, b.X) and np.array_equal(a.y, b.y)

    def test_unsupervised_store(self, tmp_path):
        data = Dataset(np.random.default_rng(0).normal(size=(300, 4)))
        sharded = write_store(data, tmp_path, shard_rows=100)
        assert not sharded.is_supervised
        assert np.array_equal(sharded.materialize().X, data.X)
        with pytest.raises(DataError):
            sharded.label_std()
        # Misusing a normalised regression metric on it raises the same
        # ModelSpecError as the in-memory path, not a manifest DataError.
        spec = LinearRegressionSpec()
        with pytest.raises(ModelSpecError, match="needs holdout labels"):
            spec.prediction_differences(
                np.zeros(4), np.zeros((2, 4)), sharded.materialize()
            )
        with pytest.raises(ModelSpecError, match="needs holdout labels"):
            spec.diff_accumulator(np.zeros(4), np.zeros((2, 4)), sharded)

    def test_writer_buffers_uneven_blocks_into_even_shards(self, cls_data, tmp_path):
        writer = ShardStoreWriter(tmp_path, shard_rows=300, name=cls_data.name)
        cuts = [0, 17, 17, 450, 451, 1_200, cls_data.n_rows]
        for start, stop in zip(cuts, cuts[1:]):
            if stop > start:
                writer.append(cls_data.X[start:stop], cls_data.y[start:stop])
        store = writer.close()
        shards = store.manifest.shards
        assert [s.n_rows for s in shards[:-1]] == [300] * (len(shards) - 1)
        assert store.manifest.content_digest == cls_data.content_digest()

    def test_write_blocks_helper(self, cls_data, tmp_path):
        blocks = [
            (cls_data.X[s : s + 401], cls_data.y[s : s + 401])
            for s in range(0, cls_data.n_rows, 401)
        ]
        store = write_blocks(blocks, tmp_path, shard_rows=256, name="blocks")
        assert store.manifest.name == "blocks"
        assert store.manifest.content_digest == cls_data.content_digest()

    def test_writer_copies_reused_caller_buffers(self, tmp_path):
        # The natural ETL loop reuses one block buffer between appends; the
        # writer must own its pending rows, or the last fill silently
        # rewrites every buffered block (and the digests, computed at flush
        # time, would verify the corruption clean).
        X_buf = np.empty((10, 2))
        y_buf = np.empty(10)
        writer = ShardStoreWriter(tmp_path, shard_rows=100)
        for value in (0.0, 1.0, 2.0):
            X_buf[:] = value
            y_buf[:] = value
            writer.append(X_buf, y_buf)
        store = writer.close()
        back = store.dataset().materialize()
        expected = np.repeat([0.0, 1.0, 2.0], 10)
        assert np.array_equal(back.X[:, 0], expected)
        assert np.array_equal(back.y, expected)
        store.verify()

    def test_writer_rejects_schema_drift(self, tmp_path):
        writer = ShardStoreWriter(tmp_path, shard_rows=10)
        writer.append(np.ones((5, 3)), np.ones(5))
        with pytest.raises(DataError):
            writer.append(np.ones((5, 4)), np.ones(5))  # feature count drift
        with pytest.raises(DataError):
            writer.append(np.ones((5, 3)))  # labels disappeared
        with pytest.raises(DataError):
            writer.append(np.ones((5, 3)), np.ones(5, dtype=np.int32))  # dtype drift
        with pytest.raises(DataError):
            writer.append(np.ones((0, 3)), np.ones(0))  # empty block
        writer.close()
        with pytest.raises(DataError):
            writer.append(np.ones((5, 3)), np.ones(5))  # closed

    def test_writer_refuses_to_clobber_without_overwrite(self, cls_data, tmp_path):
        ShardStore.write(cls_data.head(10), tmp_path, shard_rows=8)
        with pytest.raises(DataError):
            ShardStoreWriter(tmp_path)
        # Explicit overwrite replaces the store.
        store = ShardStore.write(
            cls_data.head(20), tmp_path, shard_rows=8, overwrite=True
        )
        assert store.n_rows == 20
        # No stale shard files from the narrower first store survive.
        store.verify()
        shard_files = [f for f in os.listdir(store.directory) if f.endswith(".npy")]
        assert len(shard_files) == 2 * store.n_shards

    def test_crashed_overwrite_leaves_unopenable_store_not_stale_data(
        self, cls_data, tmp_path
    ):
        # The old manifest must go *before* the rewrite starts: a crash
        # mid-overwrite must leave a directory ShardStore.open rejects,
        # never an old manifest over mixed old/new shard data (which would
        # open cleanly and fingerprint as the old content).
        ShardStore.write(cls_data.head(100), tmp_path, shard_rows=50)
        writer = ShardStoreWriter(tmp_path, shard_rows=50, overwrite=True)
        writer.append(np.zeros((60, cls_data.n_features)), np.zeros(60))  # flushes one shard
        # Simulated crash: writer never closed.
        with pytest.raises(DataError, match="not a shard store"):
            ShardStore.open(tmp_path)


# ----------------------------------------------------------------------
# Digest stability and tamper detection
# ----------------------------------------------------------------------
class TestDigests:
    def test_manifest_digest_equals_in_memory_digest(self, cls_data, reg_data, tmp_path):
        for name, data in (("cls", cls_data), ("reg", reg_data)):
            sharded = write_store(data, tmp_path / name)
            assert sharded.content_digest() == data.content_digest()

    def test_digest_independent_of_shard_size(self, cls_data, tmp_path):
        digests = {
            write_store(cls_data, tmp_path / str(rows), shard_rows=rows).content_digest()
            for rows in (128, 600, 10_000)
        }
        assert digests == {cls_data.content_digest()}

    def test_digest_changes_with_content(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path / "a")
        changed_X = np.asarray(cls_data.X).copy()
        changed_X[123, 2] += 1e-9
        changed = Dataset(changed_X, np.asarray(cls_data.y).copy())
        other = write_store(changed, tmp_path / "b")
        assert other.content_digest() != sharded.content_digest()

    def test_verify_detects_shard_tampering(self, cls_data, tmp_path):
        store = ShardStore.write(cls_data, tmp_path, shard_rows=256)
        store.verify()  # intact store passes
        shard = store.manifest.shards[2]
        path = os.path.join(store.directory, shard.x_file)
        data = bytearray(open(path, "rb").read())
        data[-1] ^= 0xFF  # flip one byte of row data
        open(path, "wb").write(bytes(data))
        reopened = ShardStore.open(tmp_path)  # header still valid
        with pytest.raises(DataError, match="digest mismatch"):
            reopened.verify()

    def test_verify_detects_manifest_digest_tampering(self, cls_data, tmp_path):
        store = ShardStore.write(cls_data, tmp_path, shard_rows=512)
        manifest_path = os.path.join(store.directory, MANIFEST_FILENAME)
        payload = json.loads(open(manifest_path).read())
        payload["content_digest"] = "0" * 32
        open(manifest_path, "w").write(json.dumps(payload))
        with pytest.raises(DataError, match="digest mismatch"):
            ShardStore.open(tmp_path).verify()

    def test_verify_detects_label_moment_tampering(self, reg_data, tmp_path):
        # The moments are manifest-resident *derived* data feeding the
        # normalised regression scale; they are outside the row-data digest
        # so verify() must re-derive and compare them.
        store = ShardStore.write(reg_data, tmp_path, shard_rows=256)
        manifest_path = os.path.join(store.directory, MANIFEST_FILENAME)
        payload = json.loads(open(manifest_path).read())
        payload["label_moments"]["m2"] *= 100.0
        open(manifest_path, "w").write(json.dumps(payload))
        tampered = ShardStore.open(tmp_path)  # structurally valid
        with pytest.raises(DataError, match="label moments mismatch"):
            tampered.verify()

    def test_open_rejects_supervised_manifest_without_moments(self, reg_data, tmp_path):
        # Stripping the moments from a supervised manifest must fail at
        # open — not surface later as a misleading AttributeError in
        # verify() or an "unsupervised" label_std() error.
        store = ShardStore.write(reg_data, tmp_path, shard_rows=256)
        manifest_path = os.path.join(store.directory, MANIFEST_FILENAME)
        payload = json.loads(open(manifest_path).read())
        payload["label_moments"] = None
        open(manifest_path, "w").write(json.dumps(payload))
        with pytest.raises(DataError, match="label moments must be present"):
            ShardStore.open(tmp_path)

    def test_open_rejects_moment_count_mismatch(self, reg_data, tmp_path):
        store = ShardStore.write(reg_data, tmp_path, shard_rows=256)
        manifest_path = os.path.join(store.directory, MANIFEST_FILENAME)
        payload = json.loads(open(manifest_path).read())
        payload["label_moments"]["count"] += 1
        open(manifest_path, "w").write(json.dumps(payload))
        with pytest.raises(DataError, match="label moments cover"):
            ShardStore.open(tmp_path)

    def test_rewrite_after_crash_leaves_no_stray_shards(self, cls_data, tmp_path):
        # A crashed write leaves shards without a manifest; a successful
        # re-run into the same directory must clear them, not strand alien
        # row data beside a store whose manifest never references it.
        writer = ShardStoreWriter(tmp_path, shard_rows=100)
        writer.append(np.asarray(cls_data.X)[:950], np.asarray(cls_data.y)[:950])
        # crash: never closed — 9 full shards on disk, no manifest
        store = ShardStore.write(cls_data.head(300), tmp_path, shard_rows=100)
        store.verify()
        shard_files = [
            f for f in os.listdir(store.directory)
            if f.startswith("shard-") and f.endswith(".npy")
        ]
        assert len(shard_files) == 2 * store.n_shards == 6

    def test_nan_labels_verify_clean(self, tmp_path):
        # Dataset permits NaN labels; a pristine store holding them must
        # not be flagged as tampered (IEEE nan != nan in the moments).
        rng = np.random.default_rng(5)
        y = rng.normal(size=400)
        y[7] = np.nan
        data = Dataset(rng.normal(size=(400, 3)), y)
        store = ShardStore.write(data, tmp_path, shard_rows=128)
        store.verify()
        assert store.manifest.content_digest == data.content_digest()

    def test_close_is_retryable_after_transient_failure(
        self, cls_data, tmp_path, monkeypatch
    ):
        writer = ShardStoreWriter(tmp_path, shard_rows=300)
        writer.append(np.asarray(cls_data.X)[:500], np.asarray(cls_data.y)[:500])
        calls = {"n": 0}
        original = ShardManifest.save

        def flaky(manifest, directory):
            if calls["n"] == 0:
                calls["n"] += 1
                raise OSError("disk hiccup")
            return original(manifest, directory)

        monkeypatch.setattr(ShardManifest, "save", flaky)
        with pytest.raises(OSError):
            writer.close()
        # The transient failure must not wedge the writer: a retry redoes
        # the digest + save and returns a fully valid store.
        store = writer.close()
        store.verify()
        assert store.n_rows == 500

    def test_flush_failure_does_not_lose_pending_rows(
        self, cls_data, tmp_path, monkeypatch
    ):
        # np.save failing mid-flush must push the taken rows back: a
        # retried close() would otherwise publish a *truncated* store whose
        # digests all verify clean (silent data loss).
        writer = ShardStoreWriter(tmp_path, shard_rows=300)
        writer.append(np.asarray(cls_data.X)[:1_000], np.asarray(cls_data.y)[:1_000])
        calls = {"n": 0}
        original = np.save

        def flaky(path, array):
            if calls["n"] == 0:
                calls["n"] += 1
                raise OSError("no space left on device")
            return original(path, array)

        monkeypatch.setattr(np, "save", flaky)
        with pytest.raises(OSError):
            writer.close()  # remainder flush fails on the first save
        store = writer.close()  # retry flushes the restored rows
        store.verify()
        assert store.n_rows == 1_000
        back = store.dataset().materialize()
        assert np.array_equal(back.X, np.asarray(cls_data.X)[:1_000])
        assert np.array_equal(back.y, np.asarray(cls_data.y)[:1_000])

    def test_label_std_matches_numpy(self, reg_data, tmp_path):
        sharded = write_store(reg_data, tmp_path, shard_rows=97)
        assert sharded.label_std() == pytest.approx(float(np.std(reg_data.y)), abs=1e-12)

    def test_label_moments_combine(self):
        rng = np.random.default_rng(1)
        y = rng.normal(loc=50.0, scale=3.0, size=1_000)
        moments = LabelMoments(count=0, mean=0.0, m2=0.0)
        for block in np.array_split(y, 7):
            mean = float(block.mean())
            moments = moments.combined(
                count=block.size, mean=mean, m2=float(np.sum((block - mean) ** 2))
            )
        assert moments.std == pytest.approx(float(np.std(y)), abs=1e-12)


# ----------------------------------------------------------------------
# Partial / corrupt stores must refuse to open
# ----------------------------------------------------------------------
class TestCorruptStores:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DataError, match="not a shard store"):
            ShardStore.open(tmp_path)

    def test_truncated_manifest(self, cls_data, tmp_path):
        ShardStore.write(cls_data, tmp_path, shard_rows=512)
        manifest_path = os.path.join(os.fspath(tmp_path), MANIFEST_FILENAME)
        text = open(manifest_path).read()
        open(manifest_path, "w").write(text[: len(text) // 2])
        with pytest.raises(DataError, match="corrupt"):
            ShardStore.open(tmp_path)

    def test_missing_shard_file(self, cls_data, tmp_path):
        store = ShardStore.write(cls_data, tmp_path, shard_rows=512)
        os.remove(os.path.join(store.directory, store.manifest.shards[1].x_file))
        with pytest.raises(DataError, match="missing shard file"):
            ShardStore.open(tmp_path)

    def test_shard_header_mismatch(self, cls_data, tmp_path):
        store = ShardStore.write(cls_data, tmp_path, shard_rows=512)
        shard = store.manifest.shards[0]
        np.save(
            os.path.join(store.directory, shard.x_file),
            np.zeros((shard.n_rows + 1, cls_data.n_features)),
        )
        with pytest.raises(DataError, match="manifest expects"):
            ShardStore.open(tmp_path)

    def test_unknown_manifest_version(self, cls_data, tmp_path):
        ShardStore.write(cls_data, tmp_path, shard_rows=512)
        manifest_path = os.path.join(os.fspath(tmp_path), MANIFEST_FILENAME)
        payload = json.loads(open(manifest_path).read())
        payload["version"] = 99
        open(manifest_path, "w").write(json.dumps(payload))
        with pytest.raises(DataError, match="version"):
            ShardStore.open(tmp_path)

    def test_non_tiling_shards_rejected(self, cls_data, tmp_path):
        ShardStore.write(cls_data, tmp_path, shard_rows=512)
        manifest_path = os.path.join(os.fspath(tmp_path), MANIFEST_FILENAME)
        payload = json.loads(open(manifest_path).read())
        payload["shards"][1]["start"] += 1  # leave a one-row hole
        open(manifest_path, "w").write(json.dumps(payload))
        with pytest.raises(DataError, match="tile"):
            ShardStore.open(tmp_path)

    def test_manifest_json_roundtrip_and_shard_lookup(self, cls_data, tmp_path):
        store = ShardStore.write(cls_data, tmp_path, shard_rows=300)
        manifest = ShardManifest.from_json(store.manifest.to_json())
        assert manifest == store.manifest
        for row in (0, 299, 300, cls_data.n_rows - 1):
            shard = manifest.shard_for_row(row)
            assert shard.start <= row < shard.stop
        with pytest.raises(DataError):
            manifest.shard_for_row(cls_data.n_rows)


# ----------------------------------------------------------------------
# Block source behaviour
# ----------------------------------------------------------------------
class TestBlockSource:
    def test_bounds_snap_to_shard_boundaries(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        bounds = sharded.block_bounds(128)
        assert bounds[0] == (0, 128)
        assert (bounds[-1][1]) == cls_data.n_rows
        # Contiguous coverage, and no bound crosses a 300-row shard edge.
        for (a_start, a_stop), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_stop == b_start
        for start, stop in bounds:
            assert stop - start <= 128
            assert start // 300 == (stop - 1) // 300

    def test_blocks_are_memory_mapped_views(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        block = next(iter_holdout_blocks(sharded, 128))
        assert isinstance(block, Dataset)
        base = block.X.base
        while base is not None and not isinstance(base, np.memmap):
            base = base.base
        assert isinstance(base, np.memmap)

    def test_blocks_concatenate_to_the_dataset(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        X = np.concatenate([b.X for b in iter_holdout_blocks(sharded, 128)], axis=0)
        assert np.array_equal(X, cls_data.X)

    def test_cross_shard_read_block_still_correct(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        block = sharded.read_block(250, 450)  # crosses the first shard edge
        assert np.array_equal(block.X, np.asarray(cls_data.X)[250:450])

    def test_memmap_cache_is_bounded_on_many_shard_stores(self, cls_data, tmp_path):
        # 100 shards, streamed end to end: the instance must keep at most
        # MAX_CACHED_SHARDS shards' memory maps open (unbounded caching
        # exhausts the process fd limit on large stores).
        sharded = write_store(cls_data, tmp_path, shard_rows=20)
        assert sharded.manifest.n_shards == 100
        total = 0
        for block in sharded.iter_blocks(20):
            total += block.n_rows
            assert len(sharded._memmaps) <= ShardedDataset.MAX_CACHED_SHARDS
        assert total == cls_data.n_rows
        # Gathers across every shard stay bounded too, and stay correct.
        indices = np.random.default_rng(0).permutation(cls_data.n_rows)[:500]
        assert np.array_equal(sharded.take(indices).X, cls_data.take(indices).X)
        assert len(sharded._memmaps) <= ShardedDataset.MAX_CACHED_SHARDS

    def test_ppca_streams_sharded_holdout_without_materializing(self, tmp_path):
        # PPCA's metric is parameter-space: evaluating over a sharded
        # holdout must read only the manifest schema, never the rows.
        from repro.models.ppca import PPCASpec

        data = Dataset(np.random.default_rng(2).normal(size=(600, 8)))
        sharded = write_store(data, tmp_path, shard_rows=100)
        spec = PPCASpec(n_factors=2)
        p = spec.n_parameters(data)
        rng = np.random.default_rng(3)
        theta, Thetas = rng.normal(size=p), rng.normal(size=(5, p))
        expected = spec.prediction_differences(theta, Thetas, data)
        actual = streaming_prediction_differences(
            spec, theta, Thetas, sharded, StreamingConfig(block_rows=100)
        )
        np.testing.assert_allclose(actual, expected, atol=1e-15)
        # No shard was ever opened: the accumulator skipped the block loop
        # and the factory touched only n_features from the manifest.
        assert len(sharded._memmaps) == 0

    def test_pickle_roundtrip_reopens_store(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        clone = pickle.loads(pickle.dumps(sharded))
        assert clone.content_digest() == sharded.content_digest()
        assert np.array_equal(clone.read_block(0, 10).X, sharded.read_block(0, 10).X)

    def test_pickle_detects_store_swap(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path / "a", shard_rows=300)
        payload = pickle.dumps(sharded)
        changed = Dataset(np.asarray(cls_data.X) + 1.0, cls_data.y)
        ShardStore.write(changed, tmp_path / "a", shard_rows=300, overwrite=True)
        with pytest.raises(DataError, match="changed between"):
            pickle.loads(payload)


# ----------------------------------------------------------------------
# Streaming parity: in-memory Dataset vs ShardedDataset, all backends
# ----------------------------------------------------------------------
def sampled_parameters(d: int, k: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    return rng.normal(size=d), rng.normal(size=(k, d)), rng.normal(size=(k, d))


BACKENDS = [
    StreamingConfig(block_rows=128),
    StreamingConfig(block_rows=128, n_workers=3, backend="threads"),
    StreamingConfig(block_rows=128, n_workers=2, backend="processes"),
]


class TestStreamingParity:
    @pytest.mark.parametrize("config", BACKENDS, ids=["serial", "threads", "processes"])
    def test_classification_bitwise(self, cls_data, tmp_path, config):
        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        spec = LogisticRegressionSpec(regularization=1e-3)
        theta, Thetas, Thetas_b = sampled_parameters(cls_data.n_features)
        expected = streaming_prediction_differences(
            spec, theta, Thetas, cls_data, StreamingConfig(block_rows=128)
        )
        actual = streaming_prediction_differences(spec, theta, Thetas, sharded, config)
        assert np.array_equal(actual, expected)
        expected_pair = streaming_pairwise_prediction_differences(
            spec, Thetas, Thetas_b, cls_data, StreamingConfig(block_rows=128)
        )
        actual_pair = streaming_pairwise_prediction_differences(
            spec, Thetas, Thetas_b, sharded, config
        )
        assert np.array_equal(actual_pair, expected_pair)

    @pytest.mark.parametrize("config", BACKENDS, ids=["serial", "threads", "processes"])
    def test_regression_within_1e12(self, reg_data, tmp_path, config):
        sharded = write_store(reg_data, tmp_path, shard_rows=300)
        spec = LinearRegressionSpec(regularization=1e-3)
        theta, Thetas, Thetas_b = sampled_parameters(reg_data.n_features)
        expected = streaming_prediction_differences(
            spec, theta, Thetas, reg_data, StreamingConfig(block_rows=128)
        )
        actual = streaming_prediction_differences(spec, theta, Thetas, sharded, config)
        np.testing.assert_allclose(actual, expected, atol=1e-12)
        expected_pair = streaming_pairwise_prediction_differences(
            spec, Thetas, Thetas_b, reg_data, StreamingConfig(block_rows=128)
        )
        actual_pair = streaming_pairwise_prediction_differences(
            spec, Thetas, Thetas_b, sharded, config
        )
        np.testing.assert_allclose(actual_pair, expected_pair, atol=1e-12)

    def test_process_backend_equals_thread_backend(self, cls_data, tmp_path):
        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        spec = LogisticRegressionSpec(regularization=1e-3)
        theta, Thetas, _ = sampled_parameters(cls_data.n_features)
        threaded = streaming_prediction_differences(
            spec, theta, Thetas, sharded,
            StreamingConfig(block_rows=128, n_workers=3, backend="threads"),
        )
        processed = streaming_prediction_differences(
            spec, theta, Thetas, sharded,
            StreamingConfig(block_rows=128, n_workers=3, backend="processes"),
        )
        assert np.array_equal(threaded, processed)

    def test_generic_fallback_materializes_sharded_source(self, cls_data, tmp_path):
        class NoStreamingSpec(LogisticRegressionSpec):
            """A custom spec without streaming decompositions."""

            diff_accumulator = ModelClassSpec.diff_accumulator
            pairwise_diff_accumulator = ModelClassSpec.pairwise_diff_accumulator

        sharded = write_store(cls_data, tmp_path, shard_rows=300)
        spec = NoStreamingSpec(regularization=1e-3)
        theta, Thetas, _ = sampled_parameters(cls_data.n_features)
        expected = spec.prediction_differences(theta, Thetas, cls_data)
        actual = streaming_prediction_differences(
            spec, theta, Thetas, sharded, StreamingConfig(block_rows=128)
        )
        assert np.array_equal(actual, expected)


# ----------------------------------------------------------------------
# Serving layers over sharded data
# ----------------------------------------------------------------------
def split_rows(data: Dataset, n_train: int) -> tuple[Dataset, Dataset]:
    train = data.take(np.arange(n_train))
    holdout = data.take(np.arange(n_train, data.n_rows))
    return train, holdout


class TestServingFromShards:
    @pytest.mark.parametrize(
        "backend",
        [
            StreamingConfig(block_rows=100),
            StreamingConfig(block_rows=100, n_workers=2, backend="processes"),
        ],
        ids=["serial", "processes"],
    )
    def test_session_bitwise_identical_to_in_memory(self, cls_data, tmp_path, backend):
        train, holdout = split_rows(cls_data, 1_500)
        spec = LogisticRegressionSpec(regularization=1e-3)
        kwargs = dict(initial_sample_size=200, n_parameter_samples=16, rng=0)
        mem = EstimationSession(
            spec, train, holdout, streaming=StreamingConfig(block_rows=100), **kwargs
        )
        ooc = EstimationSession(
            spec,
            ShardStore.write(train, tmp_path / "train", shard_rows=400).dataset(),
            ShardStore.write(holdout, tmp_path / "holdout", shard_rows=200).dataset(),
            streaming=backend,
            **kwargs,
        )
        assert np.array_equal(mem.initial_model.theta, ooc.initial_model.theta)
        for epsilon in (0.02, 0.05):
            contract = ApproximationContract(epsilon=epsilon, delta=0.05)
            a, b = mem.answer(contract), ooc.answer(contract)
            assert a.satisfied == b.satisfied
            assert a.estimate.epsilon == b.estimate.epsilon
            ra, rb = mem.train_to(contract), ooc.train_to(contract)
            assert ra.sample_size == rb.sample_size
            assert np.array_equal(ra.model.theta, rb.model.theta)

    def test_registry_fingerprints_sharded_members_without_materializing(
        self, cls_data, tmp_path
    ):
        train, holdout = split_rows(cls_data, 1_500)
        spec = LogisticRegressionSpec(regularization=1e-3)
        kwargs = dict(initial_sample_size=150, n_parameter_samples=8, rng=0)
        sharded_train = ShardStore.write(train, tmp_path / "t", shard_rows=400).dataset()
        sharded_holdout = ShardStore.write(holdout, tmp_path / "h", shard_rows=200).dataset()
        registry = SessionRegistry(max_sessions=4, max_total_bytes=1 << 20)
        first = registry.get_or_create("pair", spec, sharded_train, sharded_holdout, **kwargs)
        again = registry.get_or_create("pair", spec, sharded_train, sharded_holdout, **kwargs)
        assert first is again
        # The fingerprint equals the in-memory fingerprint for the same data,
        # so tiers can be mixed without aliasing distinct datasets.
        assert registry.fingerprint(sharded_train, sharded_holdout) == (
            registry.fingerprint(train, holdout)
        )
        assert registry.get_or_create("pair", spec, train, holdout, **kwargs) is first
        # A store with different content misses (stale session discarded).
        changed = Dataset(np.asarray(train.X) + 1.0, train.y)
        changed_store = ShardStore.write(
            changed, tmp_path / "t2", shard_rows=400
        ).dataset()
        fresh = registry.get_or_create(
            "pair", spec, changed_store, sharded_holdout, **kwargs
        )
        assert fresh is not first
        assert registry.stats().fingerprint_invalidations == 1


# ----------------------------------------------------------------------
# Accumulator transport (process backend return values)
# ----------------------------------------------------------------------
class TestAccumulatorTransport:
    def test_pickled_partial_merges_but_cannot_update_or_finalize(self, cls_data):
        spec = LogisticRegressionSpec(regularization=1e-3)
        theta, Thetas, _ = sampled_parameters(cls_data.n_features)
        full = spec.diff_accumulator(theta, Thetas, cls_data)
        donor = spec.diff_accumulator(theta, Thetas, cls_data)
        blocks = list(iter_holdout_blocks(cls_data, 500))
        for block in blocks[:2]:
            full.update(block)
        for block in blocks[2:]:
            donor.update(block)
        restored = pickle.loads(pickle.dumps(donor))
        with pytest.raises(ModelSpecError, match="deserialized partial"):
            restored.update(blocks[0])
        with pytest.raises(ModelSpecError, match="deserialized partial"):
            restored.finalize()
        full.merge(restored)
        expected = spec.prediction_differences(theta, Thetas, cls_data)
        assert np.array_equal(full.finalize(), expected)

    def test_specs_pickle_without_their_thread_local_memo(self):
        spec = LogisticRegressionSpec(regularization=1e-3)
        spec._reference_predictions(np.zeros(3), np.ones((4, 3)))  # warm the memo
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.regularization == spec.regularization
        assert clone._reference_cache.entry is None
