"""Tests for model and result serialisation."""

import numpy as np
import pytest

from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.exceptions import BlinkMLError
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.poisson_regression import PoissonRegressionSpec
from repro.models.ppca import PPCASpec
from repro.serialization import load_model, load_result_metadata, save_model, save_result
from repro.data.dataset import Dataset


@pytest.fixture(scope="module")
def fitted_logistic():
    data = higgs_like(n_rows=5_000, n_features=8, seed=400)
    spec = LogisticRegressionSpec(regularization=1e-2)
    return spec.fit(data), data


class TestSaveLoadModel:
    def test_roundtrip_predictions_identical(self, fitted_logistic, tmp_path):
        model, data = fitted_logistic
        path = save_model(tmp_path / "model.npz", model)
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.theta, model.theta)
        np.testing.assert_array_equal(loaded.predict(data.X), model.predict(data.X))
        assert loaded.n_train == model.n_train
        assert loaded.spec.regularization == model.spec.regularization

    def test_suffix_added_automatically(self, fitted_logistic, tmp_path):
        model, _ = fitted_logistic
        path = save_model(tmp_path / "model", model)
        assert str(path).endswith(".npz")
        assert load_model(tmp_path / "model") is not None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(BlinkMLError):
            load_model(tmp_path / "does_not_exist.npz")

    @pytest.mark.parametrize(
        "spec, labelled",
        [
            (LinearRegressionSpec(regularization=0.01, noise_variance=0.5), True),
            (PoissonRegressionSpec(regularization=0.02), True),
            (MaxEntropySpec(n_classes=3, regularization=0.05), True),
            (PPCASpec(n_factors=2, sigma2=0.8), False),
        ],
    )
    def test_every_model_class_roundtrips(self, spec, labelled, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 6))
        if labelled:
            if spec.task == "multiclass":
                y = rng.integers(0, 3, size=300)
            elif spec.name == "poisson":
                y = rng.poisson(2.0, size=300).astype(float)
            else:
                y = rng.normal(size=300)
            data = Dataset(X, y)
        else:
            data = Dataset(X)
        model = spec.fit(data, max_iterations=50)
        path = save_model(tmp_path / f"{spec.name}.npz", model)
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.theta, model.theta)
        assert loaded.spec.name == spec.name


class TestSaveLoadResult:
    def test_result_roundtrip(self, tmp_path):
        data = higgs_like(n_rows=10_000, n_features=8, seed=401)
        splits = train_holdout_test_split(
            data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0)
        )
        trainer = BlinkML(
            LogisticRegressionSpec(regularization=1e-3),
            initial_sample_size=1_000,
            n_parameter_samples=32,
            seed=0,
        )
        result = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.1))
        path = save_result(tmp_path / "result.npz", result)

        model, contract, provenance = load_result_metadata(path)
        np.testing.assert_array_equal(model.theta, result.model.theta)
        assert contract.epsilon == pytest.approx(0.1)
        assert provenance["sample_size"] == result.sample_size
        assert provenance["full_size"] == result.full_size

    def test_plain_model_file_has_no_contract(self, fitted_logistic, tmp_path):
        model, _ = fitted_logistic
        path = save_model(tmp_path / "plain.npz", model)
        with pytest.raises(BlinkMLError):
            load_result_metadata(path)
