"""Tests for the request-coalescing serving tier (repro.serving).

Batcher mechanics (windows, dedup, backpressure, lifecycle) run against a
stub session so they are fast and fully deterministic; the coalescing
*guarantee* — a batch of concurrent mixed contracts completes in strictly
fewer streamed passes than serial execution with bitwise-identical
per-caller results, and exact ``passes_saved`` accounting — is exercised
against real :class:`EstimationSession`\\ s on a small synthetic workload.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core.caching import CacheStats
from repro.core.contract import ApproximationContract
from repro.core.registry import SessionRegistry
from repro.core.session import CoalescedTrainOutcome, EstimationSession
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation.streaming import streaming_pass_count
from repro.exceptions import BlinkMLError, ServingError, ServingOverloadError
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.serving import BatcherStats, CoalescingService, ContractBatcher

SPEC = LogisticRegressionSpec(regularization=1e-3)

#: B = 8 mixed contracts: five distinct (ε, δ) pairs plus three duplicates.
CONTRACTS = [
    ApproximationContract(epsilon=0.010, delta=0.05),
    ApproximationContract(epsilon=0.012, delta=0.05),
    ApproximationContract(epsilon=0.010, delta=0.05),
    ApproximationContract(epsilon=0.015, delta=0.05),
    ApproximationContract(epsilon=0.012, delta=0.05),
    ApproximationContract(epsilon=0.020, delta=0.05),
    ApproximationContract(epsilon=0.010, delta=0.05),
    ApproximationContract(epsilon=0.018, delta=0.05),
]
N_DISTINCT = len({(c.epsilon, c.delta) for c in CONTRACTS})


@pytest.fixture(scope="module")
def splits():
    return train_holdout_test_split(
        higgs_like(n_rows=2_500, n_features=10, seed=13),
        SplitSpec(holdout_fraction=0.2, test_fraction=0.1),
        rng=np.random.default_rng(13),
    )


def make_session(splits, seed: int = 0) -> EstimationSession:
    return EstimationSession(
        SPEC,
        splits.train,
        splits.holdout,
        initial_sample_size=250,
        n_parameter_samples=24,
        rng=seed,
    )


@pytest.fixture(scope="module")
def serial_baseline(splits):
    """Serial reference run: per-result outputs plus measured streamed passes."""
    session = make_session(splits)
    before = streaming_pass_count()
    results = [session.train_to(contract) for contract in CONTRACTS]
    return results, streaming_pass_count() - before


def assert_bitwise_identical(serial_result, coalesced_result):
    assert coalesced_result.sample_size == serial_result.sample_size
    assert np.array_equal(coalesced_result.model.theta, serial_result.model.theta)
    assert coalesced_result.estimated_epsilon == serial_result.estimated_epsilon
    assert (
        coalesced_result.metadata["size_search_probes"]
        == serial_result.metadata["size_search_probes"]
    )


# ----------------------------------------------------------------------
# The coalescing guarantee (real sessions)
# ----------------------------------------------------------------------
class TestCoalescedIdentity:
    def test_train_to_many_identical_with_fewer_passes(self, splits, serial_baseline):
        serial_results, serial_passes = serial_baseline
        session = make_session(splits)
        before = streaming_pass_count()
        outcome = session.train_to_many(CONTRACTS)
        fused_passes = streaming_pass_count() - before
        assert isinstance(outcome, CoalescedTrainOutcome)
        assert len(outcome.results) == len(CONTRACTS)
        # Strictly fewer streamed passes than the serial run...
        assert fused_passes < serial_passes
        # ...and passes_saved is *exact*: the answer-phase passes are equal
        # on both sides (same caches), so the measured delta is entirely
        # the fused search's saving.
        assert serial_passes - fused_passes == outcome.passes_saved
        assert outcome.passes_saved > 0
        for serial_result, fused_result in zip(serial_results, outcome.results):
            assert_bitwise_identical(serial_result, fused_result)

    def test_answer_many_matches_serial_answers(self, splits):
        session = make_session(splits)
        fused = session.answer_many(CONTRACTS)
        reference = make_session(splits)
        for contract, answer in zip(CONTRACTS, fused):
            lone = reference.answer(contract)
            assert answer.satisfied == lone.satisfied
            assert answer.estimate.epsilon == lone.estimate.epsilon

    def test_threads_through_one_batcher_identical_to_serial(
        self, splits, serial_baseline
    ):
        serial_results, serial_passes = serial_baseline
        session = make_session(splits)
        # max_batch = B and a generous window guarantee a single dispatch:
        # the window closes early the moment the batch fills.
        batcher = ContractBatcher(
            session, window_ms=5_000, max_batch=len(CONTRACTS), name="identity"
        )
        barrier = threading.Barrier(len(CONTRACTS))
        results: list = [None] * len(CONTRACTS)
        errors: list = []

        def worker(index: int, contract: ApproximationContract) -> None:
            barrier.wait()
            try:
                results[index] = batcher.train_to(contract)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        before = streaming_pass_count()
        threads = [
            threading.Thread(target=worker, args=(i, c))
            for i, c in enumerate(CONTRACTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        measured = streaming_pass_count() - before
        batcher.close()
        assert not errors
        for serial_result, batched_result in zip(serial_results, results):
            assert_bitwise_identical(serial_result, batched_result)
        stats = batcher.stats()
        assert stats.batches == 1
        assert stats.requests == len(CONTRACTS)
        assert stats.window_occupancy == 1.0
        assert stats.coalesced_requests == len(CONTRACTS) - N_DISTINCT
        # Exact accounting again, measured end to end through the batcher.
        assert serial_passes - measured == stats.passes_saved
        assert measured < serial_passes
        assert stats.passes_saved > 0


# ----------------------------------------------------------------------
# Batcher mechanics (stub session)
# ----------------------------------------------------------------------
class StubSession:
    """Deterministic session facade for exercising batcher plumbing."""

    def __init__(self, gate: threading.Event | None = None):
        self.gate = gate
        self.executing = threading.Event()
        self.calls: list[tuple] = []

    def _wait(self):
        self.executing.set()
        if self.gate is not None:
            self.gate.wait()

    def answer_many(self, contracts):
        self._wait()
        self.calls.append(("answer_many", tuple(contracts)))
        return [("answer", contract) for contract in contracts]

    def train_to_many(self, contracts, *, recompute_at_theta_n=False):
        self._wait()
        self.calls.append(("train_to_many", tuple(contracts), recompute_at_theta_n))
        return CoalescedTrainOutcome(
            results=tuple(
                ("train", contract, recompute_at_theta_n) for contract in contracts
            ),
            fused_search_passes=1,
            serial_search_passes=len(contracts),
        )

    def answer(self, contract):
        return ("answer", contract)

    def train_to(self, contract, *, recompute_at_theta_n=False):
        return ("train", contract, recompute_at_theta_n)


C1 = ApproximationContract(epsilon=0.05, delta=0.05)
C2 = ApproximationContract(epsilon=0.07, delta=0.05)


class TestContractBatcherMechanics:
    def test_parameter_validation(self):
        with pytest.raises(BlinkMLError):
            ContractBatcher(StubSession(), window_ms=-1)
        with pytest.raises(BlinkMLError):
            ContractBatcher(StubSession(), max_batch=0)
        with pytest.raises(BlinkMLError):
            ContractBatcher(StubSession(), max_queue=0)

    def test_mixed_batch_routes_and_demultiplexes(self):
        session = StubSession()
        with ContractBatcher(session, window_ms=100, max_batch=4) as batcher:
            outputs = [None] * 4
            specs = [("answer", C1), ("train", C1), ("answer", C2), ("train", C2)]

            def worker(index):
                kind, contract = specs[index]
                if kind == "answer":
                    outputs[index] = batcher.answer(contract)
                else:
                    outputs[index] = batcher.train_to(contract)

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert outputs[0] == ("answer", C1)
            assert outputs[1] == ("train", C1, False)
            assert outputs[2] == ("answer", C2)
            assert outputs[3] == ("train", C2, False)
            stats = batcher.stats()
            assert stats.batches == 1
            assert (stats.answer_requests, stats.train_requests) == (2, 2)
            assert (stats.fused_passes, stats.serial_passes) == (1, 2)

    def test_recompute_flag_fuses_per_flag_value(self):
        session = StubSession()
        with ContractBatcher(session, window_ms=100, max_batch=2) as batcher:
            outputs = [None, None]

            def worker(index, recompute):
                outputs[index] = batcher.train_to(
                    C1, recompute_at_theta_n=recompute
                )

            threads = [
                threading.Thread(target=worker, args=(0, False)),
                threading.Thread(target=worker, args=(1, True)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert outputs[0] == ("train", C1, False)
            assert outputs[1] == ("train", C1, True)
            fused_calls = [c for c in session.calls if c[0] == "train_to_many"]
            assert sorted(call[2] for call in fused_calls) == [False, True]

    def test_load_shed_at_max_queue(self):
        gate = threading.Event()
        session = StubSession(gate=gate)
        batcher = ContractBatcher(session, window_ms=0, max_batch=1, max_queue=2)
        try:
            first = threading.Thread(target=lambda: batcher.answer(C1))
            first.start()
            assert session.executing.wait(5)  # request 1 popped, executing
            waiters = [
                threading.Thread(target=lambda: batcher.answer(C1))
                for _ in range(2)
            ]
            for thread in waiters:
                thread.start()
            deadline = time.monotonic() + 5
            while len(batcher._queue) < 2:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            with pytest.raises(ServingOverloadError):
                batcher.answer(C2)
            assert batcher.stats().load_shed == 1
        finally:
            gate.set()
            batcher.close()
        assert batcher.stats().requests == 3  # the shed request never ran

    def test_admission_policy_sheds(self):
        batcher = ContractBatcher(StubSession(), admission=lambda depth: False)
        with pytest.raises(ServingOverloadError):
            batcher.answer(C1)
        assert batcher.stats().load_shed == 1
        batcher.close()

    def test_timeout_raises_serving_error(self):
        gate = threading.Event()
        batcher = ContractBatcher(StubSession(gate=gate), window_ms=0)
        try:
            with pytest.raises(ServingError, match="timed out"):
                batcher.answer(C1, timeout=0.05)
        finally:
            gate.set()
            batcher.close()

    def test_close_rejects_new_serves_queued(self):
        session = StubSession()
        batcher = ContractBatcher(session, window_ms=100, max_batch=8)
        result_box = []
        thread = threading.Thread(
            target=lambda: result_box.append(batcher.answer(C1))
        )
        thread.start()
        time.sleep(0.02)  # let the submission enter the window
        batcher.close()  # cuts the window short, drains, joins
        thread.join()
        assert result_box == [("answer", C1)]
        assert batcher.closed
        with pytest.raises(ServingError, match="closed"):
            batcher.answer(C2)
        batcher.close()  # idempotent

    def test_flush_waits_for_inflight(self):
        gate = threading.Event()
        session = StubSession(gate=gate)
        batcher = ContractBatcher(session, window_ms=0)
        thread = threading.Thread(target=lambda: batcher.answer(C1))
        thread.start()
        assert session.executing.wait(5)
        flushed = threading.Event()

        def flusher():
            batcher.flush()
            flushed.set()

        threading.Thread(target=flusher).start()
        assert not flushed.wait(0.1)  # still blocked on the in-flight batch
        gate.set()
        assert flushed.wait(5)
        thread.join()
        batcher.close()

    def test_serial_fallback_isolates_poisoned_request(self):
        class PoisonedSession(StubSession):
            def train_to_many(self, contracts, *, recompute_at_theta_n=False):
                raise RuntimeError("fused dispatch exploded")

            def train_to(self, contract, *, recompute_at_theta_n=False):
                if contract == C2:
                    raise KeyError("bad contract")
                return ("train", contract, recompute_at_theta_n)

        batcher = ContractBatcher(PoisonedSession(), window_ms=100, max_batch=2)
        outcomes: dict[str, object] = {}

        def good():
            outcomes["good"] = batcher.train_to(C1)

        def bad():
            try:
                batcher.train_to(C2)
            except KeyError as exc:
                outcomes["bad"] = exc

        threads = [threading.Thread(target=good), threading.Thread(target=bad)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batcher.close()
        # The poisoned member fails alone; its window-mate still succeeds.
        assert outcomes["good"] == ("train", C1, False)
        assert isinstance(outcomes["bad"], KeyError)

    def test_stats_merge(self):
        a = BatcherStats(
            batches=2, requests=6, coalesced_requests=1, fused_passes=3,
            serial_passes=9, window_slots=8, max_queue_depth=4,
            queue_wait_seconds=0.5, max_queue_wait_seconds=0.3,
        )
        b = BatcherStats(
            batches=1, requests=2, load_shed=1, window_slots=4,
            max_queue_depth=2, queue_wait_seconds=0.1,
            max_queue_wait_seconds=0.4,
        )
        merged = a.merge(b)
        assert merged.batches == 3
        assert merged.requests == 8
        assert merged.passes_saved == 6
        assert merged.load_shed == 1
        assert merged.max_queue_depth == 4
        assert merged.max_queue_wait_seconds == 0.4
        assert merged.window_occupancy == pytest.approx(8 / 12)
        assert merged.mean_queue_wait_seconds == pytest.approx(0.6 / 8)
        assert BatcherStats().window_occupancy == 0.0
        assert BatcherStats().mean_queue_wait_seconds == 0.0


# ----------------------------------------------------------------------
# Registry integration: serving stats roll-up + rebalance hysteresis
# ----------------------------------------------------------------------
class FakeSession:
    """Just enough session surface for registry-level tests."""

    def __init__(self, spec, train, holdout, **kwargs):
        self.budget_history: list[int] = []
        self._last_used_at = time.monotonic()

    def resize_cache_budget(self, total_bytes: int) -> None:
        self.budget_history.append(int(total_bytes))

    def cache_stats(self) -> dict[str, CacheStats]:
        return {}

    @property
    def last_used_at(self) -> float:
        return self._last_used_at

    @property
    def idle_seconds(self) -> float:
        return time.monotonic() - self._last_used_at

    def _touch(self) -> None:
        self._last_used_at = time.monotonic()


class FakeData:
    n_rows = 10

    def content_digest(self) -> str:
        return "digest"


class TestRegistryServingIntegration:
    def test_attach_serving_stats_rolls_into_stats(self):
        registry = SessionRegistry(session_factory=FakeSession, min_session_bytes=1)
        assert registry.stats().serving is None
        sentinel = BatcherStats(batches=3)
        registry.attach_serving_stats(lambda: sentinel)
        assert registry.stats().serving is sentinel
        registry.attach_serving_stats(None)
        assert registry.stats().serving is None
        with pytest.raises(BlinkMLError, match="callable"):
            registry.attach_serving_stats("not callable")

    def test_rebalance_hysteresis_skips_noise(self):
        registry = SessionRegistry(
            session_factory=FakeSession,
            min_session_bytes=1,
            max_total_bytes=1_000,
        )
        data = FakeData()
        a = registry.get_or_create("a", SPEC, data, data)
        b = registry.get_or_create("b", SPEC, data, data)
        applied_before = (len(a.budget_history), len(b.budget_history))
        # Zero traffic since the last rebalance: every proposed share is
        # unchanged, so any positive drift threshold skips the apply.
        assert registry.rebalance(min_drift=0.10) is False
        assert (len(a.budget_history), len(b.budget_history)) == applied_before
        # min_drift=0 (the membership-change path) always applies.
        assert registry.rebalance() is True
        assert len(a.budget_history) == applied_before[0] + 1


# ----------------------------------------------------------------------
# CoalescingService (asyncio front-end, admission, housekeeping)
# ----------------------------------------------------------------------
class FakeRegistry:
    """Scriptable registry facade for service-level unit tests."""

    def __init__(self, max_total_bytes=None, bytes_used=0):
        self.max_total_bytes = max_total_bytes
        self.bytes_used = bytes_used
        self.sessions: dict[object, object] = {}
        self.rebalance_calls: list[float] = []
        self.evict_calls: list[float] = []
        self.provider = None

    def attach_serving_stats(self, provider):
        self.provider = provider

    def get_or_create(self, key, spec, train, holdout, **kwargs):
        return self.sessions.setdefault(key, StubSession())

    def get(self, key):
        return self.sessions.get(key)

    def rebalance(self, min_drift=0.0):
        self.rebalance_calls.append(min_drift)
        return False

    def evict_idle(self, idle_seconds):
        self.evict_calls.append(idle_seconds)
        return 0

    def stats(self):
        serving = self.provider() if self.provider is not None else None

        class _Stats:
            bytes = self.bytes_used

        snapshot = _Stats()
        snapshot.serving = serving
        return snapshot


class TestCoalescingService:
    def test_async_round_trip_coalesces(self, splits, serial_baseline):
        serial_results, _ = serial_baseline
        registry = SessionRegistry()
        with CoalescingService(
            registry,
            window_ms=50,
            max_batch=len(CONTRACTS),
            start_housekeeping=False,
        ) as service:

            async def drive():
                return await asyncio.gather(
                    *[
                        service.train_to(
                            "pair",
                            contract,
                            spec=SPEC,
                            train=splits.train,
                            holdout=splits.holdout,
                            initial_sample_size=250,
                            n_parameter_samples=24,
                            rng=0,
                        )
                        for contract in CONTRACTS
                    ]
                )

            results = asyncio.run(drive())
            for serial_result, served in zip(serial_results, results):
                assert_bitwise_identical(serial_result, served)
            stats = service.batching_stats()
            assert stats.requests == len(CONTRACTS)
            assert stats.coalesced_requests > 0 or stats.batches > 1
            # The registry snapshot carries the same counters.
            assert registry.stats().serving.requests == len(CONTRACTS)

    def test_requires_spec_or_live_session(self):
        service = CoalescingService(FakeRegistry(), start_housekeeping=False)
        with pytest.raises(ServingError, match="no live session"):
            service.answer_sync("absent", C1)
        service.close()

    def test_admission_tightens_when_budget_hot(self):
        # Pool 100 bytes, 95 used, hot fraction 0.9 → hot.
        registry = FakeRegistry(max_total_bytes=100, bytes_used=95)
        service = CoalescingService(
            registry,
            window_ms=0,
            max_batch=1,
            max_queue=100,
            start_housekeeping=False,
        )
        assert service._budget_hot() is True
        gate = threading.Event()
        stub = StubSession(gate=gate)
        registry.sessions["k"] = stub
        batcher = service.batcher("k", spec=SPEC, train=None, holdout=None)
        try:
            first = threading.Thread(target=lambda: batcher.answer(C1))
            first.start()
            assert stub.executing.wait(5)
            second = threading.Thread(target=lambda: batcher.answer(C1))
            second.start()  # depth 0 < max_batch: admitted, waits
            deadline = time.monotonic() + 5
            while len(batcher._queue) < 1:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            # Hot + one window's worth already queued → shed, far below
            # the 100-deep queue bound.
            with pytest.raises(ServingOverloadError):
                batcher.answer(C2)
        finally:
            gate.set()
            service.close()

    def test_budget_hot_disabled_without_pool(self):
        service = CoalescingService(
            FakeRegistry(max_total_bytes=None, bytes_used=10**9),
            start_housekeeping=False,
        )
        assert service._budget_hot() is False
        service.close()

    def test_housekeeping_rebalances_evicts_and_drops_stale(self):
        registry = FakeRegistry()
        registry.sessions["k"] = StubSession()
        service = CoalescingService(
            registry,
            start_housekeeping=False,
            idle_evict_seconds=60.0,
            rebalance_drift=0.25,
        )
        batcher = service.batcher("k", spec=SPEC, train=None, holdout=None)
        batcher.answer(C1)
        report = service.housekeep_once()
        assert registry.rebalance_calls == [0.25]
        assert registry.evict_calls == [60.0]
        assert report["batchers_dropped"] == 0
        assert service.batcher("k") is batcher
        # Replace the session under the key: housekeeping must drop the
        # stale batcher but keep its counters in the aggregate.
        registry.sessions["k"] = StubSession()
        report = service.housekeep_once()
        assert report["batchers_dropped"] == 1
        fresh = service.batcher("k")
        assert fresh is not batcher
        assert service.batching_stats().requests == 1  # retired history kept
        service.close()

    def test_background_housekeeping_thread_runs(self):
        registry = FakeRegistry()
        service = CoalescingService(registry, housekeeping_seconds=0.02)
        deadline = time.monotonic() + 5
        while not registry.rebalance_calls:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        service.close()

    def test_close_is_idempotent_and_final(self):
        service = CoalescingService(FakeRegistry(), start_housekeeping=False)
        service.close()
        service.close()
        with pytest.raises(ServingError, match="closed"):
            service.batcher("k", spec=SPEC, train=None, holdout=None)
