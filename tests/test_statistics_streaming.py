"""Tests for the streaming statistics tier (repro.core.statistics).

Contract groups, mirroring the tier's load-bearing claims:

* **streaming parity** — ``compute_statistics`` over a sharded,
  block-streamed source matches the materialised in-memory path to 1e-12
  relative error for all five model families, under the thread and process
  backends alike (the TSQR moment summary reproduces the gradient matrix's
  singular structure, not its bytes, so the bound is numerical, not
  bitwise);
* **summary algebra** — the moment summaries merge associatively and
  round-trip through their array form losslessly (the property the sidecar
  persistence and the shard-order fold both rely on);
* **session refresh** — after an append, :meth:`EstimationSession.refresh`
  folds the new shards in and produces statistics *bitwise identical* to a
  cold ``compute_statistics`` over the grown store at the same θ, clears
  the dependent caches, and re-answers standing contracts;
* **registry refresh** — :meth:`SessionRegistry.refresh` updates the
  member fingerprint in place so the next ``get_or_create`` with the grown
  data is a hit, not a teardown;
* **θ_n recompute** — ``train_to(..., recompute_at_theta_n=True)`` reports
  both bounds and their difference in the result metadata.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.contract import ApproximationContract
from repro.core.registry import SessionRegistry
from repro.core.session import EstimationSession, SessionRefresh
from repro.core.statistics import (
    GradientMomentAccumulator,
    StatisticsMethod,
    compute_statistics,
    spec_digest,
    theta_digest,
)
from repro.data.dataset import Dataset
from repro.data.store import ShardStore
from repro.data.synthetic import bikeshare_like, higgs_like, mnist_like
from repro.evaluation.streaming import StreamingConfig
from repro.exceptions import BlinkMLError
from repro.linalg.moments import GradientMomentSummary
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.poisson_regression import PoissonRegressionSpec
from repro.models.ppca import PPCASpec

PARITY_RTOL = 1e-12


def _linear_family():
    rng = np.random.default_rng(21)
    X = rng.normal(size=(900, 5))
    y = X @ rng.normal(size=5) + rng.normal(scale=0.4, size=900)
    return LinearRegressionSpec(regularization=1e-2), Dataset(X, y)


def _logistic_family():
    return LogisticRegressionSpec(regularization=1e-2), higgs_like(
        n_rows=900, n_features=6, seed=22
    )


def _max_entropy_family():
    return MaxEntropySpec(regularization=1e-2), mnist_like(
        n_rows=900, n_features=5, n_classes=3, seed=23
    )


def _poisson_family():
    return PoissonRegressionSpec(regularization=1e-2), bikeshare_like(
        n_rows=900, n_features=5, seed=24
    )


def _ppca_family():
    # Well-conditioned with a separated spectrum: β = 0 means singular-value
    # error enters the covariance through 1/s², so the test data must not
    # have near-degenerate directions.
    rng = np.random.default_rng(25)
    X = rng.normal(size=(900, 5)) * np.array([3.0, 2.2, 1.6, 1.1, 0.7])
    return PPCASpec(n_factors=2, sigma2=1.0), Dataset(X - X.mean(axis=0))


FAMILIES = {
    "linear": _linear_family,
    "logistic": _logistic_family,
    "max_entropy": _max_entropy_family,
    "poisson": _poisson_family,
    "ppca": _ppca_family,
}


def _fitted(family: str):
    spec, data = FAMILIES[family]()
    model = spec.fit(data)
    return spec, model.theta, data


# ----------------------------------------------------------------------
# Streaming parity
# ----------------------------------------------------------------------
class TestStreamingParity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_sharded_matches_materialised(self, family, backend, tmp_path):
        spec, theta, data = _fitted(family)
        reference = compute_statistics(spec, theta, data)
        sharded = ShardStore.write(data, tmp_path, shard_rows=257).dataset()
        config = StreamingConfig(block_rows=191, n_workers=2, backend=backend)
        streamed = compute_statistics(
            spec, theta, sharded, streaming=config, persist=False
        )
        dense_ref = reference.covariance.dense()
        dense_str = streamed.covariance.dense()
        scale = np.linalg.norm(dense_ref)
        assert np.linalg.norm(dense_str - dense_ref) <= PARITY_RTOL * scale
        assert streamed.sample_size == reference.sample_size == data.n_rows

    @pytest.mark.parametrize(
        "method", ["closed_form", "inverse_gradients", "observed_fisher"]
    )
    def test_all_methods_stream(self, method, tmp_path):
        spec, theta, data = _fitted("logistic")
        reference = compute_statistics(spec, theta, data, method=method)
        sharded = ShardStore.write(data, tmp_path, shard_rows=200).dataset()
        streamed = compute_statistics(
            spec,
            theta,
            sharded,
            method=method,
            streaming=StreamingConfig(block_rows=123, n_workers=2),
            persist=False,
        )
        dense_ref = reference.covariance.dense()
        dense_str = streamed.covariance.dense()
        assert np.linalg.norm(dense_str - dense_ref) <= 1e-9 * np.linalg.norm(
            dense_ref
        )

    def test_plain_dataset_streams_through_same_path(self):
        # An in-memory Dataset is a BlockSource too: the block-folded result
        # must match the old whole-matrix computation.
        spec, theta, data = _fitted("linear")
        whole = compute_statistics(spec, theta, data)
        blocked = compute_statistics(
            spec, theta, data, streaming=StreamingConfig(block_rows=97, n_workers=0)
        )
        dense_a = whole.covariance.dense()
        dense_b = blocked.covariance.dense()
        assert np.linalg.norm(dense_b - dense_a) <= PARITY_RTOL * np.linalg.norm(
            dense_a
        )


# ----------------------------------------------------------------------
# Summary algebra
# ----------------------------------------------------------------------
class TestMomentSummaries:
    def test_merge_matches_whole_matrix(self):
        rng = np.random.default_rng(31)
        Q = rng.normal(size=(300, 4))
        whole = GradientMomentSummary.from_gradients(Q)
        parts = [
            GradientMomentSummary.from_gradients(Q[s : s + 100])
            for s in range(0, 300, 100)
        ]
        merged = parts[0].merge(parts[1]).merge(parts[2])
        assert merged.rows == whole.rows
        np.testing.assert_allclose(
            merged.second_moment(), whole.second_moment(), rtol=1e-12, atol=1e-12
        )
        np.testing.assert_allclose(merged.gradient_sum, whole.gradient_sum)

    def test_array_roundtrip_is_bitwise(self):
        rng = np.random.default_rng(32)
        summary = GradientMomentSummary.from_gradients(rng.normal(size=(50, 3)))
        back = GradientMomentSummary.from_arrays(summary.to_arrays())
        assert back.rows == summary.rows
        assert np.array_equal(back.r_factor, summary.r_factor)
        assert np.array_equal(back.gradient_sum, summary.gradient_sum)

    def test_accumulator_is_the_canonical_fold(self):
        spec, theta, data = _fitted("logistic")
        accumulator = GradientMomentAccumulator(spec, theta)
        for start in range(0, data.n_rows, 200):
            stop = min(start + 200, data.n_rows)
            accumulator.update(Dataset(data.X[start:stop], data.y[start:stop]))
        summary = accumulator.finalize()
        assert summary.rows == data.n_rows

    def test_digests_discriminate(self):
        spec_a = LogisticRegressionSpec(regularization=1e-2)
        spec_b = LogisticRegressionSpec(regularization=2e-2)
        assert spec_digest(spec_a) == spec_digest(spec_a)
        assert spec_digest(spec_a) != spec_digest(spec_b)
        theta = np.arange(4.0)
        assert theta_digest(theta) == theta_digest(theta.copy())
        assert theta_digest(theta) != theta_digest(theta + 1e-9)
        # probe_eps keys inverse-gradients sidecars but not the others.
        assert theta_digest(
            theta, method=StatisticsMethod.INVERSE_GRADIENTS, probe_eps=1e-5
        ) != theta_digest(
            theta, method=StatisticsMethod.INVERSE_GRADIENTS, probe_eps=1e-6
        )
        assert theta_digest(
            theta, method=StatisticsMethod.OBSERVED_FISHER, probe_eps=1e-5
        ) == theta_digest(theta, method=StatisticsMethod.OBSERVED_FISHER, probe_eps=1e-6)


# ----------------------------------------------------------------------
# Session refresh
# ----------------------------------------------------------------------
def _split_store(tmp_path, name, data, keep, shard_rows=200):
    directory = tmp_path / name
    ShardStore.write(data.head(keep), directory, shard_rows=shard_rows)
    return directory


class TestSessionRefresh:
    def _session(self, directory, holdout, **kwargs):
        spec = LogisticRegressionSpec(regularization=1e-2)
        return spec, EstimationSession(
            spec,
            ShardStore.open(directory).dataset(),
            holdout,
            statistics_scope="train",
            rng=0,
            initial_sample_size=300,
            **kwargs,
        )

    def test_refresh_is_bitwise_cold_rebuild(self, tmp_path):
        data = higgs_like(n_rows=2_400, n_features=6, seed=41)
        holdout = higgs_like(n_rows=400, n_features=6, seed=42)
        directory = _split_store(tmp_path, "train", data, keep=1_600)
        spec, session = self._session(directory, holdout)
        contract = ApproximationContract(epsilon=1e-4, delta=0.05)
        session.answer(contract)

        ShardStore.open(directory).append_shards(
            [(data.X[1_600:], data.y[1_600:])], shard_rows=200
        )
        refresh = session.refresh()
        assert isinstance(refresh, SessionRefresh)
        assert refresh.changed and refresh.train_changed
        assert refresh.train_rows_before == 1_600
        assert refresh.train_rows_after == 2_400
        assert refresh.statistics_recomputed
        # Sidecar economics: the old shards' summaries are reused, only the
        # appended shards are computed — the O(new shard) refresh claim.
        assert refresh.reused_shard_summaries == 8
        assert refresh.computed_shard_summaries == 4
        # The standing contract was re-answered against the grown data.
        assert len(refresh.reanswered) == 1
        assert refresh.reanswered[0].contract == contract

        # Bitwise invariant: merged refresh statistics == cold rebuild over
        # the grown store at the same θ (identical shard partitions, so the
        # per-shard folds and the left-merge replay identically).
        cold = compute_statistics(
            spec,
            session.initial_model.theta,
            ShardStore.open(directory).dataset(),
            persist=False,
        )
        assert np.array_equal(
            session.statistics.covariance.dense(), cold.covariance.dense()
        )
        assert session.full_size == 2_400

    def test_refresh_without_growth_is_a_noop(self, tmp_path):
        data = higgs_like(n_rows=1_200, n_features=5, seed=43)
        holdout = higgs_like(n_rows=300, n_features=5, seed=44)
        directory = _split_store(tmp_path, "train", data, keep=1_200)
        _, session = self._session(directory, holdout)
        before = session.statistics
        refresh = session.refresh()
        assert not refresh.changed
        assert refresh.reanswered == ()
        assert session.statistics is before

    def test_sample_scope_refresh_keeps_statistics(self, tmp_path):
        # Sample-scope statistics describe the frozen D0 draw; growth
        # invalidates the caches but not the statistics object.
        data = higgs_like(n_rows=1_800, n_features=5, seed=45)
        holdout = higgs_like(n_rows=300, n_features=5, seed=46)
        directory = _split_store(tmp_path, "train", data, keep=1_200)
        spec = LogisticRegressionSpec(regularization=1e-2)
        session = EstimationSession(
            spec,
            ShardStore.open(directory).dataset(),
            holdout,
            rng=0,
            initial_sample_size=300,
        )
        before = session.statistics
        ShardStore.open(directory).append_shards(
            [(data.X[1_200:], data.y[1_200:])], shard_rows=200
        )
        refresh = session.refresh()
        assert refresh.train_changed
        assert not refresh.statistics_recomputed
        assert session.statistics is before
        assert session.full_size == 1_800

    def test_invalid_scope_rejected(self, tmp_path):
        data = higgs_like(n_rows=400, n_features=4, seed=47)
        with pytest.raises(BlinkMLError):
            EstimationSession(
                LogisticRegressionSpec(regularization=1e-2),
                data,
                data,
                statistics_scope="everything",
            )


# ----------------------------------------------------------------------
# Registry refresh
# ----------------------------------------------------------------------
class TestRegistryRefresh:
    def test_refresh_updates_fingerprint_in_place(self, tmp_path):
        data = higgs_like(n_rows=1_800, n_features=5, seed=51)
        holdout = higgs_like(n_rows=300, n_features=5, seed=52)
        directory = _split_store(tmp_path, "train", data, keep=1_200)
        spec = LogisticRegressionSpec(regularization=1e-2)
        registry = SessionRegistry(max_total_bytes=64_000_000)
        session = registry.get_or_create(
            "pair",
            spec,
            ShardStore.open(directory).dataset(),
            holdout,
            statistics_scope="train",
            rng=0,
            initial_sample_size=300,
        )
        session.answer(ApproximationContract(epsilon=1e-4, delta=0.05))

        ShardStore.open(directory).append_shards(
            [(data.X[1_200:], data.y[1_200:])], shard_rows=200
        )
        outcome = registry.refresh("pair")
        assert outcome is not None and outcome.train_changed
        stats = registry.stats()
        assert stats.refreshes == 1
        assert stats.fingerprint_invalidations == 0
        # The grown data now fingerprint-matches: same live session served.
        again = registry.get_or_create(
            "pair", spec, ShardStore.open(directory).dataset(), holdout
        )
        assert again is session
        assert registry.stats().fingerprint_invalidations == 0

    def test_refresh_of_unknown_key_is_none(self):
        registry = SessionRegistry()
        assert registry.refresh("missing") is None


# ----------------------------------------------------------------------
# θ_n statistics recompute
# ----------------------------------------------------------------------
class TestRecomputeAtThetaN:
    def test_metadata_reports_both_bounds(self):
        rng = np.random.default_rng(61)
        X = rng.normal(size=(3_000, 4))
        y = X @ rng.normal(size=4) + rng.normal(scale=0.5, size=3_000)
        data = Dataset(X, y)
        holdout = Dataset(X[:400].copy(), y[:400].copy())
        spec = LinearRegressionSpec(regularization=1e-2)
        session = EstimationSession(
            spec, data, holdout, rng=0, initial_sample_size=200
        )
        contract = ApproximationContract(epsilon=0.05, delta=0.05)
        result = session.train_to(contract, recompute_at_theta_n=True)
        if result.used_initial_model or result.sample_size >= data.n_rows:
            pytest.skip("contract resolved without an intermediate model")
        assert result.metadata["recomputed_at_theta_n"] is True
        eps0 = result.metadata["epsilon_theta0_stats"]
        eps_n = result.metadata["epsilon_theta_n_stats"]
        assert result.metadata["bound_tightening"] == pytest.approx(eps0 - eps_n)
        assert result.estimated_epsilon == eps_n

    def test_flag_off_leaves_metadata_unchanged(self):
        rng = np.random.default_rng(62)
        X = rng.normal(size=(2_000, 4))
        y = X @ rng.normal(size=4) + rng.normal(scale=0.5, size=2_000)
        data = Dataset(X, y)
        holdout = Dataset(X[:300].copy(), y[:300].copy())
        session = EstimationSession(
            LinearRegressionSpec(regularization=1e-2),
            data,
            holdout,
            rng=0,
            initial_sample_size=200,
        )
        result = session.train_to(ApproximationContract(epsilon=0.05, delta=0.05))
        assert "recomputed_at_theta_n" not in result.metadata
