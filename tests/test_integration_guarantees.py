"""Integration tests: statistical validation of the end-to-end guarantees.

These are the unit-scale versions of the paper's headline claims:

* the approximate model agrees with the full model at least as often as
  requested, in at least ~(1 − δ) of repeated runs (Figure 6);
* BlinkML's chosen sample sizes shrink when the request loosens and grow
  with model complexity (Figures 5 and 11);
* the Lemma 1 bound on the full model's generalisation error holds
  (Figure 8b).
"""

import numpy as np
import pytest

from repro.core.coordinator import BlinkML
from repro.core.guarantees import generalization_error_bound
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation.metrics import generalization_error, model_agreement
from repro.models.logistic_regression import LogisticRegressionSpec


@pytest.fixture(scope="module")
def higgs_splits():
    data = higgs_like(n_rows=40_000, n_features=14, seed=90)
    return train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def higgs_full_model(higgs_splits):
    return LogisticRegressionSpec(regularization=1e-3).fit(higgs_splits.train)


class TestAccuracyGuaranteeAcrossRuns:
    def test_guarantee_holds_in_most_repetitions(self, higgs_splits, higgs_full_model):
        """Repeat approximate training and check the empirical violation rate."""
        spec = LogisticRegressionSpec(regularization=1e-3)
        requested = 0.95
        repetitions = 10
        successes = 0
        for repetition in range(repetitions):
            trainer = BlinkML(
                spec, initial_sample_size=1000, n_parameter_samples=64, seed=repetition
            )
            result = trainer.train_with_accuracy(
                higgs_splits.train, higgs_splits.holdout, requested
            )
            agreement = model_agreement(
                spec, result.model.theta, higgs_full_model.theta, higgs_splits.holdout
            )
            if agreement >= requested:
                successes += 1
        # δ = 0.05, 10 repetitions: allow at most 2 violations to keep the
        # test stable while still catching systematic failures.
        assert successes >= repetitions - 2

    def test_actual_accuracy_tracks_requested_levels(self, higgs_splits, higgs_full_model):
        spec = LogisticRegressionSpec(regularization=1e-3)
        agreements = {}
        for requested in (0.85, 0.99):
            trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=64, seed=3)
            result = trainer.train_with_accuracy(
                higgs_splits.train, higgs_splits.holdout, requested
            )
            agreements[requested] = model_agreement(
                spec, result.model.theta, higgs_full_model.theta, higgs_splits.holdout
            )
        assert agreements[0.99] >= 0.99 - 0.015
        assert agreements[0.85] >= 0.85


class TestSampleSizeBehaviour:
    def test_sample_size_monotone_in_requested_accuracy(self, higgs_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        sizes = []
        for requested in (0.85, 0.95, 0.99):
            trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=64, seed=5)
            result = trainer.train_with_accuracy(
                higgs_splits.train, higgs_splits.holdout, requested
            )
            sizes.append(result.sample_size)
        assert sizes == sorted(sizes)
        assert sizes[0] < higgs_splits.train.n_rows  # loose request uses a strict subset

    def test_more_parameters_need_larger_sample(self):
        """Figure 11b shape: more parameters -> larger estimated sample.

        The number of parameters is varied the way the paper's Criteo sweep
        does — by widening the feature vector without adding signal — so the
        underlying prediction task stays fixed while the parameter
        uncertainty grows.
        """
        base = higgs_like(n_rows=25_000, n_features=10, seed=91)
        noise_rng = np.random.default_rng(5)
        sizes = {}
        for extra_features in (0, 60):
            if extra_features:
                X = np.hstack(
                    [base.X, noise_rng.normal(size=(base.n_rows, extra_features))]
                )
            else:
                X = base.X
            from repro.data.dataset import Dataset

            splits = train_holdout_test_split(
                Dataset(X, base.y), SplitSpec(0.1, 0.1), rng=np.random.default_rng(1)
            )
            spec = LogisticRegressionSpec(regularization=1e-3)
            trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=48, seed=0)
            outcome = trainer.train_with_accuracy(splits.train, splits.holdout, 0.95)
            sizes[extra_features] = outcome.sample_size
        assert sizes[60] >= sizes[0]

    def test_stronger_regularization_needs_smaller_sample(self, higgs_splits):
        """Figure 11a shape: larger β -> smaller estimated sample."""
        sizes = {}
        for beta in (1e-4, 1.0):
            spec = LogisticRegressionSpec(regularization=beta)
            trainer = BlinkML(spec, initial_sample_size=500, n_parameter_samples=64, seed=7)
            outcome = trainer.train_with_accuracy(higgs_splits.train, higgs_splits.holdout, 0.97)
            sizes[beta] = outcome.sample_size
        assert sizes[1.0] <= sizes[1e-4]


class TestGeneralizationBound:
    def test_lemma1_bound_covers_full_model_error(self, higgs_splits, higgs_full_model):
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=1000, n_parameter_samples=64, seed=11)
        result = trainer.train_with_accuracy(higgs_splits.train, higgs_splits.holdout, 0.95)
        approx_error = generalization_error(result.model, higgs_splits.test)
        full_error = generalization_error(higgs_full_model, higgs_splits.test)
        bound = generalization_error_bound(approx_error, result.contract.epsilon)
        assert full_error <= bound + 0.01

    def test_approx_and_full_generalization_errors_are_close(self, higgs_splits, higgs_full_model):
        spec = LogisticRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=1000, n_parameter_samples=64, seed=13)
        result = trainer.train_with_accuracy(higgs_splits.train, higgs_splits.holdout, 0.95)
        approx_error = generalization_error(result.model, higgs_splits.test)
        full_error = generalization_error(higgs_full_model, higgs_splits.test)
        assert abs(approx_error - full_error) < 0.05
