"""Tests for the scikit-learn-style estimator wrappers."""

import numpy as np
import pytest

from repro.data.synthetic import bikeshare_like, gas_like, higgs_like, mnist_like
from repro.exceptions import BlinkMLError, ModelSpecError
from repro.sklearn_api import (
    BlinkMLClassifier,
    BlinkMLEstimator,
    BlinkMLRegressor,
    BlinkMLTransformer,
)


@pytest.fixture(scope="module")
def binary_arrays():
    data = higgs_like(n_rows=12_000, n_features=12, seed=300)
    return data.X, data.y


@pytest.fixture(scope="module")
def regression_arrays():
    data = gas_like(n_rows=10_000, n_features=10, seed=301)
    return data.X, data.y


class TestClassifier:
    def test_fit_predict_score(self, binary_arrays):
        X, y = binary_arrays
        clf = BlinkMLClassifier(
            model="lr", accuracy=0.9, regularization=1e-3,
            initial_sample_size=1_000, n_parameter_samples=32, seed=0,
        )
        clf.fit(X, y)
        predictions = clf.predict(X[:100])
        assert predictions.shape == (100,)
        assert set(np.unique(predictions)) <= {0, 1}
        assert clf.score(X, y) > 0.6
        assert clf.sample_size_ <= len(y)
        assert 0.0 <= clf.estimated_accuracy_ <= 1.0

    def test_predict_proba(self, binary_arrays):
        X, y = binary_arrays
        clf = BlinkMLClassifier(
            model="lr", accuracy=0.9, initial_sample_size=1_000,
            n_parameter_samples=32, seed=0,
        ).fit(X, y)
        probabilities = clf.predict_proba(X[:50])
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_multiclass_model(self):
        data = mnist_like(n_rows=8_000, n_features=16, n_classes=4, seed=302)
        clf = BlinkMLClassifier(
            model="me", accuracy=0.9, initial_sample_size=1_000,
            n_parameter_samples=32, seed=0,
        ).fit(data.X, data.y)
        assert clf.score(data.X, data.y) > 0.5

    def test_requires_labels(self, binary_arrays):
        X, _ = binary_arrays
        with pytest.raises(ModelSpecError):
            BlinkMLClassifier(model="lr").fit(X)

    def test_rejects_non_classifier_model(self, regression_arrays):
        X, y = regression_arrays
        with pytest.raises(ModelSpecError):
            BlinkMLClassifier(
                model="lin", initial_sample_size=500, n_parameter_samples=16, seed=0
            ).fit(X, y)

    def test_unfitted_predict_raises(self, binary_arrays):
        X, _ = binary_arrays
        with pytest.raises(BlinkMLError):
            BlinkMLClassifier(model="lr").predict(X)


class TestRegressor:
    def test_fit_predict_score(self, regression_arrays):
        X, y = regression_arrays
        reg = BlinkMLRegressor(
            model="lin", accuracy=0.95, regularization=1e-3,
            initial_sample_size=1_000, n_parameter_samples=32, seed=0,
        ).fit(X, y)
        assert reg.predict(X[:10]).shape == (10,)
        # The approximate model must explain essentially as much variance as
        # the exact ridge solution does on this (noisy) workload.
        n, d = X.shape
        exact_theta = np.linalg.solve(
            X.T @ X / n + 1e-3 * np.eye(d), X.T @ y / n
        )
        exact_residual = float(np.sum((y - X @ exact_theta) ** 2))
        exact_r2 = 1.0 - exact_residual / float(np.sum((y - y.mean()) ** 2))
        assert reg.score(X, y) > exact_r2 - 0.05

    def test_poisson_model(self):
        data = bikeshare_like(n_rows=10_000, n_features=8, seed=303)
        reg = BlinkMLRegressor(
            model="poisson", accuracy=0.95, initial_sample_size=1_000,
            n_parameter_samples=32, seed=0,
        ).fit(data.X, data.y)
        assert np.all(reg.predict(data.X[:20]) > 0)

    def test_rejects_classifier_model(self, binary_arrays):
        X, y = binary_arrays
        with pytest.raises(ModelSpecError):
            BlinkMLRegressor(
                model="lr", initial_sample_size=500, n_parameter_samples=16, seed=0
            ).fit(X, y.astype(float))


class TestTransformer:
    def test_fit_transform(self):
        data = mnist_like(n_rows=6_000, n_features=16, n_classes=4, seed=304)
        X = data.X - data.X.mean(axis=0)
        transformer = BlinkMLTransformer(
            model="ppca", accuracy=0.95, n_factors=3, sigma2=1.0,
            initial_sample_size=1_000, n_parameter_samples=32, seed=0,
        )
        latent = transformer.fit_transform(X)
        assert latent.shape == (X.shape[0], 3)


class TestParams:
    def test_get_and_set_params(self):
        estimator = BlinkMLEstimator(model="lr", accuracy=0.9, regularization=0.5)
        params = estimator.get_params()
        assert params["accuracy"] == 0.9
        assert params["regularization"] == 0.5
        estimator.set_params(accuracy=0.99, regularization=0.1)
        assert estimator.accuracy == 0.99
        assert estimator.model_kwargs["regularization"] == 0.1
