"""Tests for the hyperparameter-optimisation harness (Section 5.7)."""

import numpy as np
import pytest

from repro.core.contract import ApproximationContract
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.exceptions import ModelSpecError
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.tuning import RandomSearch, SearchSpace


@pytest.fixture(scope="module")
def tuning_splits():
    data = higgs_like(n_rows=8_000, n_features=16, seed=70)
    return train_holdout_test_split(data, SplitSpec(0.15, 0.15), rng=np.random.default_rng(0))


class TestSearchSpace:
    def test_candidate_count_and_reproducibility(self):
        a = SearchSpace(n_features=20, seed=1).sample(10)
        b = SearchSpace(n_features=20, seed=1).sample(10)
        assert len(a) == 10
        assert [c.feature_indices for c in a] == [c.feature_indices for c in b]
        assert [c.regularization for c in a] == [c.regularization for c in b]

    def test_feature_subsets_respect_bounds(self):
        space = SearchSpace(n_features=30, min_features=5, max_features=10, seed=2)
        for candidate in space.sample(20):
            assert 5 <= len(candidate.feature_indices) <= 10
            assert max(candidate.feature_indices) < 30
            assert len(set(candidate.feature_indices)) == len(candidate.feature_indices)

    def test_regularization_range(self):
        space = SearchSpace(n_features=5, log_reg_range=(-2, -1), seed=3)
        for candidate in space.sample(20):
            assert 10**-2 <= candidate.regularization <= 10**-1

    def test_invalid_configuration(self):
        with pytest.raises(ModelSpecError):
            SearchSpace(n_features=0)
        with pytest.raises(ModelSpecError):
            SearchSpace(n_features=10, min_features=8, max_features=4)
        with pytest.raises(ModelSpecError):
            SearchSpace(n_features=10, log_reg_range=(1, -1))
        with pytest.raises(ModelSpecError):
            SearchSpace(n_features=10).sample(0)

    def test_candidate_indices_are_sequential(self):
        candidates = SearchSpace(n_features=8, seed=4).sample(5)
        assert [c.index for c in candidates] == list(range(5))


class TestRandomSearch:
    def make_search(self, splits):
        return RandomSearch(
            spec_factory=lambda reg: LogisticRegressionSpec(regularization=reg),
            train=splits.train,
            holdout=splits.holdout,
            test=splits.test,
            contract=ApproximationContract(epsilon=0.05, delta=0.05),
            initial_sample_size=500,
            n_parameter_samples=32,
            seed=0,
        )

    def test_full_and_blinkml_evaluate_same_candidates(self, tuning_splits):
        search = self.make_search(tuning_splits)
        candidates = SearchSpace(n_features=16, min_features=6, seed=5).sample(3)
        full = search.run(candidates, strategy="full")
        approx = search.run(candidates, strategy="blinkml")
        assert full.n_trials == approx.n_trials == 3
        assert [t.candidate.index for t in full.trials] == [t.candidate.index for t in approx.trials]

    def test_blinkml_uses_fewer_rows(self, tuning_splits):
        search = self.make_search(tuning_splits)
        candidates = SearchSpace(n_features=16, min_features=6, seed=6).sample(3)
        full = search.run(candidates, strategy="full")
        approx = search.run(candidates, strategy="blinkml")
        assert sum(t.sample_size for t in approx.trials) < sum(t.sample_size for t in full.trials)

    def test_accuracies_are_comparable(self, tuning_splits):
        search = self.make_search(tuning_splits)
        candidates = SearchSpace(n_features=16, min_features=8, seed=7).sample(3)
        full = search.run(candidates, strategy="full")
        approx = search.run(candidates, strategy="blinkml")
        for full_trial, approx_trial in zip(full.trials, approx.trials):
            assert abs(full_trial.test_accuracy - approx_trial.test_accuracy) < 0.08

    def test_time_budget_stops_early(self, tuning_splits):
        search = self.make_search(tuning_splits)
        candidates = SearchSpace(n_features=16, seed=8).sample(50)
        result = search.run(candidates, strategy="blinkml", time_budget_seconds=0.5)
        assert result.n_trials < 50

    def test_best_trial_and_accuracy_series(self, tuning_splits):
        search = self.make_search(tuning_splits)
        candidates = SearchSpace(n_features=16, min_features=4, seed=9).sample(4)
        result = search.run(candidates, strategy="blinkml")
        best = result.best_trial
        assert best is not None
        assert best.test_accuracy == max(t.test_accuracy for t in result.trials)
        series = result.accuracy_over_time()
        assert len(series) == result.n_trials
        best_so_far = [accuracy for _, accuracy in series]
        assert best_so_far == sorted(best_so_far)

    def test_invalid_strategy(self, tuning_splits):
        search = self.make_search(tuning_splits)
        candidates = SearchSpace(n_features=16, seed=10).sample(1)
        with pytest.raises(ModelSpecError):
            search.run(candidates, strategy="grid")

    def test_empty_result_has_no_best_trial(self, tuning_splits):
        search = self.make_search(tuning_splits)
        result = search.run([], strategy="full")
        assert result.best_trial is None
        assert result.accuracy_over_time() == []
