"""Tests for the per-shard statistics index and the store append path.

Contract groups:

* **sidecar reuse** — the first ``compute_statistics`` over a store writes
  one summary per shard; every later call with the same (spec, θ, method)
  key loads them instead of re-reading rows, and the reused result is
  bitwise identical to the freshly computed one;
* **integrity** — a tampered or truncated sidecar raises
  :class:`DataError` from both ``StatisticsIndex.load`` and
  ``ShardStore.verify``; a sidecar taken at a different θ is
  garbage-collected on publish, never silently reused;
* **append** — ``ShardStore.append_shards`` grows a store in place with an
  atomic manifest republish: old shard files and their sidecar summaries
  survive untouched, the content digest moves, and a reader's ``reload()``
  adopts the growth without dropping its memmaps;
* **append + recompute ≡ cold rebuild** — statistics over the grown store
  reuse the old shards' summaries, compute only the new ones, and merge to
  a result bitwise identical to a cold rebuild over a sidecar-free copy.
"""

from __future__ import annotations

import os
import shutil

import numpy as np
import pytest

from repro.core.statistics import compute_statistics, spec_digest, theta_digest
from repro.data.store import (
    ShardManifest,
    ShardStore,
    ShardStoreWriter,
    StatisticsIndex,
    sidecar_filename,
)
from repro.data.synthetic import higgs_like
from repro.exceptions import DataError
from repro.models.logistic_regression import LogisticRegressionSpec


@pytest.fixture
def store_setup(tmp_path):
    data = higgs_like(n_rows=1_600, n_features=5, seed=71)
    directory = tmp_path / "store"
    ShardStore.write(data.head(1_200), directory, shard_rows=300)
    spec = LogisticRegressionSpec(regularization=1e-2)
    theta = spec.fit(data.head(1_200)).theta
    return data, directory, spec, theta


def _strip_sidecars(directory):
    """A copy of ``directory`` with every statistics sidecar removed."""
    clean = str(directory) + "-clean"
    shutil.copytree(directory, clean)
    for name in os.listdir(clean):
        if name.startswith("stats-"):
            os.remove(os.path.join(clean, name))
    manifest = ShardManifest.load(clean)
    ShardManifest(
        name=manifest.name,
        n_rows=manifest.n_rows,
        n_features=manifest.n_features,
        x_dtype=manifest.x_dtype,
        y_dtype=manifest.y_dtype,
        shards=manifest.shards,
        content_digest=manifest.content_digest,
        label_moments=manifest.label_moments,
        version=manifest.version,
        metadata=dict(manifest.metadata),
        statistics=(),
    ).save(clean)
    return clean


# ----------------------------------------------------------------------
# Sidecar reuse
# ----------------------------------------------------------------------
class TestSidecarReuse:
    def test_first_compute_writes_then_reuses(self, store_setup):
        _, directory, spec, theta = store_setup
        source = ShardStore.open(directory).dataset()
        first = compute_statistics(spec, theta, source)
        assert first.computed_shard_summaries == 4
        assert first.reused_shard_summaries == 0
        entry = source.statistics_index().find(
            spec_digest(spec), theta_digest(theta), first.method.value
        )
        assert entry is not None
        assert len(entry.shard_digests) == 4

        # A brand-new store handle (cold bootstrap) loads, not recomputes.
        second = compute_statistics(
            spec, theta, ShardStore.open(directory).dataset()
        )
        assert second.reused_shard_summaries == 4
        assert second.computed_shard_summaries == 0
        assert np.array_equal(
            first.covariance.dense(), second.covariance.dense()
        )

    def test_persist_false_writes_nothing(self, store_setup):
        _, directory, spec, theta = store_setup
        source = ShardStore.open(directory).dataset()
        compute_statistics(spec, theta, source, persist=False)
        assert source.statistics_index().manifest.statistics == ()
        assert not [
            name for name in os.listdir(directory) if name.startswith("stats-")
        ]

    def test_verify_covers_sidecars(self, store_setup):
        _, directory, spec, theta = store_setup
        store = ShardStore.open(directory)
        compute_statistics(spec, theta, store.dataset())
        store.verify()  # pristine store with sidecars passes


# ----------------------------------------------------------------------
# Integrity
# ----------------------------------------------------------------------
class TestSidecarIntegrity:
    def _published_entry(self, directory, spec, theta):
        store = ShardStore.open(directory)
        stats = compute_statistics(spec, theta, store.dataset())
        entry = store.manifest.statistics[0]
        return store, stats, entry

    def test_tampered_sidecar_detected(self, store_setup):
        _, directory, spec, theta = store_setup
        store, _, entry = self._published_entry(directory, spec, theta)
        path = os.path.join(str(directory), entry.file)
        with open(path, "r+b") as handle:
            payload = bytearray(handle.read())
            payload[len(payload) // 2] ^= 0xFF
            handle.seek(0)
            handle.write(payload)
        with pytest.raises(DataError, match="sidecar"):
            store.verify()
        with pytest.raises(DataError):
            StatisticsIndex(store).load(
                entry.spec_digest, entry.theta_digest, entry.method
            )

    def test_missing_sidecar_detected(self, store_setup):
        _, directory, spec, theta = store_setup
        store, _, entry = self._published_entry(directory, spec, theta)
        os.remove(os.path.join(str(directory), entry.file))
        with pytest.raises(DataError, match="sidecar"):
            store.verify()

    def test_theta_mismatch_garbage_collected(self, store_setup):
        _, directory, spec, theta = store_setup
        store, _, old_entry = self._published_entry(directory, spec, theta)
        # New θ (a re-trained bootstrap model): publishing its summaries
        # must drop the stale-θ sidecar from manifest and disk.
        compute_statistics(spec, theta + 0.5, store.dataset())
        remaining = store.manifest.statistics
        assert len(remaining) == 1
        assert remaining[0].file != old_entry.file
        assert not os.path.exists(os.path.join(str(directory), old_entry.file))
        assert StatisticsIndex(store).load(
            old_entry.spec_digest, old_entry.theta_digest, old_entry.method
        ) == {}
        store.verify()

    def test_filename_is_deterministic(self):
        assert sidecar_filename("a" * 32, "b" * 32, "observed_fisher") == (
            "stats-aaaaaaaa-bbbbbbbb-observed_fisher.npz"
        )


# ----------------------------------------------------------------------
# Append
# ----------------------------------------------------------------------
class TestAppend:
    def test_append_grows_and_preserves(self, store_setup):
        data, directory, spec, theta = store_setup
        store = ShardStore.open(directory)
        compute_statistics(spec, theta, store.dataset())
        old_digest = store.manifest.content_digest
        old_shards = store.manifest.shards
        old_stats = store.manifest.statistics

        store.append_shards([(data.X[1_200:], data.y[1_200:])], shard_rows=300)
        manifest = store.manifest
        assert manifest.n_rows == 1_600
        assert manifest.content_digest != old_digest
        # Old shards are a byte-identical prefix; statistics entries survive.
        assert manifest.shards[: len(old_shards)] == old_shards
        assert manifest.statistics == old_stats
        store.verify()
        # Grown store materialises to exactly the full dataset.
        back = store.dataset().materialize()
        assert np.array_equal(back.X, data.X)
        assert np.array_equal(back.y, data.y)

    def test_append_and_overwrite_are_exclusive(self, store_setup):
        _, directory, _, _ = store_setup
        with pytest.raises(DataError, match="mutually exclusive"):
            ShardStoreWriter(directory, append=True, overwrite=True)

    def test_reload_adopts_growth(self, store_setup):
        data, directory, _, _ = store_setup
        reader = ShardStore.open(directory).dataset()
        assert reader.n_rows == 1_200
        assert reader.reload() is False  # nothing changed yet
        ShardStore.open(directory).append_shards(
            [(data.X[1_200:], data.y[1_200:])], shard_rows=300
        )
        assert reader.reload() is True
        assert reader.n_rows == 1_600
        assert np.array_equal(reader.materialize().X, data.X)

    def test_statistics_only_republish_reports_unchanged(self, store_setup):
        _, directory, spec, theta = store_setup
        reader = ShardStore.open(directory).dataset()
        compute_statistics(spec, theta, ShardStore.open(directory).dataset())
        # The manifest file changed (sidecar entry added) but the row data
        # did not: reload must report "nothing changed" to the session.
        assert reader.reload() is False


# ----------------------------------------------------------------------
# Append + recompute ≡ cold rebuild
# ----------------------------------------------------------------------
class TestAppendThenRecompute:
    def test_incremental_matches_cold_rebuild_bitwise(self, store_setup):
        data, directory, spec, theta = store_setup
        compute_statistics(spec, theta, ShardStore.open(directory).dataset())
        ShardStore.open(directory).append_shards(
            [(data.X[1_200:], data.y[1_200:])], shard_rows=300
        )
        incremental = compute_statistics(
            spec, theta, ShardStore.open(directory).dataset()
        )
        assert incremental.reused_shard_summaries == 4
        assert incremental.computed_shard_summaries == 2

        cold_dir = _strip_sidecars(directory)
        cold = compute_statistics(
            spec, theta, ShardStore.open(cold_dir).dataset(), persist=False
        )
        assert cold.reused_shard_summaries == 0
        assert cold.computed_shard_summaries == 6
        assert np.array_equal(
            incremental.covariance.dense(), cold.covariance.dense()
        )
        assert incremental.sample_size == cold.sample_size == 1_600
