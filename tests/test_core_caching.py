"""Tests for the thread-safe bounded LRU cache (repro.core.caching)."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.caching import CacheStats, LRUCache, default_sizeof
from repro.exceptions import BlinkMLError


class TestBasicOperations:
    def test_get_put_roundtrip(self):
        cache = LRUCache("t")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert len(cache) == 1
        assert "a" in cache

    def test_get_or_compute_miss_then_hit(self):
        cache = LRUCache("t")
        calls = []
        value, hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (value, hit) == (42, False)
        value, hit = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert (value, hit) == (42, True)
        assert len(calls) == 1

    def test_get_or_compute_returns_stored_object(self):
        cache = LRUCache("t")
        array = np.arange(4.0)
        first, _ = cache.get_or_compute("k", lambda: array)
        second, _ = cache.get_or_compute("k", lambda: np.zeros(4))
        assert first is array
        assert second is array

    def test_put_replaces_value_and_bytes(self):
        cache = LRUCache("t", max_bytes=1000)
        cache.put("a", np.zeros(10))  # 80 bytes
        cache.put("a", np.zeros(50))  # 400 bytes
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.bytes == 400

    def test_clear(self):
        cache = LRUCache("t")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().bytes == 0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(BlinkMLError):
            LRUCache("t", max_entries=0)
        with pytest.raises(BlinkMLError):
            LRUCache("t", max_bytes=0)


class TestEviction:
    def test_entry_capacity_respected(self):
        cache = LRUCache("t", max_entries=3)
        for i in range(10):
            cache.put(i, i)
            assert len(cache) <= 3
        stats = cache.stats()
        assert stats.entries == 3
        assert stats.evictions == 7
        assert cache.keys() == [7, 8, 9]

    def test_lru_order_follows_recency_not_insertion(self):
        cache = LRUCache("t", max_entries=3)
        for key in "abc":
            cache.put(key, key)
        cache.get("a")  # refresh: "b" is now least recently used
        cache.put("d", "d")
        assert "b" not in cache
        assert all(key in cache for key in "acd")

    def test_byte_capacity_respected(self):
        cache = LRUCache("t", max_bytes=100)
        for i in range(10):
            cache.put(i, np.zeros(5))  # 40 bytes each
            assert cache.stats().bytes <= 100
        assert cache.stats().entries == 2

    def test_oversized_single_entry_is_kept(self):
        # A value larger than the whole budget still caches (evicting the
        # rest) so a hot oversized entry is not recomputed forever.
        cache = LRUCache("t", max_bytes=100)
        cache.put("small", np.zeros(5))
        cache.put("huge", np.zeros(1000))
        assert "huge" in cache
        assert "small" not in cache
        assert cache.stats().entries == 1

    def test_unbounded_never_evicts(self):
        cache = LRUCache("t")
        for i in range(1000):
            cache.put(i, np.zeros(100))
        stats = cache.stats()
        assert stats.entries == 1000
        assert stats.evictions == 0

    def test_evicted_entry_recomputes(self):
        cache = LRUCache("t", max_entries=1)
        computes = []

        def compute(value):
            def inner():
                computes.append(value)
                return value

            return inner

        assert cache.get_or_compute("a", compute(1)) == (1, False)
        assert cache.get_or_compute("b", compute(2)) == (2, False)  # evicts "a"
        assert cache.get_or_compute("a", compute(1)) == (1, False)  # recompute
        assert computes == [1, 2, 1]
        assert cache.stats().evictions == 2


class TestStats:
    def test_snapshot_fields(self):
        cache = LRUCache("diff", max_entries=4, max_bytes=1 << 20)
        cache.get_or_compute("k", lambda: np.zeros(8))
        cache.get_or_compute("k", lambda: np.zeros(8))
        cache.get("missing")
        stats = cache.stats()
        assert isinstance(stats, CacheStats)
        assert stats.name == "diff"
        assert stats.hits == 1
        assert stats.misses == 2  # one compute miss + one plain-get miss
        assert stats.entries == 1
        assert stats.bytes == 64
        assert stats.max_entries == 4
        assert stats.max_bytes == 1 << 20
        assert stats.requests == 3
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_of_unused_cache_is_zero(self):
        assert LRUCache("t").stats().hit_rate == 0.0

    def test_default_sizeof(self):
        assert default_sizeof(np.zeros(10)) == 80
        assert default_sizeof("x") > 0


class TestSingleFlight:
    def test_concurrent_misses_compute_once(self):
        cache = LRUCache("t")
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        compute_count = []

        def compute():
            compute_count.append(1)
            time.sleep(0.05)  # widen the window for would-be duplicates
            return np.arange(3.0)

        def request():
            barrier.wait()
            return cache.get_or_compute("k", compute)

        with ThreadPoolExecutor(n_threads) as pool:
            results = list(pool.map(lambda _: request(), range(n_threads)))

        assert len(compute_count) == 1  # single-flight: one computation
        values = [value for value, _ in results]
        assert all(value is values[0] for value in values)  # same object
        assert sum(1 for _, hit in results if not hit) == 1
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == n_threads - 1

    def test_different_keys_compute_concurrently(self):
        cache = LRUCache("t")
        running = threading.Barrier(2, timeout=5)

        def compute(key):
            def inner():
                # Both computations must be in flight at once; a cache-wide
                # compute lock would deadlock this barrier.
                running.wait()
                return key

            return inner

        with ThreadPoolExecutor(2) as pool:
            futures = [
                pool.submit(cache.get_or_compute, key, compute(key)) for key in ("a", "b")
            ]
            assert sorted(f.result(timeout=5)[0] for f in futures) == ["a", "b"]

    def test_compute_error_propagates_and_is_not_cached(self):
        cache = LRUCache("t")

        def boom():
            raise RuntimeError("compute failed")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert "k" not in cache
        value, hit = cache.get_or_compute("k", lambda: 7)  # retry succeeds
        assert (value, hit) == (7, False)

    def test_publish_failure_cannot_strand_waiters(self):
        # Regression: if the publish step fails (here: a broken sizeof
        # raising inside _store), the leader must still set the in-flight
        # event — otherwise followers would block forever on a value that
        # was computed but never cached.
        def broken_sizeof(value):
            raise TypeError("sizeof exploded")

        cache = LRUCache("t", max_bytes=1000, sizeof=broken_sizeof)
        follower_may_start = threading.Event()

        def compute():
            follower_may_start.set()
            time.sleep(0.05)  # keep the follower waiting on the in-flight event
            return 42

        with ThreadPoolExecutor(2) as pool:
            leader = pool.submit(cache.get_or_compute, "k", compute)
            follower_may_start.wait(timeout=5)
            follower = pool.submit(cache.get_or_compute, "k", lambda: 42)
            with pytest.raises(TypeError):
                leader.result(timeout=5)
            # The follower either received the leader's value or retried and
            # failed on the same broken publish — it must not hang.
            try:
                value, hit = follower.result(timeout=5)
                assert (value, hit) == (42, True)
            except TypeError:
                pass
        assert "k" not in cache  # nothing was cached

    def test_error_reaches_waiting_threads(self):
        cache = LRUCache("t")
        release = threading.Event()
        follower_started = threading.Event()

        def boom():
            follower_started.wait(timeout=5)
            raise RuntimeError("compute failed")

        with ThreadPoolExecutor(2) as pool:
            leader = pool.submit(cache.get_or_compute, "k", boom)

            def follow():
                follower_started.set()
                return cache.get_or_compute("k", lambda: release.set() or 1)

            follower = pool.submit(follow)
            with pytest.raises(RuntimeError):
                leader.result(timeout=5)
            # The follower either re-raises the leader's error or (if it
            # arrived after the failure was cleaned up) recomputes.
            try:
                value, _ = follower.result(timeout=5)
                assert value == 1
            except RuntimeError:
                pass


class TestThreadHammer:
    def test_bounded_cache_under_concurrent_mixed_load(self):
        cache = LRUCache("t", max_entries=8, max_bytes=8 * 80)
        n_threads, n_keys, n_iterations = 8, 32, 200

        def expected(key):
            return np.full(10, float(key))

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(n_iterations):
                key = int(rng.integers(n_keys))
                value, _ = cache.get_or_compute(key, lambda k=key: expected(k))
                np.testing.assert_array_equal(value, expected(key))

        with ThreadPoolExecutor(n_threads) as pool:
            list(pool.map(worker, range(n_threads)))

        stats = cache.stats()
        assert stats.entries <= 8
        assert stats.bytes <= 8 * 80
        assert stats.hits + stats.misses == n_threads * n_iterations
        assert stats.evictions > 0  # 32 keys through an 8-slot cache


class TestResizeAndEvictionCallbacks:
    def test_resize_shrink_evicts_immediately(self):
        cache = LRUCache("r", max_entries=8)
        for key in range(6):
            cache.put(key, key)
        cache.resize(max_entries=2)
        assert len(cache) == 2
        assert cache.keys() == [4, 5]  # LRU-first eviction
        assert cache.stats().evictions == 4
        assert cache.max_entries == 2

    def test_resize_byte_bound_and_grow(self):
        cache = LRUCache("r", max_bytes=400)
        for key in range(4):
            cache.put(key, np.zeros(10))  # 80 bytes each
        assert len(cache) == 4
        cache.resize(max_bytes=160)
        assert len(cache) == 2
        assert cache.stats().bytes <= 160
        cache.resize(max_bytes=None)  # unbounded again
        for key in range(10, 20):
            cache.put(key, np.zeros(10))
        assert len(cache) == 12

    def test_resize_leaves_omitted_bound_unchanged(self):
        cache = LRUCache("r", max_entries=4, max_bytes=1000)
        cache.resize(max_entries=2)
        assert cache.max_entries == 2
        assert cache.max_bytes == 1000
        cache.resize(max_bytes=500)
        assert cache.max_entries == 2
        assert cache.max_bytes == 500

    def test_resize_validates_bounds(self):
        cache = LRUCache("r")
        with pytest.raises(BlinkMLError):
            cache.resize(max_entries=0)
        with pytest.raises(BlinkMLError):
            cache.resize(max_bytes=-1)

    def test_on_evict_fires_for_insert_and_resize_not_clear(self):
        evicted = []
        cache = LRUCache(
            "cb", max_entries=2, on_evict=lambda key, value: evicted.append((key, value))
        )
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert evicted == [("a", 1)]
        cache.resize(max_entries=1)  # evicts "b"
        assert evicted == [("a", 1), ("b", 2)]
        cache.put("c", 30)  # same-key replacement: no callback
        cache.clear()  # clear: no callback
        assert evicted == [("a", 1), ("b", 2)]

    def test_on_evict_fires_on_get_or_compute_eviction(self):
        evicted = []
        cache = LRUCache(
            "cb", max_entries=1, on_evict=lambda key, value: evicted.append(key)
        )
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        assert evicted == ["a"]

    def test_on_evict_may_reenter_the_cache(self):
        """Callbacks run outside the lock, so touching the cache is legal."""
        seen = []
        cache = LRUCache("cb", max_entries=2, on_evict=lambda key, value: seen.append(len(cache)))
        for key in range(4):
            cache.put(key, key)
        assert seen == [2, 2]
