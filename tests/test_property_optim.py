"""Hypothesis property tests for the optimisation substrate.

For randomly generated strictly convex quadratics the minimiser is known in
closed form, so every optimizer can be checked against it; additional
invariants cover scale equivariance and the L-BFGS memory parameter.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import BFGS, LBFGS, NewtonMethod, FunctionObjective, minimize


def random_quadratic(seed: int, dimension: int, condition: float):
    """Return (objective, minimiser) for a random strictly convex quadratic."""
    rng = np.random.default_rng(seed)
    eigenvalues = np.linspace(1.0, condition, dimension)
    basis, _ = np.linalg.qr(rng.normal(size=(dimension, dimension)))
    A = basis @ np.diag(eigenvalues) @ basis.T
    target = rng.normal(size=dimension)

    def value(theta):
        diff = theta - target
        return 0.5 * float(diff @ A @ diff)

    def gradient(theta):
        return A @ (theta - target)

    def hessian(theta):
        return A

    return FunctionObjective(value, gradient, hessian), target


class TestQuadraticRecovery:
    @given(
        seed=st.integers(0, 10_000),
        dimension=st.integers(2, 8),
        condition=st.floats(1.0, 100.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_bfgs_finds_known_minimiser(self, seed, dimension, condition):
        objective, target = random_quadratic(seed, dimension, condition)
        result = BFGS(max_iterations=500, gradient_tolerance=1e-9).minimize(
            objective, np.zeros(dimension)
        )
        np.testing.assert_allclose(result.theta, target, atol=1e-4)

    @given(
        seed=st.integers(0, 10_000),
        dimension=st.integers(2, 8),
        memory=st.integers(2, 20),
    )
    @settings(max_examples=25, deadline=None)
    def test_lbfgs_insensitive_to_memory(self, seed, dimension, memory):
        objective, target = random_quadratic(seed, dimension, 20.0)
        result = LBFGS(memory=memory, gradient_tolerance=1e-9).minimize(
            objective, np.zeros(dimension)
        )
        np.testing.assert_allclose(result.theta, target, atol=1e-4)

    @given(seed=st.integers(0, 10_000), dimension=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_newton_and_bfgs_agree(self, seed, dimension):
        objective, _ = random_quadratic(seed, dimension, 50.0)
        newton = NewtonMethod(gradient_tolerance=1e-10).minimize(objective, np.zeros(dimension))
        bfgs = BFGS(gradient_tolerance=1e-10).minimize(objective, np.zeros(dimension))
        np.testing.assert_allclose(newton.theta, bfgs.theta, atol=1e-5)

    @given(seed=st.integers(0, 10_000), scale=st.floats(0.1, 50.0))
    @settings(max_examples=25, deadline=None)
    def test_minimiser_invariant_to_objective_scaling(self, seed, scale):
        objective, target = random_quadratic(seed, 4, 10.0)
        scaled = FunctionObjective(
            lambda t: scale * objective.value(t),
            lambda t: scale * objective.gradient(t),
        )
        result = minimize(scaled, np.zeros(4), method="lbfgs", gradient_tolerance=1e-9)
        np.testing.assert_allclose(result.theta, target, atol=1e-4)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_final_value_not_worse_than_start(self, seed):
        objective, _ = random_quadratic(seed, 5, 30.0)
        start = np.full(5, 2.0)
        result = minimize(objective, start, method="bfgs")
        assert result.final_value <= objective.value(start) + 1e-12
