"""Tests for the three statistics-computation methods (Section 3.4).

The key correctness property: for models with a closed-form Hessian, all
three methods must agree on the covariance H^-1 J H^-1 (ObservedFisher only
asymptotically, so with a looser tolerance), and the estimated parameter
variances must match the empirically observed variance of models retrained
on independent samples.
"""

import numpy as np
import pytest

from repro.core.statistics import ModelStatistics, StatisticsMethod, compute_statistics
from repro.data.dataset import Dataset
from repro.exceptions import StatisticsError
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.ppca import PPCASpec


@pytest.fixture(scope="module")
def fitted_logistic():
    rng = np.random.default_rng(10)
    X = rng.normal(size=(4000, 6))
    theta_true = rng.normal(size=6)
    y = (rng.uniform(size=4000) < 1 / (1 + np.exp(-X @ theta_true))).astype(int)
    data = Dataset(X, y)
    spec = LogisticRegressionSpec(regularization=1e-2)
    model = spec.fit(data)
    return spec, model, data


class TestMethodsAgree:
    def test_closed_form_vs_inverse_gradients(self, fitted_logistic):
        spec, model, data = fitted_logistic
        closed = compute_statistics(spec, model.theta, data, method="closed_form")
        inverse = compute_statistics(spec, model.theta, data, method="inverse_gradients")
        np.testing.assert_allclose(
            closed.covariance.dense(), inverse.covariance.dense(), rtol=1e-3, atol=1e-6
        )

    def test_observed_fisher_close_to_closed_form(self, fitted_logistic):
        spec, model, data = fitted_logistic
        closed = compute_statistics(spec, model.theta, data, method="closed_form")
        fisher = compute_statistics(spec, model.theta, data, method="observed_fisher")
        dense_closed = closed.covariance.dense()
        dense_fisher = fisher.covariance.dense()
        # Information-matrix equality holds asymptotically; with n = 4000
        # the two estimates agree to within ~20 % in Frobenius norm.
        relative_error = np.linalg.norm(dense_fisher - dense_closed) / np.linalg.norm(dense_closed)
        assert relative_error < 0.25

    def test_linear_regression_closed_form_known_value(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(2000, 4))
        y = X @ np.ones(4) + rng.normal(scale=0.3, size=2000)
        data = Dataset(X, y)
        beta = 0.05
        spec = LinearRegressionSpec(regularization=beta)
        model = spec.fit(data)
        stats = compute_statistics(spec, model.theta, data, method="closed_form")
        H = X.T @ X / 2000 + beta * np.eye(4)
        J = X.T @ X / 2000
        expected = np.linalg.inv(H) @ J @ np.linalg.inv(H)
        # ClosedForm for Lin uses the θ-independent Hessian: must match the
        # formula up to the difference between J and the residual-weighted
        # gradient covariance (exact here because H does not depend on θ).
        np.testing.assert_allclose(stats.covariance.dense(), expected, rtol=1e-8)


class TestMethodBehaviour:
    def test_observed_fisher_works_without_closed_form(self):
        rng = np.random.default_rng(12)
        X = rng.normal(size=(500, 8))
        data = Dataset(X - X.mean(axis=0))
        spec = PPCASpec(n_factors=2, sigma2=1.0)
        model = spec.fit(data, max_iterations=100)
        stats = compute_statistics(spec, model.theta, data, method="observed_fisher")
        assert stats.dimension == 16
        assert stats.covariance.rank <= 16

    def test_closed_form_rejected_without_hessian(self):
        rng = np.random.default_rng(13)
        data = Dataset(rng.normal(size=(100, 4)))
        spec = PPCASpec(n_factors=2)
        theta = spec.initial_parameters(data)
        with pytest.raises(StatisticsError):
            compute_statistics(spec, theta, data, method="closed_form")

    def test_method_accepts_enum_and_string(self, fitted_logistic):
        spec, model, data = fitted_logistic
        a = compute_statistics(spec, model.theta, data, method=StatisticsMethod.OBSERVED_FISHER)
        b = compute_statistics(spec, model.theta, data, method="observed_fisher")
        np.testing.assert_allclose(a.covariance.dense(), b.covariance.dense())

    def test_invalid_method_name(self, fitted_logistic):
        spec, model, data = fitted_logistic
        with pytest.raises(ValueError):
            compute_statistics(spec, model.theta, data, method="bootstrap")

    def test_metadata_fields(self, fitted_logistic):
        spec, model, data = fitted_logistic
        stats = compute_statistics(spec, model.theta, data)
        assert isinstance(stats, ModelStatistics)
        assert stats.sample_size == data.n_rows
        assert stats.computation_seconds >= 0.0
        assert stats.method is StatisticsMethod.OBSERVED_FISHER


class TestVarianceCalibration:
    def test_estimated_variance_matches_retraining_variance(self):
        """Theorem 1 calibration: α·diag(H⁻¹JH⁻¹) ≈ Var(θ̂_n) across samples.

        This is the reproduction of the Figure 9a sanity check at small
        scale: retrain the model on many independent samples of size n and
        compare the empirical parameter variance with the analytic estimate.
        """
        rng = np.random.default_rng(14)
        N = 40_000
        X = rng.normal(size=(N, 3))
        theta_true = np.array([1.0, -0.5, 0.25])
        y = X @ theta_true + rng.normal(scale=0.5, size=N)
        population = Dataset(X, y)
        # Pass the true noise variance so the Gaussian likelihood is well
        # specified and the information-matrix equality (which ObservedFisher
        # relies on) holds; see the LinearRegressionSpec docstring.
        spec = LinearRegressionSpec(regularization=1e-3, noise_variance=0.25)

        n = 2_000
        repetitions = 60
        estimates = []
        for i in range(repetitions):
            idx = rng.choice(N, size=n, replace=False)
            estimates.append(spec.fit(population.take(idx)).theta)
        empirical_variance = np.var(np.array(estimates), axis=0)

        sample = population.take(rng.choice(N, size=n, replace=False))
        model = spec.fit(sample)
        stats = compute_statistics(spec, model.theta, sample, method="observed_fisher")
        alpha = 1.0 / n - 1.0 / N
        predicted_variance = alpha * stats.covariance.marginal_variances()

        ratio = predicted_variance / empirical_variance
        assert np.all(ratio > 0.5)
        assert np.all(ratio < 2.0)
