"""Tests for the Poisson regression model class specification."""

import numpy as np
import pytest

from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.core.statistics import compute_statistics
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import bikeshare_like
from repro.exceptions import ModelSpecError
from repro.models.poisson_regression import PoissonRegressionSpec


@pytest.fixture(scope="module")
def count_data():
    rng = np.random.default_rng(7)
    X = rng.normal(scale=0.5, size=(1500, 5))
    theta_true = np.array([0.4, -0.3, 0.2, 0.0, 0.5])
    rates = np.exp(1.0 + X @ theta_true)
    y = rng.poisson(rates).astype(np.float64)
    # Include an intercept column so the base rate is learnable.
    X = np.hstack([np.ones((1500, 1)), X])
    return Dataset(X, y), np.concatenate([[1.0], theta_true])


class TestObjective:
    def test_gradient_matches_numerical(self, count_data, gradient_checker):
        data, _ = count_data
        spec = PoissonRegressionSpec(regularization=0.01)
        theta = np.full(6, 0.1)
        numerical = gradient_checker(lambda t: spec.loss(t, data), theta)
        np.testing.assert_allclose(spec.gradient(theta, data), numerical, atol=1e-4)

    def test_hessian_matches_numerical(self, count_data, gradient_checker):
        data, _ = count_data
        spec = PoissonRegressionSpec(regularization=0.05)
        theta = np.full(6, 0.1)
        H = spec.hessian(theta, data)
        for j in range(6):
            unit = np.zeros(6)
            unit[j] = 1.0
            numerical_col = gradient_checker(
                lambda t: float(spec.gradient(t, data) @ unit), theta
            )
            np.testing.assert_allclose(H[:, j], numerical_col, atol=1e-3)

    def test_per_example_gradients_average_to_gradient(self, count_data):
        data, _ = count_data
        spec = PoissonRegressionSpec(regularization=0.1)
        theta = np.full(6, 0.2)
        per_example = spec.per_example_gradients(theta, data)
        expected = per_example.mean(axis=0) + spec.regularizer_gradient(theta)
        np.testing.assert_allclose(spec.gradient(theta, data), expected)

    def test_loss_finite_for_extreme_parameters(self, count_data):
        data, _ = count_data
        spec = PoissonRegressionSpec()
        assert np.isfinite(spec.loss(np.full(6, 50.0), data))

    def test_rejects_negative_counts(self):
        spec = PoissonRegressionSpec()
        data = Dataset(np.ones((4, 2)), np.array([1.0, 2.0, -1.0, 0.0]))
        with pytest.raises(ModelSpecError):
            spec.loss(np.zeros(2), data)


class TestFitPredictDiff:
    def test_fit_recovers_true_parameters(self, count_data):
        data, theta_true = count_data
        spec = PoissonRegressionSpec(regularization=1e-6)
        model = spec.fit(data)
        np.testing.assert_allclose(model.theta, theta_true, atol=0.1)

    def test_predictions_are_positive_rates(self, count_data):
        data, _ = count_data
        spec = PoissonRegressionSpec()
        rates = spec.predict(np.full(6, 0.1), data.X)
        assert np.all(rates > 0)

    def test_difference_properties(self, count_data):
        data, _ = count_data
        spec = PoissonRegressionSpec()
        theta = np.full(6, 0.1)
        assert spec.prediction_difference(theta, theta, data) == 0.0
        other = np.full(6, 0.3)
        assert spec.prediction_difference(theta, other, data) > 0

    def test_statistics_methods_agree(self, count_data):
        data, theta_true = count_data
        spec = PoissonRegressionSpec(regularization=1e-2)
        model = spec.fit(data)
        closed = compute_statistics(spec, model.theta, data, method="closed_form")
        fisher = compute_statistics(spec, model.theta, data, method="observed_fisher")
        relative_error = np.linalg.norm(
            fisher.covariance.dense() - closed.covariance.dense()
        ) / np.linalg.norm(closed.covariance.dense())
        assert relative_error < 0.35


class TestEndToEnd:
    def test_blinkml_workflow_on_bikeshare_workload(self):
        data = bikeshare_like(n_rows=20_000, n_features=12, seed=70)
        splits = train_holdout_test_split(
            data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0)
        )
        spec = PoissonRegressionSpec(regularization=1e-3)
        trainer = BlinkML(spec, initial_sample_size=1_000, n_parameter_samples=48, seed=0)
        result = trainer.train(
            splits.train, splits.holdout, ApproximationContract(epsilon=0.05)
        )
        full = trainer.train_full(splits.train)
        difference = spec.prediction_difference(result.model.theta, full.theta, splits.holdout)
        assert difference <= 0.05 + 0.02
        assert result.sample_size <= splits.train.n_rows

    def test_bikeshare_generator_produces_counts(self):
        data = bikeshare_like(n_rows=500, n_features=10, seed=1)
        assert np.all(data.y >= 0)
        assert np.all(data.y == np.round(data.y))
        assert data.X.shape == (500, 10)
