"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticSpec,
    criteo_like,
    gas_like,
    higgs_like,
    make_dataset,
    mnist_like,
    power_like,
    yelp_like,
)
from repro.exceptions import DataError


class TestSpec:
    def test_valid_spec(self):
        spec = SyntheticSpec("gas_like", "regression", 100, 10)
        assert spec.n_rows == 100

    def test_invalid_task(self):
        with pytest.raises(DataError):
            SyntheticSpec("x", "ranking", 100, 10)

    def test_invalid_sizes(self):
        with pytest.raises(DataError):
            SyntheticSpec("x", "regression", 0, 10)


class TestRegressionGenerators:
    @pytest.mark.parametrize("generator", [gas_like, power_like])
    def test_shapes(self, generator):
        ds = generator(n_rows=500, n_features=20, seed=0)
        assert ds.X.shape == (500, 20)
        assert ds.y.shape == (500,)
        assert ds.metadata["task"] == "regression"

    def test_gas_signal_is_learnable(self):
        # A linear model should explain a substantial fraction of variance.
        ds = gas_like(n_rows=3000, n_features=10, noise=0.1, seed=1)
        theta, *_ = np.linalg.lstsq(ds.X, ds.y, rcond=None)
        residual = ds.y - ds.X @ theta
        assert np.var(residual) < 0.5 * np.var(ds.y)

    def test_reproducible(self):
        a = power_like(n_rows=100, n_features=8, seed=5)
        b = power_like(n_rows=100, n_features=8, seed=5)
        np.testing.assert_array_equal(a.X, b.X)


class TestBinaryGenerators:
    @pytest.mark.parametrize("generator", [criteo_like, higgs_like])
    def test_labels_are_binary(self, generator):
        ds = generator(n_rows=400, seed=0)
        assert set(np.unique(ds.y)) <= {0, 1}

    def test_criteo_sparsity(self):
        ds = criteo_like(n_rows=200, n_features=100, density=0.05, seed=0)
        nonzero_fraction = np.count_nonzero(ds.X) / ds.X.size
        assert nonzero_fraction < 0.1

    def test_criteo_class_balance(self):
        ds = criteo_like(n_rows=4000, n_features=50, class_balance=0.3, seed=0)
        positive_rate = ds.y.mean()
        assert 0.15 < positive_rate < 0.45

    def test_criteo_invalid_density(self):
        with pytest.raises(DataError):
            criteo_like(n_rows=10, n_features=10, density=0.0)

    def test_higgs_classes_are_separable_above_chance(self):
        ds = higgs_like(n_rows=3000, n_features=12, separation=2.0, seed=2)
        # Class-conditional means should differ on at least one feature.
        mean_gap = np.abs(
            ds.X[ds.y == 0].mean(axis=0) - ds.X[ds.y == 1].mean(axis=0)
        ).max()
        assert mean_gap > 0.1


class TestMulticlassGenerators:
    def test_mnist_like(self):
        ds = mnist_like(n_rows=300, n_features=36, n_classes=5, seed=0)
        assert ds.X.shape == (300, 36)
        assert set(np.unique(ds.y)) <= set(range(5))
        assert np.all(ds.X >= 0)  # pixel intensities are non-negative

    def test_mnist_needs_two_classes(self):
        with pytest.raises(DataError):
            mnist_like(n_rows=10, n_classes=1)

    def test_yelp_like_counts(self):
        ds = yelp_like(n_rows=100, n_features=50, n_classes=3, document_length=30, seed=0)
        # Bag-of-words rows are integer counts summing to the document length.
        np.testing.assert_array_equal(ds.X.sum(axis=1), np.full(100, 30))
        assert np.all(ds.X >= 0)


class TestFactory:
    def test_make_dataset_dispatch(self):
        ds = make_dataset("higgs_like", n_rows=100, seed=0, n_features=10)
        assert ds.name == "higgs_like"
        assert ds.n_rows == 100

    def test_unknown_name(self):
        with pytest.raises(DataError):
            make_dataset("imagenet", n_rows=10)
