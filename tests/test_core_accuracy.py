"""Tests for the Model Accuracy Estimator (Section 3)."""

import numpy as np
import pytest

from repro.core.accuracy import AccuracyEstimate, ModelAccuracyEstimator
from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import compute_statistics
from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.exceptions import ContractError
from repro.models.logistic_regression import LogisticRegressionSpec


@pytest.fixture(scope="module")
def logistic_setup():
    rng = np.random.default_rng(30)
    X = rng.normal(size=(30_000, 5))
    theta_true = np.array([1.5, -1.0, 0.5, 0.0, 2.0])
    y = (rng.uniform(size=30_000) < 1 / (1 + np.exp(-X @ theta_true))).astype(int)
    splits = train_holdout_test_split(
        Dataset(X, y), SplitSpec(0.1, 0.1), rng=np.random.default_rng(0)
    )
    spec = LogisticRegressionSpec(regularization=1e-3)
    return spec, splits


def estimate_for_sample_size(spec, splits, n, k=96, delta=0.05):
    rng = np.random.default_rng(7)
    idx = rng.choice(splits.train.n_rows, size=n, replace=False)
    sample = splits.train.take(idx)
    model = spec.fit(sample)
    stats = compute_statistics(spec, model.theta, sample)
    estimator = ModelAccuracyEstimator(spec, splits.holdout, n_parameter_samples=k)
    return estimator.estimate(
        model.theta, n=n, N=splits.train.n_rows, delta=delta, statistics=stats
    ), model


class TestEstimator:
    def test_estimate_fields(self, logistic_setup):
        spec, splits = logistic_setup
        estimate, _ = estimate_for_sample_size(spec, splits, 1000)
        assert isinstance(estimate, AccuracyEstimate)
        assert 0.0 <= estimate.epsilon <= 1.0
        assert estimate.estimated_accuracy == pytest.approx(1 - estimate.epsilon)
        assert estimate.sampled_differences.shape == (96,)
        assert estimate.estimation_seconds >= 0.0

    def test_epsilon_shrinks_with_sample_size(self, logistic_setup):
        spec, splits = logistic_setup
        small, _ = estimate_for_sample_size(spec, splits, 500)
        large, _ = estimate_for_sample_size(spec, splits, 8000)
        assert large.epsilon < small.epsilon

    def test_epsilon_zero_when_n_equals_N(self, logistic_setup):
        spec, splits = logistic_setup
        N = splits.train.n_rows
        model = spec.fit(splits.train)
        stats = compute_statistics(spec, model.theta, splits.train)
        estimator = ModelAccuracyEstimator(spec, splits.holdout, n_parameter_samples=16)
        estimate = estimator.estimate(model.theta, n=N, N=N, delta=0.05, statistics=stats)
        assert estimate.epsilon == 0.0

    def test_estimate_bound_holds_against_actual_full_model(self, logistic_setup):
        """The reported ε must (with margin) cover the true model difference."""
        spec, splits = logistic_setup
        estimate, approx_model = estimate_for_sample_size(spec, splits, 2000, k=128)
        full_model = spec.fit(splits.train)
        actual_difference = spec.prediction_difference(
            approx_model.theta, full_model.theta, splits.holdout
        )
        # The conservative bound should not be violated (this is the
        # guarantee Figure 6 validates statistically; a single draw failing
        # would be a 5%-probability event, so allow a small tolerance).
        assert actual_difference <= estimate.epsilon + 0.02

    def test_sampler_sharing(self, logistic_setup):
        spec, splits = logistic_setup
        rng = np.random.default_rng(9)
        idx = rng.choice(splits.train.n_rows, size=1500, replace=False)
        sample = splits.train.take(idx)
        model = spec.fit(sample)
        stats = compute_statistics(spec, model.theta, sample)
        shared_sampler = ParameterSampler(stats, rng=np.random.default_rng(1))
        estimator = ModelAccuracyEstimator(spec, splits.holdout, n_parameter_samples=32)
        a = estimator.estimate(
            model.theta, n=1500, N=splits.train.n_rows, delta=0.05,
            statistics=stats, sampler=shared_sampler,
        )
        b = estimator.estimate(
            model.theta, n=1500, N=splits.train.n_rows, delta=0.05,
            statistics=stats, sampler=shared_sampler,
        )
        # The shared sampler caches its base draws, so repeated estimates
        # are deterministic.
        np.testing.assert_allclose(a.sampled_differences, b.sampled_differences)

    def test_rejects_too_few_samples(self, logistic_setup):
        spec, splits = logistic_setup
        with pytest.raises(ContractError):
            ModelAccuracyEstimator(spec, splits.holdout, n_parameter_samples=1)
