"""Property tests for the streaming sharded holdout engine.

The acceptance bar for the streaming refactor: sharded accumulation must
agree with the materialised batched diff path within 1e-12 for all five
model families and arbitrary block sizes, serial or thread-fanned.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import Dataset
from repro.data.synthetic import gas_like, higgs_like, mnist_like
from repro.evaluation.streaming import (
    StreamingConfig,
    iter_holdout_blocks,
    streaming_pairwise_prediction_differences,
    streaming_prediction_differences,
)
from repro.exceptions import DataError, ModelSpecError
from repro.models.base import (
    BlockSumDiffAccumulator,
    ModelClassSpec,
    PrecomputedDiffAccumulator,
)
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.poisson_regression import PoissonRegressionSpec
from repro.models.ppca import PPCASpec

N_ROWS = 700
K = 6


def _family(name):
    """(spec, holdout, n_parameters) for one of the five model families."""
    if name == "lin":
        data = gas_like(n_rows=N_ROWS, n_features=8, seed=21)
        return LinearRegressionSpec(), data, 8
    if name == "lr":
        data = higgs_like(n_rows=N_ROWS, n_features=8, seed=22)
        return LogisticRegressionSpec(), data, 8
    if name == "me":
        data = mnist_like(n_rows=N_ROWS, n_features=6, n_classes=3, seed=23)
        spec = MaxEntropySpec(n_classes=3)
        spec.n_parameters(data)
        return spec, data, 18
    if name == "poisson":
        base = gas_like(n_rows=N_ROWS, n_features=8, seed=24)
        counts = np.abs(np.round(base.y - base.y.min())).astype(np.float64)
        return PoissonRegressionSpec(), Dataset(base.X, counts), 8
    if name == "ppca":
        base = mnist_like(n_rows=N_ROWS, n_features=10, n_classes=3, seed=25)
        return PPCASpec(n_factors=2), Dataset(base.X - base.X.mean(axis=0), None), 20
    raise KeyError(name)


FAMILIES = ("lin", "lr", "me", "poisson", "ppca")
_CACHE = {name: _family(name) for name in FAMILIES}


def _parameter_batches(p, seed):
    rng = np.random.default_rng(seed)
    theta_ref = 0.1 * rng.normal(size=p)
    Thetas = theta_ref[None, :] + 0.05 * rng.normal(size=(K, p))
    Thetas_b = theta_ref[None, :] + 0.05 * rng.normal(size=(K, p))
    return theta_ref, Thetas, Thetas_b


class TestStreamingMatchesMaterialised:
    @pytest.mark.parametrize("family", FAMILIES)
    @settings(max_examples=12, deadline=None)
    @given(
        block_rows=st.integers(min_value=1, max_value=2 * N_ROWS),
        n_workers=st.sampled_from([0, 2, 5]),
    )
    def test_reference_diffs_agree(self, family, block_rows, n_workers):
        spec, holdout, p = _CACHE[family]
        theta_ref, Thetas, _ = _parameter_batches(p, seed=31)
        expected = spec.prediction_differences(theta_ref, Thetas, holdout)
        streamed = streaming_prediction_differences(
            spec, theta_ref, Thetas, holdout,
            config=StreamingConfig(block_rows=block_rows, n_workers=n_workers),
        )
        np.testing.assert_allclose(streamed, expected, atol=1e-12)

    @pytest.mark.parametrize("family", FAMILIES)
    @settings(max_examples=12, deadline=None)
    @given(
        block_rows=st.integers(min_value=1, max_value=2 * N_ROWS),
        n_workers=st.sampled_from([0, 3]),
    )
    def test_pairwise_diffs_agree(self, family, block_rows, n_workers):
        spec, holdout, p = _CACHE[family]
        _, Thetas, Thetas_b = _parameter_batches(p, seed=32)
        expected = spec.pairwise_prediction_differences(Thetas, Thetas_b, holdout)
        streamed = streaming_pairwise_prediction_differences(
            spec, Thetas, Thetas_b, holdout,
            config=StreamingConfig(block_rows=block_rows, n_workers=n_workers),
        )
        np.testing.assert_allclose(streamed, expected, atol=1e-12)

    def test_classification_counts_are_bitwise_exact(self):
        # Disagreement metrics accumulate integer counts, so sharding cannot
        # change the result at all, not just within tolerance.
        spec, holdout, p = _CACHE["lr"]
        theta_ref, Thetas, _ = _parameter_batches(p, seed=33)
        expected = spec.prediction_differences(theta_ref, Thetas, holdout)
        for block_rows in (1, 7, 64, 1000):
            streamed = streaming_prediction_differences(
                spec, theta_ref, Thetas, holdout,
                config=StreamingConfig(block_rows=block_rows),
            )
            assert np.array_equal(streamed, expected)


class TestGenericFallback:
    def test_custom_spec_without_overrides_still_works(self):
        # A custom ModelClassSpec that only implements the scalar interface
        # gets the materialised fallback accumulator: correct results, no
        # memory bound.
        class LoopOnlySpec(LinearRegressionSpec):
            diff_accumulator = ModelClassSpec.diff_accumulator
            pairwise_diff_accumulator = ModelClassSpec.pairwise_diff_accumulator

        spec, holdout, p = _CACHE["lin"]
        loop_spec = LoopOnlySpec()
        theta_ref, Thetas, Thetas_b = _parameter_batches(p, seed=34)
        np.testing.assert_allclose(
            streaming_prediction_differences(
                loop_spec, theta_ref, Thetas, holdout,
                config=StreamingConfig(block_rows=13, n_workers=2),
            ),
            spec.prediction_differences(theta_ref, Thetas, holdout),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            streaming_pairwise_prediction_differences(
                loop_spec, Thetas, Thetas_b, holdout,
                config=StreamingConfig(block_rows=13),
            ),
            spec.pairwise_prediction_differences(Thetas, Thetas_b, holdout),
            atol=1e-12,
        )


class TestMetricsRouting:
    def test_model_agreements_streaming_option_matches_default(self):
        from repro.evaluation.metrics import model_agreements

        spec, holdout, p = _CACHE["lr"]
        theta_ref, Thetas, _ = _parameter_batches(p, seed=38)
        default = model_agreements(spec, Thetas, theta_ref, holdout)
        streamed = model_agreements(
            spec, Thetas, theta_ref, holdout,
            streaming=StreamingConfig(block_rows=50),
        )
        np.testing.assert_allclose(streamed, default, atol=1e-12)


class TestBlocks:
    def test_blocks_cover_the_holdout_in_order(self):
        _, holdout, _ = _CACHE["lr"]
        blocks = list(iter_holdout_blocks(holdout, 64))
        assert sum(block.n_rows for block in blocks) == holdout.n_rows
        np.testing.assert_array_equal(
            np.vstack([block.X for block in blocks]), holdout.X
        )
        np.testing.assert_array_equal(
            np.concatenate([block.y for block in blocks]), holdout.y
        )

    def test_blocks_are_zero_copy_views(self):
        _, holdout, _ = _CACHE["lr"]
        block = next(iter_holdout_blocks(holdout, 64))
        assert np.shares_memory(block.X, holdout.X)
        assert np.shares_memory(block.y, holdout.y)

    def test_invalid_config_rejected(self):
        with pytest.raises(DataError):
            StreamingConfig(block_rows=0)
        with pytest.raises(DataError):
            StreamingConfig(n_workers=-1)


class TestAccumulatorProtocol:
    def test_block_sum_merge_equals_single_pass(self):
        spec, holdout, p = _CACHE["lin"]
        theta_ref, Thetas, _ = _parameter_batches(p, seed=35)
        blocks = list(iter_holdout_blocks(holdout, 100))
        single = spec.diff_accumulator(theta_ref, Thetas, holdout)
        for block in blocks:
            single.update(block)
        left = spec.diff_accumulator(theta_ref, Thetas, holdout)
        right = spec.diff_accumulator(theta_ref, Thetas, holdout)
        for block in blocks[:3]:
            left.update(block)
        for block in blocks[3:]:
            right.update(block)
        left.merge(right)
        np.testing.assert_allclose(left.finalize(), single.finalize(), atol=1e-15)

    def test_block_sum_rejects_foreign_merge_and_empty_finalize(self):
        spec, holdout, p = _CACHE["lin"]
        theta_ref, Thetas, _ = _parameter_batches(p, seed=36)
        accumulator = spec.diff_accumulator(theta_ref, Thetas, holdout)
        with pytest.raises(ModelSpecError):
            accumulator.merge(PrecomputedDiffAccumulator(np.zeros(K)))
        with pytest.raises(ModelSpecError):
            accumulator.finalize()

    def test_ppca_accumulator_skips_blocks(self):
        spec, holdout, p = _CACHE["ppca"]
        theta_ref, Thetas, _ = _parameter_batches(p, seed=37)
        accumulator = spec.diff_accumulator(theta_ref, Thetas, holdout)
        assert accumulator.needs_holdout_blocks is False
        np.testing.assert_allclose(
            accumulator.finalize(),
            spec.prediction_differences(theta_ref, Thetas, holdout),
            atol=1e-15,
        )

    def test_block_sum_requires_candidates(self):
        with pytest.raises(ModelSpecError):
            BlockSumDiffAccumulator(0, lambda block: 0, lambda sums, rows: sums)


class TestExecutorBackends:
    """The threads | processes executor abstraction over block fan-out."""

    def test_unknown_backend_rejected(self):
        with pytest.raises(DataError):
            StreamingConfig(backend="gpu")

    @pytest.mark.parametrize("family", ["lr", "lin"])
    def test_process_backend_matches_serial_on_in_memory_data(self, family):
        spec, holdout, p = _CACHE[family]
        theta_ref, Thetas, Thetas_b = _parameter_batches(p, seed=40)
        serial = streaming_prediction_differences(
            spec, theta_ref, Thetas, holdout, config=StreamingConfig(block_rows=100)
        )
        processed = streaming_prediction_differences(
            spec, theta_ref, Thetas, holdout,
            config=StreamingConfig(block_rows=100, n_workers=2, backend="processes"),
        )
        np.testing.assert_allclose(processed, serial, atol=1e-12)
        serial_pair = streaming_pairwise_prediction_differences(
            spec, Thetas, Thetas_b, holdout, config=StreamingConfig(block_rows=100)
        )
        processed_pair = streaming_pairwise_prediction_differences(
            spec, Thetas, Thetas_b, holdout,
            config=StreamingConfig(block_rows=100, n_workers=2, backend="processes"),
        )
        np.testing.assert_allclose(processed_pair, serial_pair, atol=1e-12)

    def test_process_backend_bitwise_for_classification(self):
        spec, holdout, p = _CACHE["lr"]
        theta_ref, Thetas, _ = _parameter_batches(p, seed=41)
        serial = streaming_prediction_differences(
            spec, theta_ref, Thetas, holdout, config=StreamingConfig(block_rows=64)
        )
        processed = streaming_prediction_differences(
            spec, theta_ref, Thetas, holdout,
            config=StreamingConfig(block_rows=64, n_workers=3, backend="processes"),
        )
        assert np.array_equal(processed, serial)
