"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import DataError


def make_dataset(n=10, d=3, labelled=True):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(n, d))
    y = rng.integers(0, 2, size=n) if labelled else None
    return Dataset(X, y, name="toy")


class TestConstruction:
    def test_shapes_and_properties(self):
        ds = make_dataset(12, 4)
        assert ds.n_rows == 12
        assert ds.n_features == 4
        assert len(ds) == 12
        assert ds.is_supervised

    def test_unsupervised(self):
        ds = make_dataset(labelled=False)
        assert not ds.is_supervised

    def test_rejects_1d_features(self):
        with pytest.raises(DataError):
            Dataset(np.zeros(5), np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((0, 3)))

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((5, 2)), np.zeros(4))

    def test_rejects_2d_labels(self):
        with pytest.raises(DataError):
            Dataset(np.zeros((5, 2)), np.zeros((5, 1)))

    def test_casts_features_to_float64(self):
        ds = Dataset(np.ones((3, 2), dtype=np.int32), np.zeros(3))
        assert ds.X.dtype == np.float64


class TestTake:
    def test_take_preserves_rows(self):
        ds = make_dataset(10, 3)
        subset = ds.take(np.array([1, 3, 5]))
        assert subset.n_rows == 3
        np.testing.assert_array_equal(subset.X, ds.X[[1, 3, 5]])
        np.testing.assert_array_equal(subset.y, ds.y[[1, 3, 5]])

    def test_take_empty_raises(self):
        with pytest.raises(DataError):
            make_dataset().take(np.array([], dtype=int))

    def test_take_out_of_range_raises(self):
        with pytest.raises(DataError):
            make_dataset(5).take(np.array([10]))

    def test_head(self):
        ds = make_dataset(10)
        assert ds.head(3).n_rows == 3
        assert ds.head(100).n_rows == 10

    def test_head_zero_raises(self):
        with pytest.raises(DataError):
            make_dataset().head(0)


class TestFeatureSelection:
    def test_select_features(self):
        ds = make_dataset(8, 5)
        view = ds.select_features(np.array([0, 2]))
        assert view.n_features == 2
        np.testing.assert_array_equal(view.X, ds.X[:, [0, 2]])

    def test_select_empty_raises(self):
        with pytest.raises(DataError):
            make_dataset().select_features(np.array([], dtype=int))

    def test_select_out_of_range_raises(self):
        with pytest.raises(DataError):
            make_dataset(5, 3).select_features(np.array([3]))


class TestConcatAndTransforms:
    def test_concat(self):
        a, b = make_dataset(4), make_dataset(6)
        combined = a.concat(b)
        assert combined.n_rows == 10

    def test_concat_schema_mismatch(self):
        with pytest.raises(DataError):
            make_dataset(4, 3).concat(make_dataset(4, 5))

    def test_concat_supervision_mismatch(self):
        with pytest.raises(DataError):
            make_dataset(4).concat(make_dataset(4, labelled=False))

    def test_standardized(self):
        ds = make_dataset(200, 4)
        standardized = ds.standardized()
        np.testing.assert_allclose(standardized.X.mean(axis=0), 0, atol=1e-10)
        np.testing.assert_allclose(standardized.X.std(axis=0), 1, atol=1e-10)

    def test_standardized_constant_column(self):
        X = np.ones((10, 2))
        ds = Dataset(X, np.zeros(10))
        standardized = ds.standardized()
        assert np.all(np.isfinite(standardized.X))

    def test_with_name(self):
        assert make_dataset().with_name("renamed").name == "renamed"

    def test_class_labels(self):
        ds = Dataset(np.zeros((4, 2)), np.array([2, 0, 2, 1]))
        np.testing.assert_array_equal(ds.class_labels(), [0, 1, 2])

    def test_class_labels_unsupervised_raises(self):
        with pytest.raises(DataError):
            make_dataset(labelled=False).class_labels()


class TestContentDigest:
    def test_equal_contents_equal_digest(self):
        a = make_dataset(n=20, d=4)
        b = make_dataset(n=20, d=4)
        assert a is not b
        assert a.content_digest() == b.content_digest()

    def test_name_and_metadata_do_not_affect_digest(self):
        ds = make_dataset()
        assert ds.content_digest() == ds.with_name("renamed").content_digest()

    def test_any_value_change_changes_digest(self):
        base = make_dataset(n=20, d=4)
        changed_X = base.X.copy()
        changed_X[7, 2] += 1e-9
        assert Dataset(changed_X, base.y).content_digest() != base.content_digest()
        changed_y = np.asarray(base.y).copy()
        changed_y[0] += 1
        assert Dataset(base.X, changed_y).content_digest() != base.content_digest()

    def test_shape_and_supervision_affect_digest(self):
        supervised = make_dataset(n=12, d=3)
        unsupervised = Dataset(supervised.X, None)
        assert supervised.content_digest() != unsupervised.content_digest()
        assert (
            supervised.head(6).content_digest() != supervised.content_digest()
        )

    def test_digest_is_memoised_and_stable(self):
        ds = make_dataset()
        first = ds.content_digest()
        assert ds.content_digest() is first  # memoised string, not recomputed
        assert isinstance(first, str) and len(first) == 32

    def test_noncontiguous_view_matches_contiguous_copy(self):
        X = np.arange(48, dtype=np.float64).reshape(8, 6)
        view = Dataset(X[:, ::2], np.zeros(8))
        copy = Dataset(np.ascontiguousarray(X[:, ::2]), np.zeros(8))
        assert view.content_digest() == copy.content_digest()

    def test_arrays_are_frozen_so_digest_cannot_go_stale(self):
        ds = make_dataset()
        digest = ds.content_digest()
        with pytest.raises(ValueError):
            ds.X[0, 0] = 99.0
        with pytest.raises(ValueError):
            ds.y[0] = 99
        assert ds.content_digest() == digest
