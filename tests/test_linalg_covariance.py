"""Tests for the factored covariance H^-1 J H^-1.

These tests pin down the central numerical identity of the paper: the
SVD-based factor built from per-example gradients must agree with the dense
H^-1 J H^-1 computed explicitly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StatisticsError
from repro.linalg.covariance import FactoredCovariance


def dense_reference(Q: np.ndarray, beta: float) -> np.ndarray:
    """Direct computation of H^-1 J H^-1 from per-example gradients."""
    n, d = Q.shape
    J = Q.T @ Q / n
    H = J + beta * np.eye(d)
    H_inv = np.linalg.inv(H)
    return H_inv @ J @ H_inv


class TestFromPerExampleGradients:
    @pytest.mark.parametrize("beta", [1e-3, 1e-1, 1.0])
    def test_matches_dense_reference(self, beta):
        rng = np.random.default_rng(0)
        Q = rng.normal(size=(300, 8))
        factor = FactoredCovariance.from_per_example_gradients(Q, regularization=beta)
        np.testing.assert_allclose(factor.dense(), dense_reference(Q, beta), atol=1e-8)

    def test_zero_regularization_uses_pseudo_inverse_of_J(self):
        rng = np.random.default_rng(1)
        Q = rng.normal(size=(200, 5))
        factor = FactoredCovariance.from_per_example_gradients(Q, regularization=0.0)
        J = Q.T @ Q / 200
        np.testing.assert_allclose(factor.dense(), np.linalg.inv(J), atol=1e-7)

    def test_rank_deficient_gradients(self):
        # Gradients living in a 3-dimensional subspace of a 6-dimensional
        # parameter space: the factor's rank must not exceed 3.
        rng = np.random.default_rng(2)
        basis = rng.normal(size=(3, 6))
        Q = rng.normal(size=(100, 3)) @ basis
        factor = FactoredCovariance.from_per_example_gradients(Q, regularization=0.01)
        assert factor.rank <= 3

    def test_requires_2d(self):
        with pytest.raises(StatisticsError):
            FactoredCovariance.from_per_example_gradients(np.zeros(5))

    def test_requires_two_rows(self):
        with pytest.raises(StatisticsError):
            FactoredCovariance.from_per_example_gradients(np.ones((1, 3)))

    def test_requires_nonzero_variance(self):
        with pytest.raises(StatisticsError):
            FactoredCovariance.from_per_example_gradients(np.zeros((10, 3)))

    def test_negative_regularization_rejected(self):
        with pytest.raises(StatisticsError):
            FactoredCovariance.from_per_example_gradients(np.ones((5, 2)), regularization=-1.0)


class TestFromDense:
    def test_matches_explicit_computation(self):
        rng = np.random.default_rng(3)
        A = rng.normal(size=(6, 6))
        J = A @ A.T / 6
        H = J + 0.05 * np.eye(6)
        factor = FactoredCovariance.from_dense(H, J, regularization=0.05)
        expected = np.linalg.inv(H) @ J @ np.linalg.inv(H)
        np.testing.assert_allclose(factor.dense(), expected, atol=1e-8)

    def test_agrees_with_gradient_construction(self):
        rng = np.random.default_rng(4)
        Q = rng.normal(size=(400, 7))
        beta = 0.01
        J = Q.T @ Q / 400
        H = J + beta * np.eye(7)
        from_dense = FactoredCovariance.from_dense(H, J, regularization=beta)
        from_grads = FactoredCovariance.from_per_example_gradients(Q, regularization=beta)
        np.testing.assert_allclose(from_dense.dense(), from_grads.dense(), atol=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(StatisticsError):
            FactoredCovariance.from_dense(np.eye(3), np.eye(4))

    def test_singular_hessian(self):
        with pytest.raises(StatisticsError):
            FactoredCovariance.from_dense(np.zeros((3, 3)), np.eye(3))


class TestApplyAndDiagnostics:
    def test_apply_matches_dense_transform(self):
        rng = np.random.default_rng(5)
        Q = rng.normal(size=(100, 4))
        factor = FactoredCovariance.from_per_example_gradients(Q, regularization=0.1)
        z = rng.normal(size=(20, factor.rank))
        np.testing.assert_allclose(factor.apply(z), z @ factor.transform.T)

    def test_apply_rejects_wrong_rank(self):
        rng = np.random.default_rng(6)
        factor = FactoredCovariance.from_per_example_gradients(
            rng.normal(size=(50, 4)), regularization=0.1
        )
        with pytest.raises(StatisticsError):
            factor.apply(np.zeros((3, factor.rank + 1)))

    def test_marginal_variances_match_dense_diagonal(self):
        rng = np.random.default_rng(7)
        factor = FactoredCovariance.from_per_example_gradients(
            rng.normal(size=(150, 6)), regularization=0.2
        )
        np.testing.assert_allclose(
            factor.marginal_variances(), np.diag(factor.dense()), atol=1e-10
        )

    def test_scaled(self):
        rng = np.random.default_rng(8)
        factor = FactoredCovariance.from_per_example_gradients(
            rng.normal(size=(80, 3)), regularization=0.5
        )
        np.testing.assert_allclose(factor.scaled(0.25), 0.25 * factor.dense())
        with pytest.raises(StatisticsError):
            factor.scaled(-1.0)

    def test_sampled_covariance_matches_factor(self):
        # L z with z ~ N(0, I) must reproduce the covariance empirically.
        rng = np.random.default_rng(9)
        Q = rng.normal(size=(500, 3))
        factor = FactoredCovariance.from_per_example_gradients(Q, regularization=0.3)
        z = rng.standard_normal(size=(60_000, factor.rank))
        samples = factor.apply(z)
        empirical = samples.T @ samples / samples.shape[0]
        np.testing.assert_allclose(empirical, factor.dense(), atol=0.05)


class TestLambdaProperty:
    @given(
        s=st.lists(st.floats(0.05, 10.0), min_size=1, max_size=6),
        beta=st.floats(0.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_lambda_formula(self, s, beta):
        s = np.sort(np.array(s))[::-1]
        lam = FactoredCovariance._lambda_from_singular_values(s, beta)
        if beta == 0.0:
            np.testing.assert_allclose(lam, 1.0 / s)
        else:
            np.testing.assert_allclose(lam, s / (s**2 + beta))
        # The covariance eigenvalues lam^2 must never exceed 1/(4 beta) for
        # beta > 0 (the maximum of s^2/(s^2+beta)^2 over s).
        if beta > 0:
            assert np.all(lam**2 <= 1.0 / (4 * beta) + 1e-12)
