"""Unit tests for train/holdout/test splitting."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.exceptions import DataError


def make_dataset(n=100):
    rng = np.random.default_rng(1)
    return Dataset(rng.normal(size=(n, 3)), rng.integers(0, 2, size=n))


class TestSplitSpec:
    def test_defaults(self):
        spec = SplitSpec()
        assert 0 < spec.holdout_fraction < 1
        assert 0 < spec.test_fraction < 1
        assert spec.train_fraction > 0

    def test_negative_fraction_rejected(self):
        with pytest.raises(DataError):
            SplitSpec(holdout_fraction=-0.1)

    def test_fractions_must_leave_training_data(self):
        with pytest.raises(DataError):
            SplitSpec(holdout_fraction=0.6, test_fraction=0.5)


class TestSplit:
    def test_sizes_add_up(self):
        splits = train_holdout_test_split(
            make_dataset(200), SplitSpec(0.1, 0.2), rng=np.random.default_rng(0)
        )
        assert splits.train.n_rows + splits.holdout.n_rows + splits.test.n_rows == 200
        assert splits.holdout.n_rows == 20
        assert splits.test.n_rows == 40

    def test_disjoint(self):
        data = make_dataset(300)
        # Tag each row with a unique value so overlap is detectable.
        data = Dataset(np.arange(300, dtype=float).reshape(-1, 1), data.y)
        splits = train_holdout_test_split(data, SplitSpec(0.2, 0.2), rng=np.random.default_rng(0))
        train_ids = set(splits.train.X[:, 0])
        holdout_ids = set(splits.holdout.X[:, 0])
        test_ids = set(splits.test.X[:, 0])
        assert not train_ids & holdout_ids
        assert not train_ids & test_ids
        assert not holdout_ids & test_ids

    def test_reproducible_given_seeded_rng(self):
        data = make_dataset(150)
        a = train_holdout_test_split(data, rng=np.random.default_rng(5))
        b = train_holdout_test_split(data, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.train.X, b.train.X)
        np.testing.assert_array_equal(a.holdout.X, b.holdout.X)

    def test_too_small_dataset_raises(self):
        with pytest.raises(DataError):
            train_holdout_test_split(make_dataset(2), SplitSpec(0.4, 0.4))

    def test_names_carry_split_suffix(self):
        splits = train_holdout_test_split(make_dataset(100), rng=np.random.default_rng(0))
        assert splits.train.name.endswith("/train")
        assert splits.holdout.name.endswith("/holdout")
        assert splits.test.name.endswith("/test")
