"""Tests for the metrics registry, snapshots and exporters (repro.obs).

Everything here is deterministic: histograms are fed exact values against
the fixed log-spaced bucket ladder, snapshot merges are checked for
associativity on hand-built operands, and the Prometheus renderer is
asserted byte-for-byte (escaping, label ordering, cumulative buckets).
"""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    load_json_snapshot,
    render_json,
    render_prometheus,
    write_json_snapshot,
)
from repro.obs.export import snapshot_from_dict, snapshot_to_dict


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.", ("kind",))
        counter.inc(1, kind="answer")
        counter.inc(2, kind="train")
        counter.inc(1, kind="answer")
        assert counter.value(kind="answer") == 2
        assert counter.value(kind="train") == 2
        assert counter.total() == 4

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total", "Ticks.")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_undeclared_label_rejected(self):
        registry = MetricsRegistry()
        counter = registry.counter("ticks_total", "Ticks.", ("scope",))
        with pytest.raises(ObservabilityError):
            counter.inc(1, session="x")
        with pytest.raises(ObservabilityError):
            counter.inc(1)  # missing the declared label

    def test_get_or_create_conflicting_kind(self):
        registry = MetricsRegistry()
        registry.counter("thing_total", "Thing.")
        with pytest.raises(ObservabilityError):
            registry.gauge("thing_total", "Thing.")
        with pytest.raises(ObservabilityError):
            registry.counter("thing_total", "Thing.", ("extra",))

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.counter("bad-name", "Dashes are not prometheus names.")

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value() == 5


# ----------------------------------------------------------------------
# Histograms: exact bucket placement against the fixed ladder
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_placement_inclusive_upper(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "Latency.")
        # Exactly on a bound counts into that bound's bucket (le is
        # inclusive, prometheus semantics).
        histogram.observe(LATENCY_BUCKETS[0])
        histogram.observe(LATENCY_BUCKETS[0] / 2)
        histogram.observe(LATENCY_BUCKETS[3])
        histogram.observe(1e9)  # +Inf overflow slot
        snap = registry.snapshot().get("lat_seconds")
        series = snap.histogram_series[0]
        assert series.counts[0] == 2
        assert series.counts[3] == 1
        assert series.counts[-1] == 1  # overflow
        assert series.count == 4
        assert series.total == pytest.approx(
            LATENCY_BUCKETS[0] * 1.5 + LATENCY_BUCKETS[3] + 1e9
        )

    def test_custom_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            registry.histogram("h", "H.", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("h2", "H.", buckets=())


# ----------------------------------------------------------------------
# Snapshots: merge algebra and pickling
# ----------------------------------------------------------------------
def build_registry(scale: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("passes_total", "Passes.", ("scope",))
    counter.inc(2 * scale, scope="accuracy")
    counter.inc(3 * scale, scope="size-search")
    gauge = registry.gauge("bytes", "Bytes.")
    gauge.set(10 * scale)
    histogram = registry.histogram("secs", "Secs.", buckets=(0.1, 1.0))
    # Binary-exact values so merge totals are exactly associative.
    for _ in range(scale):
        histogram.observe(0.0625)
        histogram.observe(4.0)
    return registry


class TestSnapshotMerge:
    def test_merge_sums_counters_and_buckets(self):
        merged = build_registry(1).snapshot().merge(build_registry(2).snapshot())
        assert merged.value("passes_total", scope="accuracy") == 6
        assert merged.total("passes_total") == 15
        # Gauges sum too (the caller decides whether summing makes sense;
        # shard roll-ups of additive gauges do).
        assert merged.value("bytes") == 30
        hist = merged.get("secs").histogram_series[0]
        assert hist.counts == (3, 0, 3)
        assert hist.count == 6

    def test_merge_is_associative(self):
        a, b, c = (build_registry(k).snapshot() for k in (1, 2, 3))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left == right
        assert render_prometheus(left) == render_prometheus(right)

    def test_merge_disjoint_instruments_unions(self):
        registry_a = MetricsRegistry()
        registry_a.counter("only_a_total", "A.").inc(1)
        registry_b = MetricsRegistry()
        registry_b.counter("only_b_total", "B.").inc(2)
        merged = registry_a.snapshot().merge(registry_b.snapshot())
        assert merged.value("only_a_total") == 1
        assert merged.value("only_b_total") == 2

    def test_incompatible_schemas_rejected(self):
        registry_a = MetricsRegistry()
        registry_a.counter("x_total", "X.", ("scope",))
        registry_b = MetricsRegistry()
        registry_b.counter("x_total", "X.", ("session",))
        with pytest.raises(ObservabilityError):
            registry_a.snapshot().merge(registry_b.snapshot())

    def test_snapshot_pickles(self):
        snapshot = build_registry(2).snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot
        assert render_prometheus(clone) == render_prometheus(snapshot)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
class TestPrometheusRendering:
    def test_counter_rendering_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total", "Requests served.", ("kind",))
        counter.inc(3, kind="train")
        counter.inc(1, kind="answer")
        assert render_prometheus(registry.snapshot()) == (
            "# HELP reqs_total Requests served.\n"
            "# TYPE reqs_total counter\n"
            'reqs_total{kind="answer"} 1\n'
            'reqs_total{kind="train"} 3\n'
        )

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "G.", ("path",))
        gauge.set(1, path='a\\b"c\nd')
        rendered = render_prometheus(registry.snapshot())
        assert 'path="a\\\\b\\"c\\nd"' in rendered

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "H.", buckets=(0.5, 1.0))
        histogram.observe(0.2)
        histogram.observe(0.7)
        histogram.observe(9.0)
        rendered = render_prometheus(registry.snapshot())
        assert 'h_seconds_bucket{le="0.5"} 1' in rendered
        assert 'h_seconds_bucket{le="1"} 2' in rendered
        assert 'h_seconds_bucket{le="+Inf"} 3' in rendered
        assert "h_seconds_count 3" in rendered
        assert "h_seconds_sum 9.9" in rendered

    def test_series_order_deterministic(self):
        first = MetricsRegistry()
        c1 = first.counter("c_total", "C.", ("x",))
        c1.inc(1, x="b")
        c1.inc(1, x="a")
        second = MetricsRegistry()
        c2 = second.counter("c_total", "C.", ("x",))
        c2.inc(1, x="a")
        c2.inc(1, x="b")
        assert render_prometheus(first.snapshot()) == render_prometheus(
            second.snapshot()
        )


# ----------------------------------------------------------------------
# JSON round trip
# ----------------------------------------------------------------------
class TestJsonRoundTrip:
    def test_round_trip_is_lossless(self, tmp_path):
        snapshot = build_registry(3).snapshot()
        path = tmp_path / "metrics.json"
        write_json_snapshot(snapshot, path)
        restored = load_json_snapshot(path)
        assert restored == snapshot
        assert render_json(restored) == render_json(snapshot)

    def test_unknown_version_rejected(self):
        payload = snapshot_to_dict(build_registry(1).snapshot())
        payload["version"] = 99
        with pytest.raises(ObservabilityError):
            snapshot_from_dict(payload)

    def test_dump_command_rerenders_snapshot(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        snapshot = build_registry(1).snapshot()
        path = tmp_path / "run.json"
        write_json_snapshot(snapshot, path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert out == render_prometheus(snapshot)
        assert main([str(path), "--format", "json"]) == 0
        assert capsys.readouterr().out == render_json(snapshot) + "\n"

    def test_dump_command_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("[]")
        assert main_exit_code(str(path)) == 1

    def test_collectors_run_on_snapshot(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("collected", "Set by a collector.")
        registry.add_collector(lambda: gauge.set(42))
        assert registry.snapshot().value("collected") == 42
        # run_collectors=False skips them (gauge keeps its last value).
        gauge.set(0)
        assert registry.snapshot(run_collectors=False).value("collected") == 0


def main_exit_code(*argv: str) -> int:
    from repro.obs.__main__ import main

    return main(list(argv))
