"""Tests for the Armijo and strong-Wolfe line searches."""

import numpy as np

from repro.optim.base import FunctionObjective
from repro.optim.line_search import backtracking_line_search, wolfe_line_search


def quadratic_objective(center=None, scale=1.0):
    center = np.zeros(2) if center is None else np.asarray(center, dtype=float)

    def value(theta):
        diff = theta - center
        return 0.5 * scale * float(diff @ diff)

    def gradient(theta):
        return scale * (theta - center)

    return FunctionObjective(value, gradient)


class TestBacktracking:
    def test_sufficient_decrease(self):
        objective = quadratic_objective()
        theta = np.array([4.0, -2.0])
        value, gradient = objective.value_and_gradient(theta)
        result = backtracking_line_search(objective, theta, -gradient, value, gradient)
        assert result.success
        assert result.value < value

    def test_tiny_initial_step_still_succeeds(self):
        objective = quadratic_objective()
        theta = np.array([1.0, 1.0])
        value, gradient = objective.value_and_gradient(theta)
        result = backtracking_line_search(
            objective, theta, -gradient, value, gradient, initial_step=1e-4
        )
        assert result.success

    def test_non_descent_direction_fails(self):
        objective = quadratic_objective()
        theta = np.array([1.0, 0.0])
        value, gradient = objective.value_and_gradient(theta)
        # Ascent direction: sufficient decrease can never hold.
        result = backtracking_line_search(objective, theta, gradient, value, gradient, max_steps=5)
        assert not result.success


class TestWolfe:
    def test_wolfe_conditions_hold_on_quadratic(self):
        objective = quadratic_objective(scale=3.0)
        theta = np.array([5.0, -7.0])
        value, gradient = objective.value_and_gradient(theta)
        direction = -gradient
        c1, c2 = 1e-4, 0.9
        result = wolfe_line_search(objective, theta, direction, value, gradient, c1=c1, c2=c2)
        assert result.success
        alpha = result.step_size
        new_value, new_gradient = objective.value_and_gradient(theta + alpha * direction)
        dphi0 = float(gradient @ direction)
        # Armijo (sufficient decrease) condition.
        assert new_value <= value + c1 * alpha * dphi0 + 1e-12
        # Curvature condition.
        assert abs(float(new_gradient @ direction)) <= c2 * abs(dphi0) + 1e-12

    def test_returns_gradient_at_accepted_point(self):
        objective = quadratic_objective()
        theta = np.array([2.0, 2.0])
        value, gradient = objective.value_and_gradient(theta)
        result = wolfe_line_search(objective, theta, -gradient, value, gradient)
        assert result.gradient is not None
        expected = objective.gradient(theta + result.step_size * -gradient)
        np.testing.assert_allclose(result.gradient, expected)

    def test_non_descent_direction_signals_failure(self):
        objective = quadratic_objective()
        theta = np.array([1.0, 1.0])
        value, gradient = objective.value_and_gradient(theta)
        result = wolfe_line_search(objective, theta, gradient, value, gradient)
        assert not result.success
        assert result.step_size == 0.0

    def test_rosenbrock_direction(self):
        # A harder non-quadratic objective: the search must still find a
        # step satisfying sufficient decrease along the negative gradient.
        def rosenbrock(theta):
            return float((1 - theta[0]) ** 2 + 100 * (theta[1] - theta[0] ** 2) ** 2)

        def rosenbrock_gradient(theta):
            g0 = -2 * (1 - theta[0]) - 400 * theta[0] * (theta[1] - theta[0] ** 2)
            g1 = 200 * (theta[1] - theta[0] ** 2)
            return np.array([g0, g1])

        objective = FunctionObjective(rosenbrock, rosenbrock_gradient)
        theta = np.array([-1.2, 1.0])
        value, gradient = objective.value_and_gradient(theta)
        result = wolfe_line_search(objective, theta, -gradient, value, gradient)
        assert result.success
        assert result.value < value
