"""Integration tests for the observability tier against the real stack.

The two hard guarantees the tier ships with:

* **identity** — a coalesced warm-restart run produces bitwise-identical
  results (models, ε estimates, sample sizes, probe schedules *and*
  streamed-pass counts) with telemetry on and off;
* **fidelity** — the exported counters agree exactly with the accounting
  the stack already proves elsewhere: the pass counter with
  ``streaming_pass_count()`` across every executor backend, the bridged
  roll-ups with the pre-existing ``RegistryStats.cache_totals`` fold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.caching import CacheStats
from repro.core.contract import ApproximationContract
from repro.core.session import EstimationSession
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.evaluation.streaming import (
    StreamingConfig,
    streaming_pass_count,
    streaming_prediction_differences,
)
from repro.exceptions import BlinkMLError
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.obs import (
    current_pass_scope,
    get_metrics,
    get_tracer,
    pass_scope,
    render_prometheus,
    set_obs_enabled,
)
from repro.serving import CoalescingService

SPEC = LogisticRegressionSpec(regularization=1e-3)

CONTRACTS = [
    ApproximationContract(epsilon=0.010, delta=0.05),
    ApproximationContract(epsilon=0.015, delta=0.05),
    ApproximationContract(epsilon=0.010, delta=0.05),
    ApproximationContract(epsilon=0.020, delta=0.05),
]


@pytest.fixture(scope="module")
def splits():
    return train_holdout_test_split(
        higgs_like(n_rows=2_000, n_features=8, seed=29),
        SplitSpec(holdout_fraction=0.2, test_fraction=0.1),
        rng=np.random.default_rng(29),
    )


@pytest.fixture(autouse=True)
def _follow_env():
    """Leave enablement as the ambient environment dictates after each test."""
    yield
    set_obs_enabled(None)


def run_coalesced_warm_restart(splits, warm_dir):
    """One cold fleet run plus a warm restart; returns results and passes.

    The e2e shape from the warm-cache tier: a first session streams the
    real passes and publishes warm artifacts, a second session (same
    seeds, fresh process state modulo the shared directory) answers the
    same contracts from the tier.
    """

    def build():
        return EstimationSession(
            SPEC,
            splits.train,
            splits.holdout,
            initial_sample_size=200,
            n_parameter_samples=16,
            rng=3,
            warm_cache=warm_dir,
        )

    before = streaming_pass_count()
    cold = build().train_to_many(CONTRACTS)
    warm = build().train_to_many(CONTRACTS)
    passes = streaming_pass_count() - before
    return cold, warm, passes


def summarise(outcome):
    return [
        (
            result.sample_size,
            result.estimated_epsilon,
            result.model.theta.tobytes(),
            result.metadata["size_search_probes"],
        )
        for result in outcome.results
    ]


class TestObsIdentity:
    def test_coalesced_warm_restart_identical_on_and_off(self, splits, tmp_path):
        set_obs_enabled(False)
        cold_off, warm_off, passes_off = run_coalesced_warm_restart(
            splits, tmp_path / "off"
        )
        set_obs_enabled(True)
        cold_on, warm_on, passes_on = run_coalesced_warm_restart(
            splits, tmp_path / "on"
        )
        # Bitwise-identical results and identical pass economics: telemetry
        # buys detail, never answers.
        assert summarise(cold_on) == summarise(cold_off)
        assert summarise(warm_on) == summarise(warm_off)
        assert passes_on == passes_off
        assert cold_on.fused_search_passes == cold_off.fused_search_passes
        assert warm_on.serial_search_passes == warm_off.serial_search_passes


class TestPassCounterParity:
    @pytest.mark.parametrize(
        "config",
        [
            StreamingConfig(block_rows=100),
            StreamingConfig(block_rows=100, n_workers=2, backend="threads"),
            StreamingConfig(block_rows=100, n_workers=2, backend="processes"),
        ],
        ids=["serial", "threads", "processes"],
    )
    def test_one_tick_per_pass_under_every_backend(self, splits, config):
        """Worker fan-out never double-ticks and never loses increments.

        The counter ticks in the parent, once per block-consuming call —
        workers (threads or forkserver processes) only evaluate block
        ranges — so the count is exact under every backend.
        """
        rng = np.random.default_rng(31)
        theta_ref = rng.normal(size=8)
        thetas = rng.normal(size=(4, 8))
        counter = get_metrics().counter(
            "repro_streaming_passes_total",
            "Streamed passes over a block source (one per "
            "stream_accumulate() call that consumes holdout blocks).",
            ("scope", "session"),
        )
        before_fn = streaming_pass_count()
        before_metric = counter.total()
        with pass_scope("parity-test", session="p"):
            for _ in range(3):
                streaming_prediction_differences(
                    SPEC, theta_ref, thetas, splits.holdout, config=config
                )
        assert streaming_pass_count() - before_fn == 3
        # The thin-reader function and the labelled counter agree exactly,
        # and the ticks landed under the scope that made them.
        assert counter.total() - before_metric == 3
        assert counter.value(scope="parity-test", session="p") >= 3

    def test_scope_label_restored(self):
        assert current_pass_scope() == ("unscoped", "")


class TestBridgedRollups:
    def test_cache_totals_parity_with_hand_fold(self, splits):
        """The merge-based roll-up equals the pre-PR hand-written fold."""
        service = CoalescingService(start_housekeeping=False)
        try:
            for key, seed in (("a", 1), ("b", 2)):
                service.batcher(
                    key,
                    SPEC,
                    splits.train,
                    splits.holdout,
                    initial_sample_size=200,
                    n_parameter_samples=16,
                    rng=seed,
                )
                service.answer_sync(key, CONTRACTS[0])
            stats = service.stats()
            totals = stats.cache_totals()

            def hand_fold(name: str) -> tuple[int, int, int, int, int]:
                rows = [
                    info.cache_stats[name] for info in stats.per_session
                ]
                return (
                    sum(r.hits for r in rows),
                    sum(r.misses for r in rows),
                    sum(r.evictions for r in rows),
                    sum(r.entries for r in rows),
                    sum(r.bytes for r in rows),
                )

            for name, merged in totals.items():
                assert (
                    merged.hits,
                    merged.misses,
                    merged.evictions,
                    merged.entries,
                    merged.bytes,
                ) == hand_fold(name)
        finally:
            service.close()

    def test_cache_stats_merge_rejects_mismatched_names(self):
        a = CacheStats("diff", 1, 2, 0, 3, 100, None, None)
        b = CacheStats("size", 1, 2, 0, 3, 100, None, None)
        with pytest.raises(BlinkMLError):
            a.merge(b)

    def test_merge_bounds_none_absorbs(self):
        bounded = CacheStats("diff", 0, 0, 0, 0, 0, 10, 1000)
        unbounded = CacheStats("diff", 0, 0, 0, 0, 0, None, 500)
        merged = bounded.merge(unbounded)
        assert merged.max_entries is None
        assert merged.max_bytes == 1500

    def test_scrape_covers_fleet_and_matches_batcher_accounting(self, splits):
        """One scrape reports coalescing counters equal to BatcherStats."""
        set_obs_enabled(True)
        service = CoalescingService(start_housekeeping=False)
        try:
            service.batcher(
                "k",
                SPEC,
                splits.train,
                splits.holdout,
                initial_sample_size=200,
                n_parameter_samples=16,
                rng=5,
            )
            for contract in CONTRACTS:
                service.train_to_sync("k", contract)
            service.flush()
            batching = service.batching_stats()
            snapshot = service.metrics_snapshot()
            assert (
                snapshot.value("repro_coalescing_fused_passes")
                == batching.fused_passes
            )
            assert (
                snapshot.value("repro_coalescing_serial_passes")
                == batching.serial_passes
            )
            assert (
                snapshot.value("repro_coalescing_requests") == batching.requests
            )
            assert snapshot.value("repro_registry_sessions") == 1
            rendered = render_prometheus(snapshot)
            for required in (
                "repro_streaming_passes_total",
                "repro_session_train_seconds",
                "repro_cache_hits",
                "repro_coalescing_passes_saved",
                "repro_registry_bytes",
            ):
                assert required in rendered
        finally:
            service.close()

    def test_span_tree_reconstructs_request_causality(self, splits):
        """answer → accuracy streaming passes hang off one service trace."""
        set_obs_enabled(True)
        tracer = get_tracer()
        session = EstimationSession(
            SPEC,
            splits.train,
            splits.holdout,
            initial_sample_size=200,
            n_parameter_samples=16,
            rng=7,
        )
        tracer.clear()
        session.train_to(CONTRACTS[0])
        spans = tracer.finished_spans()
        by_id = {span.span_id: span for span in spans}
        roots = [span for span in spans if span.name == "session.train_to"]
        assert len(roots) == 1
        root = roots[0]
        in_trace = [span for span in spans if span.trace_id == root.trace_id]
        names = {span.name for span in in_trace}
        assert "session.answer" in names
        assert "size_search.estimate" in names
        assert "streaming.pass" in names
        # Every streamed pass in the trace reaches the root through its
        # parent chain — the causality the span tree renders.
        for span in in_trace:
            node = span
            while node.parent_id is not None:
                node = by_id[node.parent_id]
            assert node is root
