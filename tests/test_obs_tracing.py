"""Tests for the tracing tier (repro.obs.tracing) and enablement gating.

The tracer takes an injectable clock and counter-based ids, so every test
here asserts exact durations and exact tree shapes — no sleeps, no
tolerance windows.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    Tracer,
    current_pass_scope,
    get_tracer,
    maybe_span,
    obs_enabled,
    pass_scope,
    render_span_tree,
    set_obs_enabled,
)


class FakeClock:
    """Deterministic monotonic clock advanced explicitly by tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def tracer(clock: FakeClock) -> Tracer:
    return Tracer(clock=clock, buffer_size=64)


# ----------------------------------------------------------------------
# Span mechanics
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_exact_durations(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner", detail="x") as inner:
                clock.advance(0.25)
            clock.advance(0.5)
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id == outer.span_id
        assert inner.duration == 0.25
        assert outer.duration == 1.75
        assert inner.attributes == {"detail": "x"}

    def test_open_span_has_no_duration(self, tracer):
        with tracer.span("open") as span:
            with pytest.raises(ObservabilityError):
                _ = span.duration

    def test_explicit_none_parent_forces_root(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("detached", parent=None) as detached:
                pass
        assert detached.parent_id is None
        assert detached.trace_id != outer.trace_id

    def test_exception_recorded_and_reraised(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.finished_spans()
        assert span.attributes["error"] == "ValueError"
        assert span.finished

    def test_ring_buffer_bounded(self, clock):
        tracer = Tracer(clock=clock, buffer_size=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [span.name for span in tracer.finished_spans()]
        assert names == ["s7", "s8", "s9"]

    def test_current_span_restored_on_exit(self, tracer):
        assert tracer.current_span() is None
        with tracer.span("a") as a:
            assert tracer.current_span() is a
        assert tracer.current_span() is None


# ----------------------------------------------------------------------
# Context propagation: asyncio inherits, thread pools need activate()
# ----------------------------------------------------------------------
class TestPropagation:
    def test_asyncio_tasks_inherit_current_span(self, tracer, clock):
        async def child(name: str):
            with tracer.span(name):
                await asyncio.sleep(0)

        async def main():
            with tracer.span("request") as root:
                await asyncio.gather(child("left"), child("right"))
            return root

        root = asyncio.run(main())
        children = [
            span for span in tracer.finished_spans() if span.name != "request"
        ]
        assert {span.parent_id for span in children} == {root.span_id}
        assert {span.trace_id for span in children} == {root.trace_id}

    def test_thread_pool_needs_explicit_activate(self, tracer):
        with tracer.span("request") as root:
            with ThreadPoolExecutor(max_workers=1) as pool:
                # Without activate: the worker context has no current span,
                # so its span is a disconnected root.
                def naive():
                    with tracer.span("naive") as span:
                        return span

                naive_span = pool.submit(naive).result()

                # With activate: explicit handoff re-parents correctly.
                captured = tracer.current_span()

                def handed_off():
                    with tracer.activate(captured):
                        with tracer.span("adopted") as span:
                            return span

                adopted_span = pool.submit(handed_off).result()
        assert naive_span.parent_id is None
        assert adopted_span.parent_id == root.span_id
        assert adopted_span.trace_id == root.trace_id


# ----------------------------------------------------------------------
# Span tree rendering
# ----------------------------------------------------------------------
class TestSpanTree:
    def test_tree_shape_and_attributes(self, tracer, clock):
        with tracer.span("answer", key="k"):
            clock.advance(0.002)
            with tracer.span("size-search"):
                clock.advance(0.001)
                with tracer.span("streaming.pass", blocks=4):
                    clock.advance(0.0005)
        tree = render_span_tree(tracer.finished_spans())
        assert tree.splitlines() == [
            "- answer (3.500 ms) key=k",
            "  - size-search (1.500 ms)",
            "    - streaming.pass (0.500 ms) blocks=4",
        ]

    def test_orphans_promoted_to_roots(self, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("child"):
                pass
        spans = [s for s in tracer.finished_spans() if s.name == "child"]
        assert parent.span_id not in {s.span_id for s in spans}
        tree = render_span_tree(spans)
        assert tree == "- child (0.000 ms)"

    def test_trace_filter(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second") as second:
            pass
        tree = render_span_tree(tracer.finished_spans(), trace_id=second.trace_id)
        assert tree == "- second (0.000 ms)"


# ----------------------------------------------------------------------
# Enablement gating and pass-scope attribution
# ----------------------------------------------------------------------
class TestEnablement:
    @pytest.fixture(autouse=True)
    def _reset_override(self):
        yield
        set_obs_enabled(None)

    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_ENABLED", "1")
        assert obs_enabled()
        set_obs_enabled(False)
        assert not obs_enabled()
        set_obs_enabled(None)
        assert obs_enabled()

    def test_env_truthy_values(self, monkeypatch):
        for raw, expected in [
            ("1", True),
            ("true", True),
            ("YES", True),
            ("on", True),
            ("0", False),
            ("off", False),
            ("", False),  # blank falls through to the knob default (off)
        ]:
            monkeypatch.setenv("REPRO_OBS_ENABLED", raw)
            assert obs_enabled() is expected, raw

    def test_maybe_span_disabled_yields_none(self):
        set_obs_enabled(False)
        before = len(get_tracer().finished_spans())
        with maybe_span("gated") as span:
            assert span is None
        assert len(get_tracer().finished_spans()) == before

    def test_maybe_span_enabled_records(self):
        set_obs_enabled(True)
        with maybe_span("gated", k=1) as span:
            assert span is not None
        assert get_tracer().finished_spans()[-1].name == "gated"


class TestPassScope:
    def test_default_is_unscoped(self):
        assert current_pass_scope() == ("unscoped", "")

    def test_nested_scopes_restore(self):
        with pass_scope("accuracy", session="LR"):
            assert current_pass_scope() == ("accuracy", "LR")
            with pass_scope("size-search"):
                # session label inherited, scope refined
                assert current_pass_scope() == ("size-search", "LR")
            assert current_pass_scope() == ("accuracy", "LR")
        assert current_pass_scope() == ("unscoped", "")

    def test_scope_flows_into_asyncio_tasks(self):
        async def probe():
            return current_pass_scope()

        async def main():
            with pass_scope("statistics", session="S"):
                return await asyncio.gather(probe(), probe())

        assert asyncio.run(main()) == [("statistics", "S")] * 2
