"""Tests for the ModelClassSpec base behaviour, TrainedModel and the registry."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models import (
    LinearRegressionSpec,
    LogisticRegressionSpec,
    MaxEntropySpec,
    PoissonRegressionSpec,
    PPCASpec,
    available_models,
    get_model_spec,
)
from repro.models.base import ModelClassSpec


@pytest.fixture(scope="module")
def tiny_regression():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + rng.normal(scale=0.05, size=200)
    return Dataset(X, y)


class TestBaseBehaviour:
    def test_objective_adapter_consistency(self, tiny_regression):
        spec = LinearRegressionSpec(regularization=0.01)
        objective = spec.objective(tiny_regression)
        theta = np.array([0.3, -0.2, 0.1])
        assert objective.value(theta) == pytest.approx(spec.loss(theta, tiny_regression))
        np.testing.assert_allclose(
            objective.gradient(theta), spec.gradient(theta, tiny_regression)
        )
        value, gradient = objective.value_and_gradient(theta)
        assert value == pytest.approx(spec.loss(theta, tiny_regression))
        np.testing.assert_allclose(gradient, spec.gradient(theta, tiny_regression))
        np.testing.assert_allclose(
            objective.hessian(theta), spec.hessian(theta, tiny_regression)
        )

    def test_initial_parameters_are_zero_by_default(self, tiny_regression):
        spec = LinearRegressionSpec()
        np.testing.assert_array_equal(spec.initial_parameters(tiny_regression), np.zeros(3))

    def test_fit_produces_trained_model(self, tiny_regression):
        spec = LinearRegressionSpec(regularization=1e-4)
        model = spec.fit(tiny_regression)
        assert model.n_train == tiny_regression.n_rows
        assert model.n_parameters == 3
        assert model.optimization is not None
        assert model.optimization.converged

    def test_fit_with_warm_start(self, tiny_regression):
        spec = LinearRegressionSpec(regularization=1e-4)
        cold = spec.fit(tiny_regression)
        warm = spec.fit(tiny_regression, theta0=cold.theta)
        np.testing.assert_allclose(warm.theta, cold.theta, atol=1e-5)
        assert warm.optimization.n_iterations <= cold.optimization.n_iterations

    def test_trained_model_difference_requires_same_spec_type(self, tiny_regression):
        lin = LinearRegressionSpec().fit(tiny_regression)
        binary = Dataset(tiny_regression.X, (tiny_regression.y > 0).astype(int))
        lr = LogisticRegressionSpec().fit(binary)
        with pytest.raises(ModelSpecError):
            lin.difference(lr, tiny_regression)

    def test_trained_model_difference_same_spec(self, tiny_regression):
        spec = LinearRegressionSpec()
        a = spec.fit(tiny_regression)
        b = spec.fit(tiny_regression)
        assert a.difference(b, tiny_regression) == pytest.approx(0.0, abs=1e-6)

    def test_has_closed_form_hessian_flags(self):
        assert LinearRegressionSpec().has_closed_form_hessian
        assert LogisticRegressionSpec().has_closed_form_hessian
        assert MaxEntropySpec(n_classes=3).has_closed_form_hessian
        assert not PPCASpec().has_closed_form_hessian

    def test_abstract_base_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            ModelClassSpec()  # type: ignore[abstract]


class TestReferencePredictionMemo:
    def test_memo_hit_on_repeated_pair(self, tiny_regression):
        spec = LinearRegressionSpec()
        theta = np.array([0.5, -1.0, 0.25])
        first = spec._reference_predictions(theta, tiny_regression.X)
        second = spec._reference_predictions(theta, tiny_regression.X)
        assert first is second  # memoised, not recomputed

    def test_threaded_alternating_pairs_are_race_free(self, tiny_regression):
        """Regression for the shared one-slot reference memo.

        The memo used to be a single unsynchronised slot on the spec object,
        which concurrent streaming workers with different (θ, X) pairs would
        mutate underneath each other — thrashing the memo and (on
        free-threaded builds) risking a torn entry.  With the per-thread
        memo, hammering ``_reference_predictions`` from threads with two
        alternating pairs must stay correct AND each thread must keep its
        own slot effective: one predict() per thread, not one per call.
        """
        from concurrent.futures import ThreadPoolExecutor
        import threading

        class CountingSpec(LinearRegressionSpec):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.predict_calls = 0
                self._count_lock = threading.Lock()

            def predict(self, theta, X):
                with self._count_lock:
                    self.predict_calls += 1
                return super().predict(theta, X)

        spec = CountingSpec()
        rng = np.random.default_rng(5)
        pairs = [
            (np.array([1.0, 2.0, 3.0]), rng.normal(size=(64, 3))),
            (np.array([-1.0, 0.5, 0.0]), rng.normal(size=(64, 3))),
        ]
        expected = [LinearRegressionSpec().predict(theta, X) for theta, X in pairs]
        n_threads, n_iterations = 4, 200
        failures = []

        def hammer(worker_id):
            theta, X = pairs[worker_id % 2]
            want = expected[worker_id % 2]
            for _ in range(n_iterations):
                got = spec._reference_predictions(theta, X)
                if not np.array_equal(got, want):
                    failures.append(worker_id)
                    return

        with ThreadPoolExecutor(n_threads) as pool:
            list(pool.map(hammer, range(n_threads)))

        assert not failures  # every call saw its own pair's predictions
        # Per-thread memo: the first call of each worker misses, every
        # later call hits — alternating pairs on other threads cannot
        # evict this thread's entry.
        assert spec.predict_calls == n_threads

    def test_custom_spec_without_super_init_still_works(self, tiny_regression):
        # Custom specs that skip super().__init__ lazily install the memo.
        class BareSpec(LinearRegressionSpec):
            def __init__(self):
                # Deliberately skip ModelClassSpec.__init__.
                self.regularization = 0.0
                self.noise_variance = None
                self.normalize_difference = True

        spec = BareSpec()
        theta = np.array([0.1, 0.2, 0.3])
        predictions = spec._reference_predictions(theta, tiny_regression.X)
        np.testing.assert_array_equal(
            predictions, LinearRegressionSpec().predict(theta, tiny_regression.X)
        )
        assert spec._reference_predictions(theta, tiny_regression.X) is predictions


class TestRegistry:
    def test_available_models(self):
        assert available_models() == ["lin", "lr", "me", "poisson", "ppca"]

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("lin", LinearRegressionSpec),
            ("LR", LogisticRegressionSpec),
            ("me", MaxEntropySpec),
            ("poisson", PoissonRegressionSpec),
            ("ppca", PPCASpec),
            ("logistic_regression", LogisticRegressionSpec),
        ],
    )
    def test_lookup(self, name, expected):
        assert isinstance(get_model_spec(name), expected)

    def test_kwargs_forwarded(self):
        spec = get_model_spec("lin", regularization=0.7)
        assert spec.regularization == 0.7

    def test_unknown_model(self):
        with pytest.raises(ModelSpecError):
            get_model_spec("random_forest")
