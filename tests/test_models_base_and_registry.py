"""Tests for the ModelClassSpec base behaviour, TrainedModel and the registry."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models import (
    LinearRegressionSpec,
    LogisticRegressionSpec,
    MaxEntropySpec,
    PoissonRegressionSpec,
    PPCASpec,
    available_models,
    get_model_spec,
)
from repro.models.base import ModelClassSpec


@pytest.fixture(scope="module")
def tiny_regression():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + rng.normal(scale=0.05, size=200)
    return Dataset(X, y)


class TestBaseBehaviour:
    def test_objective_adapter_consistency(self, tiny_regression):
        spec = LinearRegressionSpec(regularization=0.01)
        objective = spec.objective(tiny_regression)
        theta = np.array([0.3, -0.2, 0.1])
        assert objective.value(theta) == pytest.approx(spec.loss(theta, tiny_regression))
        np.testing.assert_allclose(
            objective.gradient(theta), spec.gradient(theta, tiny_regression)
        )
        value, gradient = objective.value_and_gradient(theta)
        assert value == pytest.approx(spec.loss(theta, tiny_regression))
        np.testing.assert_allclose(gradient, spec.gradient(theta, tiny_regression))
        np.testing.assert_allclose(
            objective.hessian(theta), spec.hessian(theta, tiny_regression)
        )

    def test_initial_parameters_are_zero_by_default(self, tiny_regression):
        spec = LinearRegressionSpec()
        np.testing.assert_array_equal(spec.initial_parameters(tiny_regression), np.zeros(3))

    def test_fit_produces_trained_model(self, tiny_regression):
        spec = LinearRegressionSpec(regularization=1e-4)
        model = spec.fit(tiny_regression)
        assert model.n_train == tiny_regression.n_rows
        assert model.n_parameters == 3
        assert model.optimization is not None
        assert model.optimization.converged

    def test_fit_with_warm_start(self, tiny_regression):
        spec = LinearRegressionSpec(regularization=1e-4)
        cold = spec.fit(tiny_regression)
        warm = spec.fit(tiny_regression, theta0=cold.theta)
        np.testing.assert_allclose(warm.theta, cold.theta, atol=1e-5)
        assert warm.optimization.n_iterations <= cold.optimization.n_iterations

    def test_trained_model_difference_requires_same_spec_type(self, tiny_regression):
        lin = LinearRegressionSpec().fit(tiny_regression)
        binary = Dataset(tiny_regression.X, (tiny_regression.y > 0).astype(int))
        lr = LogisticRegressionSpec().fit(binary)
        with pytest.raises(ModelSpecError):
            lin.difference(lr, tiny_regression)

    def test_trained_model_difference_same_spec(self, tiny_regression):
        spec = LinearRegressionSpec()
        a = spec.fit(tiny_regression)
        b = spec.fit(tiny_regression)
        assert a.difference(b, tiny_regression) == pytest.approx(0.0, abs=1e-6)

    def test_has_closed_form_hessian_flags(self):
        assert LinearRegressionSpec().has_closed_form_hessian
        assert LogisticRegressionSpec().has_closed_form_hessian
        assert MaxEntropySpec(n_classes=3).has_closed_form_hessian
        assert not PPCASpec().has_closed_form_hessian

    def test_abstract_base_cannot_be_instantiated(self):
        with pytest.raises(TypeError):
            ModelClassSpec()  # type: ignore[abstract]


class TestRegistry:
    def test_available_models(self):
        assert available_models() == ["lin", "lr", "me", "poisson", "ppca"]

    @pytest.mark.parametrize(
        "name, expected",
        [
            ("lin", LinearRegressionSpec),
            ("LR", LogisticRegressionSpec),
            ("me", MaxEntropySpec),
            ("poisson", PoissonRegressionSpec),
            ("ppca", PPCASpec),
            ("logistic_regression", LogisticRegressionSpec),
        ],
    )
    def test_lookup(self, name, expected):
        assert isinstance(get_model_spec(name), expected)

    def test_kwargs_forwarded(self):
        spec = get_model_spec("lin", regularization=0.7)
        assert spec.regularization == 0.7

    def test_unknown_model(self):
        with pytest.raises(ModelSpecError):
            get_model_spec("random_forest")
