"""Tests for the logistic regression model class specification."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.logistic_regression import LogisticRegressionSpec, log_sigmoid, sigmoid


@pytest.fixture(scope="module")
def separable_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(600, 5))
    theta_true = np.array([2.0, -1.0, 0.5, 0.0, 1.5])
    probs = sigmoid(X @ theta_true)
    y = (rng.uniform(size=600) < probs).astype(np.int64)
    return Dataset(X, y), theta_true


class TestNumericalPrimitives:
    def test_sigmoid_stability(self):
        values = sigmoid(np.array([-1000.0, -10.0, 0.0, 10.0, 1000.0]))
        assert np.all(np.isfinite(values))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[2] == pytest.approx(0.5)
        assert values[-1] == pytest.approx(1.0)

    def test_log_sigmoid_stability(self):
        values = log_sigmoid(np.array([-800.0, 0.0, 800.0]))
        assert np.all(np.isfinite(values))
        assert values[1] == pytest.approx(np.log(0.5))
        assert values[2] == pytest.approx(0.0, abs=1e-12)

    def test_sigmoid_symmetry(self):
        z = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid(z) + sigmoid(-z), np.ones_like(z), atol=1e-12)


class TestObjective:
    def test_gradient_matches_numerical(self, separable_data, gradient_checker):
        data, _ = separable_data
        spec = LogisticRegressionSpec(regularization=0.01)
        theta = np.linspace(-0.5, 0.5, 5)
        numerical = gradient_checker(lambda t: spec.loss(t, data), theta)
        np.testing.assert_allclose(spec.gradient(theta, data), numerical, atol=1e-5)

    def test_hessian_matches_numerical(self, separable_data, gradient_checker):
        data, _ = separable_data
        spec = LogisticRegressionSpec(regularization=0.05)
        theta = np.full(5, 0.2)
        H = spec.hessian(theta, data)
        for j in range(5):
            unit = np.zeros(5)
            unit[j] = 1.0
            numerical_col = gradient_checker(
                lambda t: float(spec.gradient(t, data) @ unit), theta
            )
            np.testing.assert_allclose(H[:, j], numerical_col, atol=1e-5)

    def test_loss_at_zero_is_log2(self, separable_data):
        data, _ = separable_data
        spec = LogisticRegressionSpec(regularization=0.0)
        assert spec.loss(np.zeros(5), data) == pytest.approx(np.log(2.0))

    def test_per_example_gradient_shape(self, separable_data):
        data, _ = separable_data
        spec = LogisticRegressionSpec()
        per_example = spec.per_example_gradients(np.zeros(5), data)
        assert per_example.shape == (data.n_rows, 5)

    def test_rejects_non_binary_labels(self):
        spec = LogisticRegressionSpec()
        data = Dataset(np.zeros((4, 2)), np.array([0, 1, 2, 1]))
        with pytest.raises(ModelSpecError):
            spec.loss(np.zeros(2), data)


class TestFitAndPredict:
    def test_fit_recovers_direction_of_truth(self, separable_data):
        data, theta_true = separable_data
        spec = LogisticRegressionSpec(regularization=1e-4)
        model = spec.fit(data)
        cosine = float(model.theta @ theta_true) / (
            np.linalg.norm(model.theta) * np.linalg.norm(theta_true)
        )
        assert cosine > 0.95

    def test_fit_beats_chance_accuracy(self, separable_data):
        data, _ = separable_data
        spec = LogisticRegressionSpec(regularization=1e-3)
        model = spec.fit(data)
        accuracy = float(np.mean(model.predict(data.X) == data.y))
        assert accuracy > 0.8

    def test_predict_proba_in_unit_interval(self, separable_data):
        data, _ = separable_data
        spec = LogisticRegressionSpec()
        probabilities = spec.predict_proba(np.ones(5), data.X)
        assert np.all(probabilities >= 0) and np.all(probabilities <= 1)

    def test_predictions_are_binary(self, separable_data):
        data, _ = separable_data
        spec = LogisticRegressionSpec()
        predictions = spec.predict(np.ones(5), data.X)
        assert set(np.unique(predictions)) <= {0, 1}


class TestDifference:
    def test_identical_parameters(self, separable_data):
        data, _ = separable_data
        spec = LogisticRegressionSpec()
        theta = np.ones(5)
        assert spec.prediction_difference(theta, theta, data) == 0.0

    def test_opposite_parameters_disagree_everywhere(self, separable_data):
        data, theta_true = separable_data
        spec = LogisticRegressionSpec()
        # Flipping the sign of θ flips (almost) every prediction.
        difference = spec.prediction_difference(theta_true, -theta_true, data)
        assert difference > 0.9

    def test_difference_is_a_probability(self, separable_data):
        data, _ = separable_data
        spec = LogisticRegressionSpec()
        rng = np.random.default_rng(0)
        difference = spec.prediction_difference(rng.normal(size=5), rng.normal(size=5), data)
        assert 0.0 <= difference <= 1.0
