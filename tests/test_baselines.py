"""Tests for the sample-size baselines of the Section 5.4 comparison."""

import numpy as np
import pytest

from repro.baselines import (
    FixedRatioBaseline,
    FullTrainingBaseline,
    IncrementalEstimatorBaseline,
    RelativeRatioBaseline,
)
from repro.core.contract import ApproximationContract
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import higgs_like
from repro.exceptions import SampleSizeError
from repro.models.logistic_regression import LogisticRegressionSpec


@pytest.fixture(scope="module")
def baseline_splits():
    data = higgs_like(n_rows=12_000, n_features=10, seed=60)
    return train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def contract():
    return ApproximationContract(epsilon=0.05, delta=0.05)


def make_spec():
    return LogisticRegressionSpec(regularization=1e-3)


class TestFixedRatio:
    def test_uses_fixed_fraction(self, baseline_splits, contract):
        baseline = FixedRatioBaseline(make_spec(), ratio=0.01, seed=0)
        result = baseline.run(baseline_splits.train, baseline_splits.holdout, contract)
        assert result.sample_size == round(0.01 * baseline_splits.train.n_rows)
        assert result.n_models_trained == 1
        assert result.policy == "fixed_ratio"

    def test_ignores_requested_accuracy(self, baseline_splits):
        baseline = FixedRatioBaseline(make_spec(), ratio=0.02, seed=0)
        loose = baseline.run(
            baseline_splits.train, baseline_splits.holdout, ApproximationContract(epsilon=0.2)
        )
        tight = baseline.run(
            baseline_splits.train, baseline_splits.holdout, ApproximationContract(epsilon=0.01)
        )
        assert loose.sample_size == tight.sample_size

    def test_invalid_ratio(self):
        with pytest.raises(SampleSizeError):
            FixedRatioBaseline(make_spec(), ratio=0.0)


class TestRelativeRatio:
    def test_fraction_scales_with_accuracy(self, baseline_splits):
        baseline = RelativeRatioBaseline(make_spec(), scale=0.1, seed=0)
        low = baseline.run(
            baseline_splits.train, baseline_splits.holdout, ApproximationContract(epsilon=0.2)
        )
        high = baseline.run(
            baseline_splits.train, baseline_splits.holdout, ApproximationContract(epsilon=0.01)
        )
        assert high.sample_size > low.sample_size
        expected = round(0.99 * 0.1 * baseline_splits.train.n_rows)
        assert abs(high.sample_size - expected) <= 1

    def test_invalid_scale(self):
        with pytest.raises(SampleSizeError):
            RelativeRatioBaseline(make_spec(), scale=1.5)


class TestIncrementalEstimator:
    def test_grows_until_contract_met(self, baseline_splits, contract):
        baseline = IncrementalEstimatorBaseline(
            make_spec(), step_scale=500, n_parameter_samples=32, seed=0
        )
        result = baseline.run(baseline_splits.train, baseline_splits.holdout, contract)
        assert result.policy == "inc_estimator"
        assert result.n_models_trained >= 1
        # Sample sizes follow the 500·k² schedule (capped at N).
        k = result.metadata["steps"]
        assert result.sample_size == min(500 * k * k, baseline_splits.train.n_rows)

    def test_trains_more_models_than_blinkml_for_tight_contracts(self, baseline_splits):
        baseline = IncrementalEstimatorBaseline(
            make_spec(), step_scale=300, n_parameter_samples=32, seed=0
        )
        result = baseline.run(
            baseline_splits.train, baseline_splits.holdout, ApproximationContract(epsilon=0.02)
        )
        # BlinkML trains at most 2 models; IncEstimator typically needs more
        # for a tight contract on this workload.
        assert result.n_models_trained >= 2


class TestFullTraining:
    def test_uses_all_rows(self, baseline_splits, contract):
        baseline = FullTrainingBaseline(make_spec(), seed=0)
        result = baseline.run(baseline_splits.train, baseline_splits.holdout, contract)
        assert result.sample_size == baseline_splits.train.n_rows
        assert result.n_models_trained == 1
        assert result.training_seconds > 0


class TestCrossPolicyBehaviour:
    def test_adaptive_policies_meet_contract_fixed_ratio_may_not(self, baseline_splits, contract):
        """Reproduces the qualitative Figure 7a finding at unit-test scale."""
        spec = make_spec()
        full = FullTrainingBaseline(spec, seed=0).run(
            baseline_splits.train, baseline_splits.holdout, contract
        )
        incremental = IncrementalEstimatorBaseline(
            spec, step_scale=500, n_parameter_samples=48, seed=1
        ).run(baseline_splits.train, baseline_splits.holdout, contract)
        agreement = 1 - spec.prediction_difference(
            incremental.model.theta, full.model.theta, baseline_splits.holdout
        )
        assert agreement >= contract.requested_accuracy - 0.03
