"""Tests for the noise-variance estimation helpers (Lin and PPCA)."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.ppca import PPCASpec


class TestLinearRegressionNoiseEstimation:
    def make_data(self, noise_std=0.4, n=5000, d=6, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        theta = rng.normal(size=d)
        y = X @ theta + rng.normal(scale=noise_std, size=n)
        return Dataset(X, y)

    @pytest.mark.parametrize("noise_std", [0.2, 0.5, 1.5])
    def test_estimate_close_to_truth(self, noise_std):
        data = self.make_data(noise_std=noise_std)
        spec = LinearRegressionSpec.with_estimated_noise(data)
        assert spec.noise_variance == pytest.approx(noise_std**2, rel=0.15)

    def test_estimation_uses_at_most_max_rows(self):
        data = self.make_data(n=2000)
        spec = LinearRegressionSpec.with_estimated_noise(data, max_rows=500)
        assert spec.noise_variance > 0

    def test_requires_labels(self):
        data = Dataset(np.zeros((10, 2)))
        with pytest.raises(ModelSpecError):
            LinearRegressionSpec.with_estimated_noise(data)

    def test_invalid_noise_variance_rejected(self):
        with pytest.raises(ModelSpecError):
            LinearRegressionSpec(noise_variance=0.0)

    def test_noise_variance_scales_objective(self):
        data = self.make_data()
        theta = np.ones(6)
        reference = LinearRegressionSpec(regularization=0.0, noise_variance=1.0)
        halved = LinearRegressionSpec(regularization=0.0, noise_variance=2.0)
        assert halved.loss(theta, data) == pytest.approx(reference.loss(theta, data) / 2.0)

    def test_minimizer_unchanged_by_noise_variance_without_regularization(self):
        data = self.make_data()
        a = LinearRegressionSpec(regularization=0.0, noise_variance=1.0).fit(data)
        b = LinearRegressionSpec(regularization=0.0, noise_variance=4.0).fit(data)
        np.testing.assert_allclose(a.theta, b.theta, atol=1e-4)


class TestPPCANoiseEstimation:
    def make_data(self, noise_std=0.5, n=4000, d=12, q=3, seed=1):
        rng = np.random.default_rng(seed)
        loadings = rng.normal(scale=2.0, size=(d, q))
        latent = rng.normal(size=(n, q))
        X = latent @ loadings.T + rng.normal(scale=noise_std, size=(n, d))
        return Dataset(X - X.mean(axis=0))

    @pytest.mark.parametrize("noise_std", [0.3, 0.8])
    def test_estimate_close_to_truth(self, noise_std):
        data = self.make_data(noise_std=noise_std)
        spec = PPCASpec.with_estimated_noise(data, n_factors=3)
        assert spec.sigma2 == pytest.approx(noise_std**2, rel=0.25)

    def test_factor_count_preserved(self):
        data = self.make_data()
        spec = PPCASpec.with_estimated_noise(data, n_factors=4)
        assert spec.n_factors == 4

    def test_too_many_factors_rejected(self):
        data = self.make_data(d=5)
        with pytest.raises(ModelSpecError):
            PPCASpec.with_estimated_noise(data, n_factors=5)

    def test_minimum_sigma_floor(self):
        # Noise-free low-rank data: the estimate must not collapse to zero.
        rng = np.random.default_rng(2)
        loadings = rng.normal(size=(8, 2))
        latent = rng.normal(size=(1000, 2))
        data = Dataset(latent @ loadings.T)
        spec = PPCASpec.with_estimated_noise(data, n_factors=2, min_sigma2=1e-3)
        assert spec.sigma2 >= 1e-3
