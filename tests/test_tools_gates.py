"""Tests for the plain-script CI gates: tools/check_docs.py and
tools/run_examples.py.

Both are stdlib-only scripts that gate every push; until now they were
only exercised *by* CI, never tested themselves.  The docs checker is
tested against fixture Markdown trees (slug rules, link resolution,
anchor dedup, scheme sanity) plus the real documentation set; the example
runner is tested against a fixture examples directory with passing,
failing, and smoke-env-asserting scripts.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from tools import check_docs, run_examples

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# check_docs — slugs and code stripping
# ----------------------------------------------------------------------
class TestGithubSlug:
    def test_basic_lowercase_and_dashes(self):
        assert check_docs.github_slug("Hello World") == "hello-world"

    def test_punctuation_is_dropped(self):
        assert check_docs.github_slug("What's new?!") == "whats-new"

    def test_inline_code_keeps_its_text(self):
        assert check_docs.github_slug("The `freeze()` helper") == "the-freeze-helper"

    def test_linked_heading_uses_link_text(self):
        assert check_docs.github_slug("[Serving](serving.md) tier") == "serving-tier"


class TestStripCode:
    def test_fences_and_inline_spans_are_removed(self):
        text = textwrap.dedent(
            """\
            before
            ```python
            array[0](not_a_link)
            ```
            middle `code[1](span)` after
            """
        )
        stripped = check_docs.strip_code(text)
        assert "not_a_link" not in stripped
        assert "span" not in stripped
        assert "before" in stripped and "after" in stripped


class TestAnchors:
    def test_duplicate_headings_dedupe_like_github(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Setup\n\n# Setup\n\n# Setup\n", encoding="utf-8")
        assert check_docs.anchors_of(doc, {}) == {"setup", "setup-1", "setup-2"}

    def test_headings_inside_fences_are_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("# Real\n\n```\n# not a heading\n```\n", encoding="utf-8")
        assert check_docs.anchors_of(doc, {}) == {"real"}


# ----------------------------------------------------------------------
# check_docs — link checking over fixture trees
# ----------------------------------------------------------------------
def write_docs(tmp_path: Path, files: dict[str, str]) -> dict[str, Path]:
    out = {}
    for name, content in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
        out[name] = path
    return out


class TestCheckFile:
    def test_valid_relative_link_and_anchor(self, tmp_path):
        docs = write_docs(
            tmp_path,
            {
                "a.md": "# A\n\nSee [b](b.md) and [sec](b.md#the-section).\n",
                "b.md": "# B\n\n## The Section\n\ntext\n",
            },
        )
        assert check_docs.check_file(docs["a.md"], {}) == []

    def test_broken_file_link(self, tmp_path):
        docs = write_docs(tmp_path, {"a.md": "[gone](missing.md)\n"})
        problems = check_docs.check_file(docs["a.md"], {})
        assert len(problems) == 1
        assert "missing.md" in problems[0]

    def test_broken_anchor(self, tmp_path):
        docs = write_docs(
            tmp_path,
            {
                "a.md": "[sec](b.md#no-such-heading)\n",
                "b.md": "# B\n",
            },
        )
        problems = check_docs.check_file(docs["a.md"], {})
        assert len(problems) == 1
        assert "no-such-heading" in problems[0]

    def test_same_file_anchor(self, tmp_path):
        docs = write_docs(
            tmp_path,
            {"a.md": "# Top\n\n[down](#details)\n\n## Details\n\ntext\n"},
        )
        assert check_docs.check_file(docs["a.md"], {}) == []

    def test_suspicious_url_scheme(self, tmp_path):
        docs = write_docs(tmp_path, {"a.md": "[x](javascript:alert(1))\n"})
        problems = check_docs.check_file(docs["a.md"], {})
        assert len(problems) == 1
        assert "scheme" in problems[0]

    def test_https_links_are_not_fetched(self, tmp_path):
        docs = write_docs(
            tmp_path, {"a.md": "[paper](https://example.org/blinkml)\n"}
        )
        assert check_docs.check_file(docs["a.md"], {}) == []

    def test_links_inside_code_are_ignored(self, tmp_path):
        docs = write_docs(
            tmp_path,
            {"a.md": "Use `[x](missing.md)` literally:\n\n```\n[y](gone.md)\n```\n"},
        )
        assert check_docs.check_file(docs["a.md"], {}) == []


class TestCheckDocsMain:
    def test_explicit_good_file_passes(self, tmp_path, capsys):
        docs = write_docs(tmp_path, {"a.md": "# Fine\n"})
        assert check_docs.main([str(docs["a.md"])]) == 0
        assert "OK" in capsys.readouterr().out

    def test_explicit_bad_file_fails(self, tmp_path, capsys):
        docs = write_docs(tmp_path, {"a.md": "[gone](missing.md)\n"})
        assert check_docs.main([str(docs["a.md"])]) == 1
        assert "broken link" in capsys.readouterr().out

    def test_missing_file_fails(self, tmp_path, capsys):
        assert check_docs.main([str(tmp_path / "absent.md")]) == 1
        assert "missing" in capsys.readouterr().out

    def test_real_documentation_set_passes(self, capsys):
        # The no-argument mode is the CI docs gate over README + docs/.
        assert check_docs.main([]) == 0
        out = capsys.readouterr().out
        assert "all links and anchors resolve" in out


# ----------------------------------------------------------------------
# run_examples — discovery and the smoke harness
# ----------------------------------------------------------------------
def write_examples(tmp_path: Path, files: dict[str, str]) -> Path:
    examples = tmp_path / "examples"
    examples.mkdir(parents=True, exist_ok=True)
    (tmp_path / "src").mkdir(exist_ok=True)
    for name, content in files.items():
        (examples / name).write_text(textwrap.dedent(content), encoding="utf-8")
    return tmp_path


class TestDiscover:
    def test_underscore_files_are_skipped(self, tmp_path, monkeypatch):
        root = write_examples(
            tmp_path, {"demo.py": "", "_helper.py": "", "serving_demo.py": ""}
        )
        monkeypatch.setattr(run_examples, "REPO_ROOT", root)
        names = [p.name for p in run_examples.discover([])]
        assert names == ["demo.py", "serving_demo.py"]

    def test_patterns_filter_by_substring(self, tmp_path, monkeypatch):
        root = write_examples(
            tmp_path, {"demo.py": "", "serving_demo.py": "", "store_walk.py": ""}
        )
        monkeypatch.setattr(run_examples, "REPO_ROOT", root)
        names = [p.name for p in run_examples.discover(["serving", "store"])]
        assert names == ["serving_demo.py", "store_walk.py"]


class TestRunExamplesMain:
    def test_passing_examples_and_smoke_env(self, tmp_path, monkeypatch, capsys):
        root = write_examples(
            tmp_path,
            {
                "ok.py": """\
                    import os
                    import sys

                    assert os.environ["REPRO_EXAMPLES_SMOKE"] == "1"
                    assert any(part.endswith("src") for part in sys.path)
                    print("fixture example ran")
                    """
            },
        )
        monkeypatch.setattr(run_examples, "REPO_ROOT", root)
        assert run_examples.main([]) == 0
        out = capsys.readouterr().out
        assert "ok   examples/ok.py" in out
        assert "all 1 examples passed" in out

    def test_failing_example_is_reported_with_output(
        self, tmp_path, monkeypatch, capsys
    ):
        root = write_examples(
            tmp_path,
            {
                "ok.py": "print('fine')\n",
                "boom.py": """\
                    print("about to explode")
                    raise SystemExit(3)
                    """,
            },
        )
        monkeypatch.setattr(run_examples, "REPO_ROOT", root)
        assert run_examples.main([]) == 1
        out = capsys.readouterr().out
        assert "FAIL examples/boom.py (exit 3" in out
        assert "about to explode" in out  # captured output of the failure
        assert "1 of 2 examples failed" in out

    def test_no_match_is_an_error(self, tmp_path, monkeypatch, capsys):
        root = write_examples(tmp_path, {"demo.py": ""})
        monkeypatch.setattr(run_examples, "REPO_ROOT", root)
        assert run_examples.main(["zzz"]) == 1
        assert "no examples matched" in capsys.readouterr().err

    def test_timeout_is_enforced(self, tmp_path, monkeypatch, capsys):
        root = write_examples(
            tmp_path,
            {
                "sleepy.py": """\
                    import time

                    time.sleep(60)
                    """
            },
        )
        monkeypatch.setattr(run_examples, "REPO_ROOT", root)
        assert run_examples.main(["--timeout", "1"]) == 1
        assert "timed out" in capsys.readouterr().out
