"""Hypothesis property tests on the model class specifications.

These probe invariants that must hold for *any* parameter vector and any
well-formed dataset, not just the hand-picked cases of the unit tests:

* losses are finite and bounded below by the regulariser value at θ;
* the averaged per-example gradients plus r(θ) reproduce the full gradient;
* prediction differences are symmetric, bounded and zero on the diagonal;
* classification losses decrease along the negative gradient (descent
  direction sanity);
* the batched diff engine (``predict_many`` / ``prediction_differences`` /
  ``pairwise_prediction_differences``) agrees with the per-pair loop path
  to 1e-12 for every model family and random θ batch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.models.base import ModelClassSpec
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec
from repro.models.max_entropy import MaxEntropySpec
from repro.models.poisson_regression import PoissonRegressionSpec
from repro.models.ppca import PPCASpec


def dataset_strategy(task: str):
    """Generate small random datasets of the requested task type."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=8, max_value=40))
        d = draw(st.integers(min_value=2, max_value=6))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        if task == "regression":
            y = rng.normal(size=n)
        elif task == "binary":
            y = rng.integers(0, 2, size=n)
        elif task == "multiclass":
            y = rng.integers(0, 3, size=n)
        elif task == "counts":
            y = rng.poisson(lam=2.0, size=n).astype(np.float64)
        else:
            y = None
        return Dataset(X, y)

    return build()


def theta_strategy(size_fn):
    @st.composite
    def build(draw, dataset):
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        scale = draw(st.floats(min_value=0.01, max_value=2.0))
        rng = np.random.default_rng(seed)
        return scale * rng.normal(size=size_fn(dataset))

    return build


class TestGradientConsistency:
    @given(data=dataset_strategy("regression"), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_linear_regression_gradient_is_mean_of_grads(self, data, seed):
        spec = LinearRegressionSpec(regularization=0.1, noise_variance=0.5)
        rng = np.random.default_rng(seed)
        theta = rng.normal(size=data.n_features)
        grads = spec.grads(theta, data)
        np.testing.assert_allclose(grads.mean(axis=0), spec.gradient(theta, data), atol=1e-10)

    @given(data=dataset_strategy("binary"), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_logistic_gradient_is_mean_of_grads(self, data, seed):
        spec = LogisticRegressionSpec(regularization=0.05)
        rng = np.random.default_rng(seed)
        theta = rng.normal(size=data.n_features)
        grads = spec.grads(theta, data)
        np.testing.assert_allclose(grads.mean(axis=0), spec.gradient(theta, data), atol=1e-10)

    @given(data=dataset_strategy("multiclass"), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_max_entropy_gradient_is_mean_of_grads(self, data, seed):
        spec = MaxEntropySpec(n_classes=3, regularization=0.05)
        rng = np.random.default_rng(seed)
        theta = rng.normal(size=3 * data.n_features)
        grads = spec.grads(theta, data)
        np.testing.assert_allclose(grads.mean(axis=0), spec.gradient(theta, data), atol=1e-10)

    @given(data=dataset_strategy("unsupervised"), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_ppca_gradient_is_mean_of_grads(self, data, seed):
        spec = PPCASpec(n_factors=2, sigma2=1.0)
        rng = np.random.default_rng(seed)
        theta = 0.5 * rng.normal(size=2 * data.n_features)
        grads = spec.grads(theta, data)
        np.testing.assert_allclose(grads.mean(axis=0), spec.gradient(theta, data), atol=1e-9)


class TestLossProperties:
    @given(data=dataset_strategy("binary"), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_logistic_loss_finite_and_bounded_below(self, data, seed):
        spec = LogisticRegressionSpec(regularization=0.01)
        rng = np.random.default_rng(seed)
        theta = 3 * rng.normal(size=data.n_features)
        loss = spec.loss(theta, data)
        assert np.isfinite(loss)
        assert loss >= 0.5 * 0.01 * float(theta @ theta) - 1e-12

    @given(data=dataset_strategy("binary"), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_descent_direction_reduces_logistic_loss(self, data, seed):
        spec = LogisticRegressionSpec(regularization=0.01)
        rng = np.random.default_rng(seed)
        theta = rng.normal(size=data.n_features)
        gradient = spec.gradient(theta, data)
        if np.linalg.norm(gradient) < 1e-9:
            return  # already at a stationary point
        step = 1e-4 / max(np.linalg.norm(gradient), 1.0)
        assert spec.loss(theta - step * gradient, data) <= spec.loss(theta, data) + 1e-12

    @given(data=dataset_strategy("regression"), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_regression_loss_nonnegative(self, data, seed):
        spec = LinearRegressionSpec(regularization=0.0)
        rng = np.random.default_rng(seed)
        theta = rng.normal(size=data.n_features)
        assert spec.loss(theta, data) >= 0.0


class TestDifferenceProperties:
    @given(
        data=dataset_strategy("binary"),
        seed_a=st.integers(0, 2**31 - 1),
        seed_b=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_classification_difference_symmetric_bounded(self, data, seed_a, seed_b):
        spec = LogisticRegressionSpec()
        theta_a = np.random.default_rng(seed_a).normal(size=data.n_features)
        theta_b = np.random.default_rng(seed_b).normal(size=data.n_features)
        forward = spec.prediction_difference(theta_a, theta_b, data)
        backward = spec.prediction_difference(theta_b, theta_a, data)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0
        assert spec.prediction_difference(theta_a, theta_a, data) == 0.0

    @given(
        data=dataset_strategy("regression"),
        seed_a=st.integers(0, 2**31 - 1),
        seed_b=st.integers(0, 2**31 - 1),
        seed_c=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_regression_difference_triangle_inequality(self, data, seed_a, seed_b, seed_c):
        # The RMS prediction difference is a pseudometric on parameters.
        spec = LinearRegressionSpec(normalize_difference=False)
        a = np.random.default_rng(seed_a).normal(size=data.n_features)
        b = np.random.default_rng(seed_b).normal(size=data.n_features)
        c = np.random.default_rng(seed_c).normal(size=data.n_features)
        ab = spec.prediction_difference(a, b, data)
        bc = spec.prediction_difference(b, c, data)
        ac = spec.prediction_difference(a, c, data)
        assert ac <= ab + bc + 1e-9

    @given(seed=st.integers(0, 2**31 - 1), scale=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_ppca_difference_scale_invariant(self, seed, scale):
        spec = PPCASpec(n_factors=2)
        dummy = Dataset(np.zeros((2, 3)))  # 3 features, 2 factors
        theta = np.random.default_rng(seed).normal(size=6)
        assert spec.prediction_difference(theta, scale * theta, dummy) == pytest.approx(
            0.0, abs=1e-9
        )


def _batched_case(task: str, n_params_fn, make_spec):
    """Build one (spec, dataset, ref θ, θ batch pair) batched-diff test case."""

    @st.composite
    def build(draw):
        data = draw(dataset_strategy(task))
        spec = make_spec()
        p = n_params_fn(spec, data)
        k = draw(st.integers(min_value=1, max_value=6))
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        scale = draw(st.floats(min_value=0.01, max_value=2.0))
        rng = np.random.default_rng(seed)
        theta_ref = scale * rng.normal(size=p)
        batch_a = scale * rng.normal(size=(k, p))
        batch_b = scale * rng.normal(size=(k, p))
        return spec, data, theta_ref, batch_a, batch_b

    return build()


BATCHED_FAMILIES = {
    "lin": ("regression", lambda s, d: d.n_features,
            lambda: LinearRegressionSpec(regularization=0.01)),
    "lr": ("binary", lambda s, d: d.n_features,
           lambda: LogisticRegressionSpec(regularization=0.01)),
    "me": ("multiclass", lambda s, d: 3 * d.n_features,
           lambda: MaxEntropySpec(n_classes=3, regularization=0.01)),
    "poisson": ("counts", lambda s, d: d.n_features,
                lambda: PoissonRegressionSpec(regularization=0.01)),
    "ppca": ("unsupervised", lambda s, d: 2 * d.n_features,
             lambda: PPCASpec(n_factors=2)),
}


def _assert_batched_matches_loop(spec, data, theta_ref, batch_a, batch_b):
    """The vectorised overrides must agree with the base-class loop path."""
    batched = spec.prediction_differences(theta_ref, batch_a, data)
    loop = ModelClassSpec.prediction_differences(spec, theta_ref, batch_a, data)
    np.testing.assert_allclose(batched, loop, atol=1e-12)

    paired = spec.pairwise_prediction_differences(batch_a, batch_b, data)
    paired_loop = ModelClassSpec.pairwise_prediction_differences(
        spec, batch_a, batch_b, data
    )
    np.testing.assert_allclose(paired, paired_loop, atol=1e-12)

    many = spec.predict_many(batch_a, data.X)
    stacked = np.stack([spec.predict(theta, data.X) for theta in batch_a])
    np.testing.assert_allclose(many, stacked, atol=1e-12)


class TestBatchedDifferenceConsistency:
    """Batched GEMM path ≡ per-pair loop path, per model family."""

    @given(case=_batched_case(*BATCHED_FAMILIES["lin"]))
    @settings(max_examples=25, deadline=None)
    def test_linear_regression(self, case):
        _assert_batched_matches_loop(*case)

    @given(case=_batched_case(*BATCHED_FAMILIES["lr"]))
    @settings(max_examples=25, deadline=None)
    def test_logistic_regression(self, case):
        _assert_batched_matches_loop(*case)

    @given(case=_batched_case(*BATCHED_FAMILIES["me"]))
    @settings(max_examples=20, deadline=None)
    def test_max_entropy(self, case):
        _assert_batched_matches_loop(*case)

    @given(case=_batched_case(*BATCHED_FAMILIES["poisson"]))
    @settings(max_examples=25, deadline=None)
    def test_poisson_regression(self, case):
        _assert_batched_matches_loop(*case)

    @given(case=_batched_case(*BATCHED_FAMILIES["ppca"]))
    @settings(max_examples=15, deadline=None)
    def test_ppca(self, case):
        _assert_batched_matches_loop(*case)

    def test_zero_norm_ppca_batch_matches_loop(self):
        # Degenerate loadings exercise the zero-norm guard of the batched
        # Procrustes path.
        spec = PPCASpec(n_factors=2)
        data = Dataset(np.zeros((2, 3)))
        ref = np.random.default_rng(0).normal(size=6)
        batch = np.vstack([np.zeros(6), np.random.default_rng(1).normal(size=6)])
        batched = spec.prediction_differences(ref, batch, data)
        loop = ModelClassSpec.prediction_differences(spec, ref, batch, data)
        np.testing.assert_allclose(batched, loop, atol=1e-12)
        zero_ref = spec.prediction_differences(np.zeros(6), batch, data)
        np.testing.assert_allclose(zero_ref, np.ones(2))

    def test_pairwise_shape_mismatch_rejected(self):
        from repro.exceptions import ModelSpecError

        spec = LinearRegressionSpec(normalize_difference=False)
        data = Dataset(np.ones((4, 3)), np.zeros(4))
        with pytest.raises(ModelSpecError):
            spec.pairwise_prediction_differences(np.ones((2, 3)), np.ones((3, 3)), data)
