"""Tests for the contract-serving EstimationSession and the BlinkML facade."""

import inspect
import random
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.config import DEFAULT_DELTA, validate_delta
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.core.parameter_sampler import ParameterSampler
from repro.core.sample_size import SampleSizeEstimator
from repro.core.session import EstimationSession, SessionAnswer
from repro.core.statistics import compute_statistics
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.synthetic import gas_like, higgs_like
from repro.exceptions import ContractError, SampleSizeError
from repro.models.base import PrecomputedDiffAccumulator
from repro.models.linear_regression import LinearRegressionSpec
from repro.models.logistic_regression import LogisticRegressionSpec


class SpyLogisticSpec(LogisticRegressionSpec):
    """Counts every model-difference evaluation routed through the spec."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.diff_evaluations = 0

    def diff_accumulator(self, theta_ref, Thetas, dataset):
        self.diff_evaluations += 1
        return super().diff_accumulator(theta_ref, Thetas, dataset)

    def pairwise_diff_accumulator(self, Thetas_a, Thetas_b, dataset):
        self.diff_evaluations += 1
        return super().pairwise_diff_accumulator(Thetas_a, Thetas_b, dataset)

    def prediction_differences(self, theta_ref, Thetas, dataset):
        self.diff_evaluations += 1
        return super().prediction_differences(theta_ref, Thetas, dataset)

    def pairwise_prediction_differences(self, Thetas_a, Thetas_b, dataset):
        self.diff_evaluations += 1
        return super().pairwise_prediction_differences(Thetas_a, Thetas_b, dataset)


class InfeasibleSpec(LinearRegressionSpec):
    """A spec whose model difference never certifies any contract."""

    def diff_accumulator(self, theta_ref, Thetas, dataset):
        return PrecomputedDiffAccumulator(np.ones(np.asarray(Thetas).shape[0]))

    def pairwise_diff_accumulator(self, Thetas_a, Thetas_b, dataset):
        return PrecomputedDiffAccumulator(np.ones(np.asarray(Thetas_a).shape[0]))


@pytest.fixture(scope="module")
def binary_splits():
    data = higgs_like(n_rows=12_000, n_features=10, seed=60)
    return train_holdout_test_split(data, SplitSpec(0.1, 0.1), rng=np.random.default_rng(6))


def make_session(spec, splits, **kwargs):
    kwargs.setdefault("initial_sample_size", 500)
    kwargs.setdefault("n_parameter_samples", 32)
    kwargs.setdefault("rng", 0)
    # These tests assert exact in-memory hit/miss economics; a live warm
    # tier (the REPRO_WARM_CACHE_DIR CI run) would legitimately serve
    # cross-session repeats from disk and change the counts.  The warm
    # tier's own semantics live in tests/test_warm_cache.py.
    kwargs.setdefault("warm_cache", False)
    return EstimationSession(spec, splits.train, splits.holdout, **kwargs)


class TestSessionCache:
    def test_second_contract_is_answered_from_cache(self, binary_splits):
        spec = SpyLogisticSpec(regularization=1e-3)
        session = make_session(spec, binary_splits)
        first = session.answer(ApproximationContract(epsilon=0.3, delta=0.05))
        evaluations_after_first = spec.diff_evaluations
        assert evaluations_after_first > 0
        assert not first.from_cache

        # Different ε AND different δ: still served by quantile lookup on
        # the cached sorted vector — zero new model-difference evaluations.
        second = session.answer(ApproximationContract(epsilon=0.05, delta=0.2))
        assert isinstance(second, SessionAnswer)
        assert second.from_cache
        assert spec.diff_evaluations == evaluations_after_first

    def test_cached_vector_is_shared_and_sorted(self, binary_splits):
        spec = SpyLogisticSpec(regularization=1e-3)
        session = make_session(spec, binary_splits)
        theta0 = session.initial_model.theta
        first = session.sorted_differences(theta0, session.initial_sample_size)
        second = session.sorted_differences(theta0, session.initial_sample_size)
        assert first is second  # the literal cached array, not a copy
        assert np.all(np.diff(first) >= 0)
        assert session.diff_cache_hits == 1
        assert session.diff_cache_misses == 1

    def test_cache_misses_on_different_theta_and_n(self, binary_splits):
        spec = SpyLogisticSpec(regularization=1e-3)
        session = make_session(spec, binary_splits)
        theta0 = session.initial_model.theta
        session.sorted_differences(theta0, session.initial_sample_size)
        evaluations = spec.diff_evaluations

        # Different n: miss.
        session.sorted_differences(theta0, 2 * session.initial_sample_size)
        assert session.diff_cache_misses == 2
        assert spec.diff_evaluations > evaluations

        # Different θ: miss.
        evaluations = spec.diff_evaluations
        session.sorted_differences(theta0 + 0.01, session.initial_sample_size)
        assert session.diff_cache_misses == 3
        assert spec.diff_evaluations > evaluations

    def test_repeated_train_to_same_contract_is_free(self, binary_splits):
        spec = SpyLogisticSpec(regularization=1e-3)
        session = make_session(spec, binary_splits)
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        first = session.train_to(contract)
        assert not first.used_initial_model  # the search actually ran
        evaluations = spec.diff_evaluations

        second = session.train_to(contract)
        # Accuracy estimates, size search and the final model all come from
        # session caches: no new diff evaluations, no retraining.
        assert spec.diff_evaluations == evaluations
        assert second.metadata["model_cache_hit"]
        assert second.sample_size == first.sample_size
        assert second.estimated_epsilon == first.estimated_epsilon
        np.testing.assert_array_equal(second.model.theta, first.model.theta)

    def test_loose_contract_returns_initial_model(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        result = session.train_to(ApproximationContract(epsilon=0.5, delta=0.05))
        assert result.used_initial_model
        assert result.model is session.initial_model


class TestBoundedCaches:
    def test_diff_cache_capacity_never_exceeded(self, binary_splits):
        capacity = 4
        session = make_session(
            LogisticRegressionSpec(regularization=1e-3),
            binary_splits,
            diff_cache_entries=capacity,
        )
        theta0 = session.initial_model.theta
        sizes = np.linspace(500, session.full_size - 1, 12).astype(int)
        for n in sizes:
            session.sorted_differences(theta0, int(n))
            assert session.cache_stats()["diff"].entries <= capacity
        stats = session.cache_stats()["diff"]
        assert stats.entries == capacity
        assert stats.evictions == len(set(sizes.tolist())) - capacity
        assert stats.misses == len(set(sizes.tolist()))

    def test_evicted_vector_recomputes_identically(self, binary_splits):
        session = make_session(
            LogisticRegressionSpec(regularization=1e-3),
            binary_splits,
            diff_cache_entries=2,
        )
        theta0 = session.initial_model.theta
        original = session.sorted_differences(theta0, 500).copy()
        for n in (600, 700, 800):  # push the n=500 vector out of the LRU
            session.sorted_differences(theta0, n)
        recomputed = session.sorted_differences(theta0, 500)
        # The recompute rescales the same cached base draws, so the result
        # is bitwise identical to the evicted vector.
        np.testing.assert_array_equal(recomputed, original)
        assert session.cache_stats()["diff"].evictions > 0

    def test_diff_cache_byte_bound(self, binary_splits):
        # k=32 float64 differences -> 256 bytes per vector; a 700-byte
        # budget holds at most two vectors.
        session = make_session(
            LogisticRegressionSpec(regularization=1e-3),
            binary_splits,
            diff_cache_entries=None,
            diff_cache_bytes=700,
        )
        theta0 = session.initial_model.theta
        for n in (500, 600, 700, 800):
            session.sorted_differences(theta0, n)
        stats = session.cache_stats()["diff"]
        assert stats.bytes <= 700
        assert stats.entries == 2
        assert stats.evictions == 2

    def test_cache_stats_snapshot(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        stats = session.cache_stats()
        assert set(stats) == {"diff", "model", "size"}
        assert stats["diff"].requests == 0
        session.answer(ApproximationContract(epsilon=0.3, delta=0.05))
        session.answer(ApproximationContract(epsilon=0.3, delta=0.10))
        stats = session.cache_stats()
        assert stats["diff"].hits == 1
        assert stats["diff"].misses == 1
        assert stats["diff"].hit_rate == pytest.approx(0.5)

    def test_model_cache_eviction_cannot_lose_initial_model(self, binary_splits):
        session = make_session(
            LogisticRegressionSpec(regularization=1e-3),
            binary_splits,
            model_cache_entries=1,
        )
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        result = session.train_to(contract)  # trains m_n, evicting the n0 entry
        assert not result.used_initial_model
        # m_0 is pinned outside the cache: still reachable and identical.
        assert session.initial_model.n_train == session.initial_sample_size
        second = session.train_to(ApproximationContract(epsilon=0.5, delta=0.05))
        assert second.model is session.initial_model


class TestFullDataShortCircuit:
    def test_full_data_estimate_skips_diff_cache(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        theta0 = session.initial_model.theta
        N = session.full_size
        for n in (N, N + 1, N + 500):  # distinct n >= N used to each cache a zeros vector
            estimate = session.accuracy_estimate(theta0, n)
            assert estimate.epsilon == 0.0
            assert not estimate.sampled_differences.any()
        stats = session.cache_stats()["diff"]
        assert stats.entries == 0
        assert stats.requests == 0  # never touched the cache

    def test_full_data_vector_is_shared_and_read_only(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        theta0 = session.initial_model.theta
        first = session.sorted_differences(theta0, session.full_size)
        second = session.sorted_differences(theta0, session.full_size + 7)
        assert first is second  # one shared zeros vector, not one per n
        assert first.flags.writeable is False


class TestConcurrentServing:
    N_THREADS = 8

    def test_concurrent_answers_bitwise_match_serial(self, binary_splits):
        """Acceptance: 8 threads x shuffled mix of 4 contracts == serial run."""
        spec = LogisticRegressionSpec(regularization=1e-3)
        contracts = [
            ApproximationContract(epsilon=0.05, delta=0.05),
            ApproximationContract(epsilon=0.10, delta=0.01),
            ApproximationContract(epsilon=0.20, delta=0.10),
            ApproximationContract(epsilon=0.30, delta=0.20),
        ]
        serial_session = make_session(spec, binary_splits)
        serial = {
            contract: serial_session.answer(contract) for contract in contracts
        }

        threaded_session = make_session(spec, binary_splits)
        workload = contracts * self.N_THREADS
        random.Random(0).shuffle(workload)
        with ThreadPoolExecutor(self.N_THREADS) as pool:
            answers = list(pool.map(threaded_session.answer, workload))

        for contract, answer in zip(workload, answers):
            baseline = serial[contract]
            assert answer.satisfied == baseline.satisfied
            assert answer.estimate.epsilon == baseline.estimate.epsilon  # bitwise
            np.testing.assert_array_equal(
                answer.estimate.sampled_differences,
                baseline.estimate.sampled_differences,
            )
        # Single-flight: the k streamed GEMMs ran exactly once; every other
        # request (including waiters on the in-flight compute) was a hit.
        stats = threaded_session.cache_stats()["diff"]
        assert stats.misses == 1
        assert stats.hits == len(workload) - 1
        assert sum(1 for answer in answers if not answer.from_cache) == 1

    def test_concurrent_accuracy_estimates_match_serial(self, binary_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        sizes = [500, 900, 1700, 2600, 4000, 6000]

        serial_session = make_session(spec, binary_splits)
        theta0 = serial_session.initial_model.theta
        serial = {
            n: serial_session.accuracy_estimate(theta0, n).epsilon for n in sizes
        }

        threaded_session = make_session(spec, binary_splits)
        theta0 = threaded_session.initial_model.theta
        workload = sizes * 4
        random.Random(1).shuffle(workload)
        with ThreadPoolExecutor(self.N_THREADS) as pool:
            epsilons = list(
                pool.map(lambda n: threaded_session.accuracy_estimate(theta0, n).epsilon, workload)
            )
        for n, epsilon in zip(workload, epsilons):
            assert epsilon == serial[n]  # bitwise: same cached base draws
        stats = threaded_session.cache_stats()["diff"]
        assert stats.misses == len(sizes)
        assert stats.hits == len(workload) - len(sizes)

    def test_concurrent_train_to_matches_serial(self, binary_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        contracts = [
            ApproximationContract(epsilon=0.03, delta=0.05),
            ApproximationContract(epsilon=0.04, delta=0.05),
        ]
        serial_session = make_session(spec, binary_splits)
        serial = {contract: serial_session.train_to(contract) for contract in contracts}

        threaded_session = make_session(spec, binary_splits)
        workload = contracts * 4
        random.Random(2).shuffle(workload)
        with ThreadPoolExecutor(self.N_THREADS) as pool:
            results = list(pool.map(threaded_session.train_to, workload))

        for contract, result in zip(workload, results):
            baseline = serial[contract]
            assert result.sample_size == baseline.sample_size
            assert result.estimated_epsilon == baseline.estimated_epsilon
            np.testing.assert_array_equal(result.model.theta, baseline.model.theta)
        # Each distinct contract ran its size search exactly once.
        assert threaded_session.cache_stats()["size"].misses == len(contracts)

    def test_concurrent_identical_contracts_single_flight(self, binary_splits):
        spec = SpyLogisticSpec(regularization=1e-3)
        session = make_session(spec, binary_splits)
        contract = ApproximationContract(epsilon=0.3, delta=0.05)
        with ThreadPoolExecutor(self.N_THREADS) as pool:
            answers = list(
                pool.map(session.answer, [contract] * (self.N_THREADS * 4))
            )
        assert sum(1 for answer in answers if not answer.from_cache) == 1
        epsilons = {answer.estimate.epsilon for answer in answers}
        assert len(epsilons) == 1


class TestInfeasiblePath:
    def test_infeasible_search_trains_on_full_data(self):
        data = gas_like(n_rows=2_000, n_features=5, seed=61)
        splits = train_holdout_test_split(data, SplitSpec(0.2, 0.2), rng=np.random.default_rng(7))
        session = EstimationSession(
            InfeasibleSpec(),
            splits.train,
            splits.holdout,
            initial_sample_size=200,
            n_parameter_samples=16,
            rng=0,
        )
        result = session.train_to(ApproximationContract(epsilon=0.1, delta=0.05))
        assert result.metadata["size_search_feasible"] is False
        assert result.metadata["trained_on_full_data"] is True
        assert result.sample_size == splits.train.n_rows
        assert result.model.n_train == splits.train.n_rows
        assert not result.used_initial_model

    def test_infeasible_search_through_facade(self):
        data = gas_like(n_rows=2_000, n_features=5, seed=62)
        splits = train_holdout_test_split(data, SplitSpec(0.2, 0.2), rng=np.random.default_rng(8))
        trainer = BlinkML(InfeasibleSpec(), initial_sample_size=200, n_parameter_samples=16, seed=0)
        result = trainer.train(splits.train, splits.holdout, ApproximationContract(epsilon=0.1))
        assert result.metadata["size_search_feasible"] is False
        assert result.metadata["trained_on_full_data"] is True
        assert result.sample_size == splits.train.n_rows


class TestFacade:
    def test_train_matches_explicit_session(self, binary_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        contract = ApproximationContract(epsilon=0.04, delta=0.05)
        via_facade = BlinkML(
            spec, initial_sample_size=500, n_parameter_samples=32, seed=42
        ).train(binary_splits.train, binary_splits.holdout, contract)
        via_session = BlinkML(
            spec, initial_sample_size=500, n_parameter_samples=32, seed=42
        ).session(binary_splits.train, binary_splits.holdout).train_to(contract)
        assert via_facade.sample_size == via_session.sample_size
        assert via_facade.estimated_epsilon == via_session.estimated_epsilon
        np.testing.assert_array_equal(via_facade.model.theta, via_session.model.theta)

    def test_same_seed_same_outputs(self, binary_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        contract = ApproximationContract(epsilon=0.04, delta=0.05)
        results = [
            BlinkML(spec, initial_sample_size=500, n_parameter_samples=32, seed=7).train(
                binary_splits.train, binary_splits.holdout, contract
            )
            for _ in range(2)
        ]
        assert results[0].sample_size == results[1].sample_size
        assert results[0].estimated_epsilon == results[1].estimated_epsilon
        np.testing.assert_array_equal(results[0].model.theta, results[1].model.theta)


class TestReadOnlyDifferences:
    def test_sampled_differences_are_read_only(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        answer = session.answer(ApproximationContract(epsilon=0.1, delta=0.05))
        differences = answer.estimate.sampled_differences
        assert differences.flags.writeable is False
        with pytest.raises(ValueError):
            differences[0] = 123.0

    def test_construction_does_not_freeze_callers_array(self):
        from repro.core.accuracy import AccuracyEstimate

        mine = np.array([0.3, 0.1, 0.2])
        estimate = AccuracyEstimate(epsilon=0.3, delta=0.05, sampled_differences=mine)
        assert estimate.sampled_differences.flags.writeable is False
        mine[0] = 0.9  # the caller's own array stays writable
        assert estimate.sampled_differences[0] == 0.9  # documented aliasing


class TestDefaultDelta:
    def test_contract_default_is_config_constant(self):
        assert ApproximationContract(epsilon=0.1).delta == DEFAULT_DELTA
        assert (
            inspect.signature(BlinkML.train_with_accuracy).parameters["delta"].default
            == DEFAULT_DELTA
        )
        assert (
            inspect.signature(ApproximationContract.from_accuracy)
            .parameters["delta"]
            .default
            == DEFAULT_DELTA
        )

    def test_validate_delta(self):
        assert validate_delta(0.2) == 0.2
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ContractError):
                validate_delta(bad)

    def test_session_rejects_invalid_delta(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        with pytest.raises(ContractError):
            session.accuracy_estimate(session.initial_model.theta, 500, delta=1.5)


class TestBatchedProbes:
    @pytest.fixture(scope="class")
    def search_setup(self, binary_splits):
        spec = LogisticRegressionSpec(regularization=1e-3)
        n0 = 500
        sample = binary_splits.train.take(np.arange(n0))
        model = spec.fit(sample)
        statistics = compute_statistics(spec, model.theta, sample)
        return spec, binary_splits, model, statistics, n0

    def test_batch_outcomes_match_single_probes(self, search_setup):
        spec, splits, model, stats, n0 = search_setup
        estimator = SampleSizeEstimator(spec, splits.holdout, n_parameter_samples=32)
        contract = ApproximationContract(epsilon=0.05, delta=0.05)
        sampler = ParameterSampler(stats, rng=np.random.default_rng(5))
        N = splits.train.n_rows
        candidates = [n0, N // 4, N // 2, N]
        batched = estimator.contract_satisfied_batch(
            model.theta, n0, candidates, N, contract, sampler
        )
        singles = [
            estimator.contract_satisfied(model.theta, n0, candidate, N, contract, sampler)
            for candidate in candidates
        ]
        # The cached base draws make both paths deterministic and identical.
        assert batched == singles

    def test_batched_search_needs_fewer_rounds(self, search_setup):
        spec, splits, model, stats, n0 = search_setup
        estimator = SampleSizeEstimator(spec, splits.holdout, n_parameter_samples=32)
        contract = ApproximationContract(epsilon=0.03, delta=0.05)
        N = splits.train.n_rows
        bisect = estimator.estimate(
            model.theta, n0, N, contract, stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(5)),
            probe_batch=1,
        )
        batched = estimator.estimate(
            model.theta, n0, N, contract, stats,
            sampler=ParameterSampler(stats, rng=np.random.default_rng(5)),
            probe_batch=3,
        )
        assert batched.feasible and bisect.feasible
        assert n0 <= batched.sample_size <= N
        # 3 candidates per pass narrow the bracket 4x per round instead of
        # 2x, so the number of stacked passes drops from ~log2 to ~log4.
        bisect_rounds = len(bisect.probed_sizes) - 2  # minus the endpoints
        batched_rounds = (len(batched.probed_sizes) - 2 + 2) // 3
        assert batched_rounds < bisect_rounds
        # Both land on a size certified by the same shared-draw check.
        sampler = ParameterSampler(stats, rng=np.random.default_rng(5))
        assert estimator.contract_satisfied(
            model.theta, n0, batched.sample_size, N, contract, sampler
        )

    def test_batched_schedule_lands_on_bisection_answer(self, search_setup):
        # Under the (empirical, shared-draw) monotonicity of the satisfied(n)
        # predicate, the batched bracketing converges to the same minimum n
        # as the paper's plain bisection — this pins the default facade
        # schedule (probe_batch=3) against the pre-refactor behaviour
        # (probe_batch=1) across several contracts.
        spec, splits, model, stats, n0 = search_setup
        estimator = SampleSizeEstimator(spec, splits.holdout, n_parameter_samples=32)
        N = splits.train.n_rows
        for epsilon in (0.02, 0.03, 0.05):
            contract = ApproximationContract(epsilon=epsilon, delta=0.05)
            results = [
                estimator.estimate(
                    model.theta, n0, N, contract, stats,
                    sampler=ParameterSampler(stats, rng=np.random.default_rng(5)),
                    probe_batch=probe_batch,
                )
                for probe_batch in (1, 3)
            ]
            assert results[0].sample_size == results[1].sample_size
            assert results[0].feasible == results[1].feasible

    def test_probe_batch_validated(self, search_setup):
        spec, splits, model, stats, n0 = search_setup
        estimator = SampleSizeEstimator(spec, splits.holdout, n_parameter_samples=16)
        with pytest.raises(SampleSizeError):
            estimator.estimate(
                model.theta, n0, splits.train.n_rows,
                ApproximationContract(epsilon=0.05), stats, probe_batch=0,
            )


class TestRegistryIntegrationSurface:
    """Byte accounting, externally resized caps and idle timestamps.

    These are the hooks the cross-session registry (repro.core.registry)
    drives; the fleet-level behaviour is tested in test_core_registry.py.
    """

    def test_cache_bytes_sums_the_three_caches(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        assert session.cache_bytes() == 0
        session.answer(ApproximationContract.from_accuracy(0.85))
        expected = sum(stats.bytes for stats in session.cache_stats().values())
        assert session.cache_bytes() == expected > 0

    def test_resize_cache_budget_caps_and_evicts(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        theta = session.initial_model.theta
        for n in (600, 700, 800, 900, 1000, 1100):
            session.accuracy_estimate(theta, n)
        before = session.cache_bytes()
        # One 32-sample vector is 256 bytes; cap the whole session well
        # below the six vectors currently held.
        session.resize_cache_budget(1024)
        caps = session.cache_byte_caps()
        assert sum(caps.values()) <= 1024
        assert caps["diff"] == int(1024 * EstimationSession.CACHE_BUDGET_SPLIT["diff"])
        assert session.cache_bytes() < before
        assert session.cache_bytes() <= 1024
        assert session.cache_stats()["diff"].evictions > 0
        # Growing the budget again raises the caps without dropping entries.
        held = session.cache_stats()["diff"].entries
        session.resize_cache_budget(1 << 20)
        assert session.cache_stats()["diff"].entries == held
        with pytest.raises(Exception):
            session.resize_cache_budget(0)

    def test_evicted_vectors_recompute_bitwise_identically(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        theta = session.initial_model.theta
        baseline = {n: session.sorted_differences(theta, n).copy() for n in (600, 800, 1000)}
        session.resize_cache_budget(512)  # evicts most vectors
        for n, expected in baseline.items():
            np.testing.assert_array_equal(session.sorted_differences(theta, n), expected)

    def test_idle_clock_refreshes_on_serving_calls(self, binary_splits):
        session = make_session(LogisticRegressionSpec(regularization=1e-3), binary_splits)
        opened = session.last_used_at
        assert session.idle_seconds >= 0.0
        session.answer(ApproximationContract.from_accuracy(0.85))
        after_answer = session.last_used_at
        assert after_answer >= opened
        session.sorted_differences(session.initial_model.theta, 700)
        assert session.last_used_at >= after_answer
