"""Tests for the fast parameter sampler (Section 4.3 optimisations)."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import compute_statistics
from repro.data.dataset import Dataset
from repro.exceptions import StatisticsError
from repro.models.linear_regression import LinearRegressionSpec


@pytest.fixture(scope="module")
def statistics_and_theta():
    rng = np.random.default_rng(20)
    X = rng.normal(size=(3000, 4))
    y = X @ np.array([1.0, 0.0, -1.0, 2.0]) + rng.normal(scale=0.2, size=3000)
    data = Dataset(X, y)
    spec = LinearRegressionSpec(regularization=1e-2)
    model = spec.fit(data)
    stats = compute_statistics(spec, model.theta, data, method="observed_fisher")
    return stats, model.theta


class TestAlpha:
    def test_formula(self):
        assert ParameterSampler.alpha(100, 1000) == pytest.approx(1 / 100 - 1 / 1000)

    def test_alpha_zero_when_n_equals_N(self):
        assert ParameterSampler.alpha(500, 500) == 0.0

    def test_invalid_sizes(self):
        with pytest.raises(StatisticsError):
            ParameterSampler.alpha(0, 10)
        with pytest.raises(StatisticsError):
            ParameterSampler.alpha(20, 10)


class TestBaseSamples:
    def test_caching_reuses_draws(self, statistics_and_theta):
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(0))
        a = sampler.base_samples(32)
        b = sampler.base_samples(32)
        assert a is b  # same cached array

    def test_tags_are_independent(self, statistics_and_theta):
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(0))
        a = sampler.base_samples(32, tag="one")
        b = sampler.base_samples(32, tag="two")
        assert not np.allclose(a, b)

    def test_smaller_request_is_prefix_of_larger(self, statistics_and_theta):
        # Two callers sharing a tag but asking for different counts must
        # share draws (Section 4.3 sampling-by-scaling reuse): a count-64
        # request returns a prefix of a prior count-128 request.
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(7))
        large = sampler.base_samples(128)
        small = sampler.base_samples(64)
        np.testing.assert_array_equal(small, large[:64])

    def test_larger_request_extends_cached_prefix(self, statistics_and_theta):
        # Growing the cache must keep earlier draws as a prefix rather than
        # redrawing an independent block.
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(8))
        small = sampler.base_samples(64).copy()
        large = sampler.base_samples(128)
        assert large.shape[0] == 128
        np.testing.assert_array_equal(large[:64], small)

    def test_prefix_reuse_is_per_tag(self, statistics_and_theta):
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(9))
        a = sampler.base_samples(48, tag="one")
        b = sampler.base_samples(24, tag="two")
        assert not np.allclose(a[:24], b)

    def test_no_cache_mode(self, statistics_and_theta):
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(0), cache_base_samples=False)
        a = sampler.base_samples(16)
        b = sampler.base_samples(16)
        assert not np.allclose(a, b)

    def test_base_covariance_matches_factor(self, statistics_and_theta):
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(1))
        samples = sampler.base_samples(50_000)
        empirical = samples.T @ samples / samples.shape[0]
        expected = stats.covariance.dense()
        np.testing.assert_allclose(
            empirical, expected, rtol=0.1, atol=0.02 * np.max(np.abs(expected))
        )

    def test_invalid_count(self, statistics_and_theta):
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats)
        with pytest.raises(StatisticsError):
            sampler.base_samples(0)

    def test_base_samples_are_read_only(self, statistics_and_theta):
        # Regression: the cached block used to be handed out writable, so a
        # caller mutating its draws silently corrupted every later rescaled
        # sample for the tag.
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(10))
        block = sampler.base_samples(32)
        assert block.flags.writeable is False
        with pytest.raises(ValueError):
            block[0, 0] = 123.0
        # Prefix views and grown blocks inherit the protection.
        assert sampler.base_samples(16).flags.writeable is False
        assert sampler.base_samples(64).flags.writeable is False

    def test_mutation_attempt_cannot_corrupt_later_draws(self, statistics_and_theta):
        stats, theta = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(11))
        before = sampler.sample_around(theta, n=100, N=10_000, count=16).copy()
        with pytest.raises(ValueError):
            sampler.base_samples(16)[:] = 0.0
        after = sampler.sample_around(theta, n=100, N=10_000, count=16)
        np.testing.assert_array_equal(before, after)

    def test_concurrent_requests_share_one_block(self, statistics_and_theta):
        # Concurrent growth requests must serialise: every returned array is
        # a prefix of the final cached block, never an independent redraw.
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(12))
        counts = [16, 32, 48, 64, 96, 128] * 4

        with ThreadPoolExecutor(8) as pool:
            results = list(pool.map(sampler.base_samples, counts))

        final = sampler.base_samples(max(counts))
        for count, block in zip(counts, results):
            assert block.shape[0] == count
            np.testing.assert_array_equal(block, final[:count])


class TestScaledSampling:
    def test_sample_around_mean_and_scale(self, statistics_and_theta):
        stats, theta = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(2))
        n, N = 1000, 100_000
        samples = sampler.sample_around(theta, n=n, N=N, count=30_000)
        alpha = 1 / n - 1 / N
        np.testing.assert_allclose(samples.mean(axis=0), theta, atol=0.02)
        empirical_cov = np.cov(samples.T)
        expected = alpha * stats.covariance.dense()
        np.testing.assert_allclose(
            empirical_cov, expected, rtol=0.15, atol=0.03 * np.max(np.abs(expected))
        )

    def test_sampling_by_scaling_consistency(self, statistics_and_theta):
        # Samples for different n must be exact rescalings of the same base
        # draws (the Section 4.3 "sampling by scaling" property).
        stats, theta = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(3))
        N = 50_000
        samples_a = sampler.sample_around(theta, n=1000, N=N, count=64)
        samples_b = sampler.sample_around(theta, n=4000, N=N, count=64)
        alpha_a = 1 / 1000 - 1 / N
        alpha_b = 1 / 4000 - 1 / N
        rescaled = theta + (samples_a - theta) * np.sqrt(alpha_b / alpha_a)
        np.testing.assert_allclose(samples_b, rescaled, atol=1e-10)

    def test_sample_around_with_n_equal_N_is_degenerate(self, statistics_and_theta):
        stats, theta = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(4))
        samples = sampler.sample_around(theta, n=500, N=500, count=8)
        np.testing.assert_allclose(samples, np.tile(theta, (8, 1)))

    def test_dimension_mismatch_rejected(self, statistics_and_theta):
        stats, _ = statistics_and_theta
        sampler = ParameterSampler(stats)
        with pytest.raises(StatisticsError):
            sampler.sample_around(np.zeros(stats.dimension + 1), n=10, N=100, count=4)


class TestTwoStageSampling:
    def test_marginal_covariance_of_theta_N(self, statistics_and_theta):
        # Marginally, θ_N | θ_0 should have covariance (1/n0 − 1/N)·Cov
        # because the two stages add independent noise.
        stats, theta = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(5))
        n0, n, N = 1000, 5000, 100_000
        _, theta_N = sampler.two_stage_samples(theta, n0=n0, n=n, N=N, count=40_000)
        expected_alpha = 1 / n0 - 1 / N
        empirical_cov = np.cov(theta_N.T)
        expected = expected_alpha * stats.covariance.dense()
        np.testing.assert_allclose(
            empirical_cov, expected, rtol=0.15, atol=0.03 * np.max(np.abs(expected))
        )

    def test_stage_one_variance_shrinks_with_larger_n(self, statistics_and_theta):
        stats, theta = statistics_and_theta
        sampler = ParameterSampler(stats, rng=np.random.default_rng(6))
        theta_n_small, _ = sampler.two_stage_samples(theta, n0=1000, n=2000, N=50_000, count=2000)
        theta_n_large, _ = sampler.two_stage_samples(theta, n0=1000, n=40_000, N=50_000, count=2000)
        spread_small = np.var(theta_n_small - theta, axis=0).sum()
        spread_large = np.var(theta_n_large - theta, axis=0).sum()
        assert spread_large > spread_small  # larger n -> farther from θ_0 ...

    def test_candidate_below_n0_rejected(self, statistics_and_theta):
        stats, theta = statistics_and_theta
        sampler = ParameterSampler(stats)
        with pytest.raises(StatisticsError):
            sampler.two_stage_samples(theta, n0=1000, n=500, N=10_000, count=4)
