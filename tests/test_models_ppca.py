"""Tests for the PPCA model class specification."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import ModelSpecError
from repro.models.ppca import PPCASpec


@pytest.fixture(scope="module")
def low_rank_data():
    rng = np.random.default_rng(5)
    n, d, q = 800, 10, 3
    loadings = rng.normal(scale=2.0, size=(d, q))
    latent = rng.normal(size=(n, q))
    X = latent @ loadings.T + rng.normal(scale=0.5, size=(n, d))
    return Dataset(X - X.mean(axis=0)), loadings


class TestConfiguration:
    def test_parameter_count(self, low_rank_data):
        data, _ = low_rank_data
        spec = PPCASpec(n_factors=3)
        assert spec.n_parameters(data) == data.n_features * 3

    def test_invalid_factor_count(self):
        with pytest.raises(ModelSpecError):
            PPCASpec(n_factors=0)

    def test_invalid_sigma2(self):
        with pytest.raises(ModelSpecError):
            PPCASpec(sigma2=0.0)

    def test_factors_exceeding_dimension(self, low_rank_data):
        data, _ = low_rank_data
        with pytest.raises(ModelSpecError):
            PPCASpec(n_factors=50).n_parameters(data)

    def test_initial_parameters_nonzero_and_deterministic(self, low_rank_data):
        data, _ = low_rank_data
        spec = PPCASpec(n_factors=3)
        a = spec.initial_parameters(data)
        b = spec.initial_parameters(data)
        assert np.linalg.norm(a) > 0
        np.testing.assert_array_equal(a, b)


class TestObjective:
    def test_loss_matches_dense_gaussian_likelihood(self, low_rank_data):
        data, _ = low_rank_data
        spec = PPCASpec(n_factors=3, sigma2=0.7)
        rng = np.random.default_rng(6)
        theta = 0.3 * rng.normal(size=spec.n_parameters(data))
        Theta = spec.reshape(theta, data.n_features)
        C = Theta @ Theta.T + 0.7 * np.eye(data.n_features)
        S = data.X.T @ data.X / data.n_rows
        expected = 0.5 * (
            data.n_features * np.log(2 * np.pi)
            + np.linalg.slogdet(C)[1]
            + np.trace(np.linalg.solve(C, S))
        )
        assert spec.loss(theta, data) == pytest.approx(expected, rel=1e-8)

    def test_gradient_matches_numerical(self, low_rank_data, gradient_checker):
        data, _ = low_rank_data
        small = data.take(np.arange(150))
        spec = PPCASpec(n_factors=2, sigma2=1.0)
        rng = np.random.default_rng(7)
        theta = 0.4 * rng.normal(size=spec.n_parameters(small))
        numerical = gradient_checker(lambda t: spec.loss(t, small), theta, eps=1e-5)
        np.testing.assert_allclose(spec.gradient(theta, small), numerical, atol=1e-4)

    def test_per_example_gradients_average_to_gradient(self, low_rank_data):
        data, _ = low_rank_data
        spec = PPCASpec(n_factors=3, sigma2=1.0)
        rng = np.random.default_rng(8)
        theta = 0.3 * rng.normal(size=spec.n_parameters(data))
        per_example = spec.per_example_gradients(theta, data)
        np.testing.assert_allclose(
            per_example.mean(axis=0), spec.gradient(theta, data), atol=1e-10
        )

    def test_no_closed_form_hessian(self):
        assert not PPCASpec().has_closed_form_hessian


class TestFitPredictDiff:
    def test_fit_captures_principal_subspace(self, low_rank_data):
        data, loadings = low_rank_data
        spec = PPCASpec(n_factors=3, sigma2=0.25)
        model = spec.fit(data, max_iterations=300)
        Theta = spec.reshape(model.theta, data.n_features)
        # The fitted loading columns must span (close to) the true subspace:
        # projecting the true loadings onto the fitted span should retain
        # most of their norm.
        fitted_basis, _ = np.linalg.qr(Theta)
        projected = fitted_basis @ (fitted_basis.T @ loadings)
        retained = np.linalg.norm(projected) / np.linalg.norm(loadings)
        assert retained > 0.9

    def test_reconstruction_reduces_error_versus_zero(self, low_rank_data):
        data, _ = low_rank_data
        spec = PPCASpec(n_factors=3, sigma2=0.25)
        model = spec.fit(data, max_iterations=300)
        reconstruction = spec.reconstruct(model.theta, data.X)
        error = np.linalg.norm(data.X - reconstruction)
        assert error < np.linalg.norm(data.X)

    def test_predict_shape(self, low_rank_data):
        data, _ = low_rank_data
        spec = PPCASpec(n_factors=3)
        theta = spec.initial_parameters(data)
        scores = spec.predict(theta, data.X)
        assert scores.shape == (data.n_rows, 3)

    def test_difference_is_rotation_aligned_cosine(self, low_rank_data):
        data, _ = low_rank_data
        d = data.n_features
        spec = PPCASpec(n_factors=2)
        rng = np.random.default_rng(9)
        Theta = rng.normal(size=(d, 2))
        a = Theta.reshape(-1)
        # Rescaling, sign flips and factor rotations describe the same PPCA
        # distribution, so the difference must vanish for all of them.
        assert spec.prediction_difference(a, 2.0 * a, data) == pytest.approx(0.0, abs=1e-9)
        assert spec.prediction_difference(a, -a, data) == pytest.approx(0.0, abs=1e-9)
        angle = 0.7
        rotation = np.array(
            [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
        )
        rotated = (Theta @ rotation).reshape(-1)
        assert spec.prediction_difference(a, rotated, data) == pytest.approx(0.0, abs=1e-9)

    def test_difference_one_for_orthogonal_subspaces(self, low_rank_data):
        data, _ = low_rank_data
        d = data.n_features
        spec = PPCASpec(n_factors=1)
        theta_a = np.zeros(d)
        theta_b = np.zeros(d)
        theta_a[0] = 1.0  # factor along feature 0
        theta_b[1] = 1.0  # factor along feature 1
        assert spec.prediction_difference(theta_a, theta_b, data) == pytest.approx(1.0)

    def test_difference_zero_vector(self, low_rank_data):
        data, _ = low_rank_data
        d = data.n_features
        spec = PPCASpec(n_factors=2)
        assert spec.prediction_difference(np.zeros(2 * d), np.ones(2 * d), data) == 1.0

    def test_describe_includes_factors(self):
        description = PPCASpec(n_factors=7, sigma2=0.5).describe()
        assert description["n_factors"] == 7
        assert description["sigma2"] == 0.5
