"""Tests for the four optimizers and the dispatching driver.

Every optimizer is exercised on the same battery of convex problems (with
known solutions) plus the Rosenbrock function for the quasi-Newton methods.
"""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optim import (
    BFGS,
    LBFGS,
    GradientDescent,
    NewtonMethod,
    FunctionObjective,
    minimize,
    optimizer_for_dimension,
)
from repro.optim.base import check_finite


def make_quadratic(d=5, seed=0, condition=10.0):
    """Random strictly convex quadratic with a known minimiser."""
    rng = np.random.default_rng(seed)
    eigenvalues = np.linspace(1.0, condition, d)
    basis, _ = np.linalg.qr(rng.normal(size=(d, d)))
    A = basis @ np.diag(eigenvalues) @ basis.T
    target = rng.normal(size=d)

    def value(theta):
        diff = theta - target
        return 0.5 * float(diff @ A @ diff)

    def gradient(theta):
        return A @ (theta - target)

    def hessian(theta):
        return A

    return FunctionObjective(value, gradient, hessian), target


def rosenbrock_objective():
    def value(theta):
        return float((1 - theta[0]) ** 2 + 100 * (theta[1] - theta[0] ** 2) ** 2)

    def gradient(theta):
        g0 = -2 * (1 - theta[0]) - 400 * theta[0] * (theta[1] - theta[0] ** 2)
        g1 = 200 * (theta[1] - theta[0] ** 2)
        return np.array([g0, g1])

    return FunctionObjective(value, gradient)


OPTIMIZERS = {
    "gd": GradientDescent(max_iterations=3000, gradient_tolerance=1e-7),
    "newton": NewtonMethod(gradient_tolerance=1e-10),
    "bfgs": BFGS(gradient_tolerance=1e-8),
    "lbfgs": LBFGS(gradient_tolerance=1e-8),
}


class TestConvexQuadratic:
    @pytest.mark.parametrize("name", list(OPTIMIZERS))
    def test_reaches_known_minimiser(self, name):
        objective, target = make_quadratic(d=6, seed=1)
        result = OPTIMIZERS[name].minimize(objective, np.zeros(6))
        assert result.converged
        np.testing.assert_allclose(result.theta, target, atol=1e-4)

    @pytest.mark.parametrize("name", list(OPTIMIZERS))
    def test_loss_history_monotone_nonincreasing(self, name):
        objective, _ = make_quadratic(d=4, seed=2)
        result = OPTIMIZERS[name].minimize(objective, np.ones(4) * 3)
        history = np.array(result.loss_history)
        assert np.all(np.diff(history) <= 1e-10)

    @pytest.mark.parametrize("name", list(OPTIMIZERS))
    def test_starting_at_optimum_converges_immediately(self, name):
        objective, target = make_quadratic(d=3, seed=3)
        result = OPTIMIZERS[name].minimize(objective, target)
        assert result.converged
        assert result.n_iterations == 0

    def test_iteration_counts_are_reported(self):
        objective, _ = make_quadratic(d=5, seed=4)
        result = BFGS().minimize(objective, np.zeros(5))
        assert result.n_iterations >= 1
        assert result.n_function_evaluations >= result.n_iterations


class TestRosenbrock:
    @pytest.mark.parametrize("name", ["bfgs", "lbfgs", "newton_free"])
    def test_quasi_newton_solves_rosenbrock(self, name):
        objective = rosenbrock_objective()
        if name == "newton_free":
            optimizer = BFGS(max_iterations=2000, gradient_tolerance=1e-6)
        else:
            optimizer = OPTIMIZERS[name]
        result = optimizer.minimize(objective, np.array([-1.2, 1.0]))
        np.testing.assert_allclose(result.theta, [1.0, 1.0], atol=1e-3)


class TestIllConditionedAndEdgeCases:
    def test_bfgs_handles_ill_conditioning(self):
        objective, target = make_quadratic(d=8, seed=5, condition=1e4)
        result = BFGS(max_iterations=2000).minimize(objective, np.zeros(8))
        np.testing.assert_allclose(result.theta, target, atol=1e-2)

    def test_lbfgs_memory_parameter(self):
        objective, target = make_quadratic(d=20, seed=6)
        result = LBFGS(memory=3).minimize(objective, np.zeros(20))
        np.testing.assert_allclose(result.theta, target, atol=1e-3)

    def test_non_finite_objective_raises(self):
        objective = FunctionObjective(lambda t: float("nan"), lambda t: t)
        with pytest.raises(OptimizationError):
            GradientDescent().minimize(objective, np.zeros(2))

    def test_check_finite_helper(self):
        with pytest.raises(OptimizationError):
            check_finite("gradient", np.array([1.0, np.inf]), 3)
        check_finite("gradient", np.array([1.0, 2.0]), 3)  # no error

    def test_result_summary_mentions_convergence(self):
        objective, _ = make_quadratic(d=3, seed=7)
        result = BFGS().minimize(objective, np.zeros(3))
        assert "converged" in result.summary()


class TestDriver:
    def test_dimension_rule(self):
        assert isinstance(optimizer_for_dimension(10), BFGS)
        assert isinstance(optimizer_for_dimension(99), BFGS)
        assert isinstance(optimizer_for_dimension(100), LBFGS)
        assert isinstance(optimizer_for_dimension(5000), LBFGS)

    def test_minimize_dispatch_by_name(self):
        objective, target = make_quadratic(d=4, seed=8)
        for method in ["gd", "newton", "bfgs", "lbfgs", "L-BFGS"]:
            result = minimize(objective, np.zeros(4), method=method, max_iterations=2000)
            np.testing.assert_allclose(result.theta, target, atol=1e-3)

    def test_minimize_default_follows_dimension_rule(self):
        objective, target = make_quadratic(d=4, seed=9)
        result = minimize(objective, np.zeros(4))
        np.testing.assert_allclose(result.theta, target, atol=1e-4)

    def test_unknown_method_raises(self):
        objective, _ = make_quadratic(d=2, seed=10)
        with pytest.raises(OptimizationError):
            minimize(objective, np.zeros(2), method="adamw")

    def test_function_objective_without_hessian_raises(self):
        objective = FunctionObjective(lambda t: float(t @ t), lambda t: 2 * t)
        with pytest.raises(OptimizationError):
            objective.hessian(np.zeros(2))
