"""Setuptools entry point.

The canonical metadata lives in pyproject.toml; this file exists so that the
package can be installed editable (``pip install -e .``) in offline
environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "BlinkML reproduction: efficient maximum likelihood estimation "
        "with probabilistic guarantees"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
