"""Run every example script in smoke mode — the CI example gate.

Each ``examples/*.py`` honours the ``REPRO_EXAMPLES_SMOKE=1`` environment
variable by scaling its workload down to seconds; this runner executes
every example in a subprocess with that variable set, streams nothing on
success, and prints the captured output of any failure.  Keeping the gate a
plain script (stdlib only) means the docs' promise that every example runs
is enforced on every push, so the example index in README.md cannot rot.

Run from the repository root::

    python tools/run_examples.py [--timeout SECONDS] [pattern ...]

Positional patterns restrict the run to examples whose filename contains
any of them (e.g. ``python tools/run_examples.py serving``).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def discover(patterns: list[str]) -> list[Path]:
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    examples = [path for path in examples if not path.name.startswith("_")]
    if patterns:
        examples = [
            path for path in examples if any(pattern in path.name for pattern in patterns)
        ]
    return examples


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("patterns", nargs="*", help="filename substrings to select")
    parser.add_argument("--timeout", type=float, default=300.0, help="per-example seconds")
    args = parser.parse_args(argv)

    examples = discover(args.patterns)
    if not examples:
        print("no examples matched", file=sys.stderr)
        return 1

    env = dict(os.environ)
    env["REPRO_EXAMPLES_SMOKE"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures = []
    for path in examples:
        label = path.relative_to(REPO_ROOT)
        start = time.perf_counter()
        try:
            completed = subprocess.run(
                [sys.executable, str(path)],
                cwd=REPO_ROOT,
                env=env,
                capture_output=True,
                text=True,
                timeout=args.timeout,
            )
        except subprocess.TimeoutExpired:
            print(f"FAIL {label} (timed out after {args.timeout:.0f}s)")
            failures.append(str(label))
            continue
        elapsed = time.perf_counter() - start
        if completed.returncode == 0:
            print(f"ok   {label} ({elapsed:.1f}s)")
        else:
            print(f"FAIL {label} (exit {completed.returncode}, {elapsed:.1f}s)")
            sys.stdout.write(completed.stdout)
            sys.stderr.write(completed.stderr)
            failures.append(str(label))

    if failures:
        print(f"\n{len(failures)} of {len(examples)} examples failed: {failures}")
        return 1
    print(f"\nall {len(examples)} examples passed in smoke mode")
    return 0


if __name__ == "__main__":
    sys.exit(main())
