"""Markdown link and anchor checker for the docs — the CI docs gate.

Validates every inline Markdown link in ``README.md`` and ``docs/*.md``:

* **relative file links** must point at a file or directory that exists in
  the repository (resolved against the linking file's directory);
* **anchor links** — ``#section`` within a file or ``other.md#section``
  across files — must match a heading in the target document, using
  GitHub's heading-to-anchor slug rules;
* **absolute URLs** are checked for scheme sanity only (no network access,
  so the gate cannot flake on a third-party outage).

Fenced code blocks and inline code spans are stripped before scanning so
``array[0](...)``-style source fragments are not misread as links.

Run from the repository root::

    python tools/check_docs.py [files ...]

With no arguments it checks README.md and every Markdown file under docs/.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)
FENCE_PATTERN = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
INLINE_CODE_PATTERN = re.compile(r"`[^`\n]*`")


def strip_code(text: str) -> str:
    return INLINE_CODE_PATTERN.sub("", FENCE_PATTERN.sub("", text))


def github_slug(heading: str) -> str:
    """GitHub's heading → anchor id transformation (close enough for ASCII)."""
    heading = INLINE_CODE_PATTERN.sub(lambda match: match.group(0)[1:-1], heading)
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # linked headings
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def anchors_of(path: Path, cache: dict[Path, set[str]]) -> set[str]:
    if path not in cache:
        text = FENCE_PATTERN.sub("", path.read_text(encoding="utf-8"))
        slugs: set[str] = set()
        for match in HEADING_PATTERN.finditer(text):
            slug = github_slug(match.group(2))
            candidate = slug
            suffix = 1
            while candidate in slugs:  # GitHub dedupes repeats with -1, -2, ...
                candidate = f"{slug}-{suffix}"
                suffix += 1
            slugs.add(candidate)
        cache[path] = slugs
    return cache[path]


def check_file(path: Path, cache: dict[Path, set[str]]) -> list[str]:
    problems = []
    text = strip_code(path.read_text(encoding="utf-8"))
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # absolute URL / mailto
            if not re.match(r"^(https?|mailto):", target):
                problems.append(f"{path}: suspicious URL scheme in {target!r}")
            continue
        base, _, fragment = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if base and not resolved.exists():
            problems.append(f"{path}: broken link {target!r} (missing {base})")
            continue
        if fragment:
            if resolved.is_dir() or resolved.suffix.lower() not in {".md", ""}:
                continue
            if fragment not in anchors_of(resolved, cache):
                problems.append(
                    f"{path}: broken anchor {target!r} "
                    f"(no heading slugs to '#{fragment}' in {resolved.name})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    arguments = (argv if argv is not None else sys.argv[1:])
    if arguments:
        files = [Path(argument).resolve() for argument in arguments]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"FAIL: expected documentation file missing: {path}")
        return 1

    cache: dict[Path, set[str]] = {}
    problems = []
    for path in files:
        problems += check_file(path, cache)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        print(f"\n{len(problems)} broken link(s)/anchor(s)")
        return 1
    print(f"OK: {len(files)} documentation files, all links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
