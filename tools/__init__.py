"""Repository tooling: doc checks, example runners, invariant analysis."""
