"""REP003 — lock discipline for annotated shared state.

The threaded modules (caches, session, registry, batcher, service,
streaming pools) register their shared attributes with trailing
``# guarded-by: _lock`` comments on the declaring assignment.  This rule
checks every *mutation* of a registered attribute — plain assignment,
augmented assignment, ``del``, subscript stores, and calls to mutating
container methods — and requires it to sit inside a ``with self._lock:``
block (or ``with _LOCK:`` for module-level globals).

Exemptions, matching the repo's happens-before conventions:

* ``__init__`` and ``__setstate__`` — construction precedes publication,
  so the object is still thread-private;
* functions annotated ``# repro-lint: holds=_lock`` on their def line —
  the ``*_locked`` helper convention where every caller already holds it.

Reads are deliberately not checked: several modules use
mutate-under-lock / lock-free-read on atomic references, and that choice
is documented at the declaration site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from tools.analysis.context import Finding, ModuleContext

RULE_ID = "REP003"
SUMMARY = "guarded-by attributes may only be mutated under their lock"

#: container/deque/dict/set methods that mutate the receiver in place.
MUTATING_METHODS = {
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "move_to_end",
    "rotate",
    "sort",
    "reverse",
}

EXEMPT_FUNCTIONS = {"__init__", "__setstate__", "__new__"}


def _base_name(node: ast.expr) -> tuple[str | None, str] | None:
    """Decompose ``self.attr`` → ("self", attr) or bare ``NAME`` → (None, NAME)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return ("self", node.attr)
    if isinstance(node, ast.Name):
        return (None, node.id)
    return None


def _strip_subscripts(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _mutations(tree: ast.AST) -> Iterable[tuple[ast.AST, tuple[str | None, str]]]:
    """Yield (node, (receiver, name)) for every mutation in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                ref = _base_name(_strip_subscripts(target))
                if ref is not None:
                    yield node, ref
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            ref = _base_name(_strip_subscripts(node.target))
            if ref is not None:
                yield node, ref
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                ref = _base_name(_strip_subscripts(target))
                if ref is not None:
                    yield node, ref
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
                ref = _base_name(_strip_subscripts(func.value))
                if ref is not None:
                    yield node, ref


def _with_locks(module: ModuleContext, node: ast.AST) -> set[tuple[str | None, str]]:
    """Locks held at ``node``: every enclosing ``with`` item's reference."""
    held: set[tuple[str | None, str]] = set()
    current: ast.AST | None = node
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                expr = item.context_expr
                # Accept `with lock:` and `with lock_factory():` forms.
                if isinstance(expr, ast.Call):
                    expr = expr.func
                ref = _base_name(expr)
                if ref is not None:
                    held.add(ref)
        current = module.parents.get(current)
    return held


def _registered(module: ModuleContext) -> Iterable[tuple[ast.stmt, str | None, str, str]]:
    """(declaration, receiver, attr, lock) for every guarded-by annotation."""
    for stmt, lock in module.guarded_statements:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for target in targets:
            ref = _base_name(_strip_subscripts(target))
            if ref is not None:
                yield stmt, ref[0], ref[1], lock


def check_module(module: ModuleContext) -> Iterable[Finding]:
    for declaration, receiver, attr, lock in _registered(module):
        if receiver == "self":
            scope: ast.AST = module.enclosing_class(declaration) or module.tree
            lock_ref: tuple[str | None, str] = ("self", lock)
        else:
            scope = module.tree
            lock_ref = (None, lock)

        for node, ref in _mutations(scope):
            if ref != (receiver, attr):
                continue
            func = module.enclosing_function(node)
            if func is None:
                continue  # module/class body: definition-time, pre-publication
            if getattr(func, "name", "") in EXEMPT_FUNCTIONS:
                continue
            if module.holds_functions.get(func) == lock:
                continue
            if lock_ref in _with_locks(module, node):
                continue
            yield Finding(
                module.relpath,
                node.lineno,
                RULE_ID,
                f"mutation of `{attr}` (guarded-by {lock}) outside "
                f"`with {'self.' if receiver == 'self' else ''}{lock}:`",
            )
