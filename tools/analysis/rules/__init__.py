"""Rule registry: one module per machine-checked contract.

Per-module rules implement ``check_module(module) -> Iterable[Finding]``;
repo-level rules (config/doc parity) implement
``check_repo(repo) -> Iterable[Finding]``.  A rule may implement both.
"""

from __future__ import annotations

from tools.analysis.rules import (
    rep001_rng,
    rep002_frozen,
    rep003_locks,
    rep004_pickle,
    rep005_config,
    rep006_api,
    rep007_typed,
)

ALL_RULES = [
    rep001_rng,
    rep002_frozen,
    rep003_locks,
    rep004_pickle,
    rep005_config,
    rep006_api,
    rep007_typed,
]

__all__ = ["ALL_RULES"]
