"""REP004 — process-backend picklability of accumulators and summaries.

The ``processes`` streaming backend pickles accumulators (and their moment
summaries) across the pool boundary.  Closures and lambdas bound to
instance attributes do not pickle, so an accumulator class that stores one
must define the ``__getstate__``/``__setstate__`` pair that strips the
callables for transport and restores the instance as a merge-only partial
(the :class:`repro.models.base.BlockSumDiffAccumulator` idiom).

The rule targets every class whose own name or any base name ends in
``Accumulator`` or ``Summary``.  In a class without the getstate/setstate
pair it flags ``self.x = <callable>`` bindings where the value is
statically a callable: a lambda, a nested ``def``'s name, or a parameter
annotated ``Callable``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from tools.analysis.context import Finding, ModuleContext

RULE_ID = "REP004"
SUMMARY = "accumulators/summaries must not bind unpicklable callables"

_TARGET_SUFFIXES = ("Accumulator", "Summary")


def _is_target_class(node: ast.ClassDef) -> bool:
    names = [node.name]
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return any(name.endswith(_TARGET_SUFFIXES) for name in names)


def _defines_pickle_pair(node: ast.ClassDef) -> bool:
    defined = {
        stmt.name
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return "__getstate__" in defined and "__setstate__" in defined


def _callable_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameter names whose annotation mentions Callable."""
    names: set[str] = set()
    args = list(func.args.posonlyargs) + list(func.args.args) + list(
        func.args.kwonlyargs
    )
    for arg in args:
        if arg.annotation is None:
            continue
        try:
            rendered = ast.unparse(arg.annotation)
        except Exception:
            continue
        if "Callable" in rendered:
            names.add(arg.arg)
    return names


def _nested_def_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    return {
        node.name
        for node in ast.walk(func)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        and node is not func
    }


def check_module(module: ModuleContext) -> Iterable[Finding]:
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef) or not _is_target_class(cls):
            continue
        if _defines_pickle_pair(cls):
            continue
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            callable_names = _callable_params(func) | _nested_def_names(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign):
                    continue
                binds_self_attr = any(
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    for target in node.targets
                )
                if not binds_self_attr:
                    continue
                value = node.value
                is_callable_value = isinstance(value, ast.Lambda) or (
                    isinstance(value, ast.Name) and value.id in callable_names
                )
                if is_callable_value:
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        RULE_ID,
                        f"`{cls.name}` binds a callable to an instance "
                        "attribute without a __getstate__/__setstate__ pair: "
                        "the processes backend cannot pickle it (see "
                        "BlockSumDiffAccumulator for the transport idiom)",
                    )
