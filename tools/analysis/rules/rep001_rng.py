"""REP001 — no global NumPy RNG state in library code.

Every estimate in the system is a Monte-Carlo quantity and the caches
(sorted-diff vectors, size-search results, coalesced followers) assume a
given seed reproduces bitwise-identical draws.  Module-level
``np.random.*`` calls mutate interpreter-global state behind every
sampler's back, so library code must go through an explicitly seeded
``np.random.Generator`` (``default_rng``).  Constructing generators and
seed machinery is fine; calling the legacy global functions is not.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from tools.analysis.context import Finding, ModuleContext

RULE_ID = "REP001"
SUMMARY = "no global NumPy RNG (`np.random.*`) — use seeded Generators"

#: np.random attributes that construct explicit, non-global RNG objects.
ALLOWED = {
    "Generator",
    "default_rng",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _is_np_random(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def check_module(module: ModuleContext) -> Iterable[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and _is_np_random(node.value):
            if node.attr not in ALLOWED:
                yield Finding(
                    module.relpath,
                    node.lineno,
                    RULE_ID,
                    f"global NumPy RNG use `np.random.{node.attr}`: draw from "
                    "a seeded np.random.Generator (default_rng) instead",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in ALLOWED:
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        RULE_ID,
                        f"import of global RNG function "
                        f"`numpy.random.{alias.name}`: use a seeded "
                        "Generator instead",
                    )
