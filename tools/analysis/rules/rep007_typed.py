"""REP007 — typed-def coverage: every function signature is annotated.

The CI gate runs ``mypy --strict`` over ``src/repro`` (it pip-installs
mypy; the local toolchain does not ship it).  This rule is the locally
verifiable core of that contract: every ``def`` in the library must
annotate all of its parameters (``self``/``cls`` aside) and its return
type (``__init__`` may omit the return — it is always ``None``).  It
keeps the tree mypy-ready between CI runs and fails fast on the most
common strict-mode regression, the silently untyped def.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from tools.analysis.context import Finding, ModuleContext

RULE_ID = "REP007"
SUMMARY = "every def annotates all parameters and its return type"

_RETURN_EXEMPT = {"__init__", "__init_subclass__", "__class_getitem__"}


def check_module(module: ModuleContext) -> Iterable[Finding]:
    for func in module.functions:
        args = func.args
        ordered = list(args.posonlyargs) + list(args.args)
        skip_first = bool(ordered) and ordered[0].arg in ("self", "cls")
        to_check = ordered[1:] if skip_first else ordered
        to_check += list(args.kwonlyargs)
        missing = [arg.arg for arg in to_check if arg.annotation is None]
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if missing:
            yield Finding(
                module.relpath,
                func.lineno,
                RULE_ID,
                f"`{func.name}` has unannotated parameter(s): "
                + ", ".join(missing),
            )
        if func.returns is None and func.name not in _RETURN_EXEMPT:
            yield Finding(
                module.relpath,
                func.lineno,
                RULE_ID,
                f"`{func.name}` has no return annotation",
            )
