"""REP002 — frozen-array discipline for shared / cached ndarrays.

Arrays that outlive one call and are shared across callers or threads —
dataset columns, cached sorted-diff vectors, sampler base draws — must be
frozen through :func:`repro.linalg.utils.freeze` so an accidental in-place
mutation raises instead of silently corrupting every later reader.  Three
checks enforce it:

* **raw-flag ban** — any ``….flags.writeable = …`` assignment outside the
  one blessed site inside ``freeze()`` itself (which carries an explicit
  suppression) is a violation: ad-hoc flag twiddling is exactly what the
  helper exists to replace;
* **frozen-attr** — a statement annotated ``# repro-lint: frozen-attr``
  registers its attribute: every assignment to that attribute (plain,
  subscript, or via ``object.__setattr__``) anywhere in the class must
  flow through ``freeze()``;
* **frozen-cache** — a statement annotated ``# repro-lint: frozen-cache``
  registers an ``LRUCache`` attribute: every ``put()`` value and every
  ``get_or_compute()`` factory bound to it must produce a
  ``freeze()``-flowing value (factories may be lambdas whose body flows
  through ``freeze()`` or functions annotated ``# repro-lint:
  returns-frozen``).

"Flows through freeze" is decided statically within one function: the
expression is a ``freeze(...)`` call, a name every one of whose local
assignments flows through freeze, a subscript/slice of such a name, or a
conditional whose branches all flow.  ``None`` and empty-container
initialisers are allowed (declaration sites).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from tools.analysis.context import Finding, ModuleContext

RULE_ID = "REP002"
SUMMARY = "shared ndarrays must be frozen via repro.linalg.utils.freeze()"


def _is_freeze_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "freeze":
        return True
    return isinstance(func, ast.Attribute) and func.attr == "freeze"


def _is_benign_initializer(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if isinstance(node, (ast.List, ast.Tuple)) and not node.elts:
        return True
    return False


def frozen_attr_names(module: ModuleContext) -> set[str]:
    """Attribute names registered frozen (frozen-attr or frozen-cache)."""
    names: set[str] = set()
    for stmt in module.frozen_attr_statements + module.frozen_cache_statements:
        attr = _registered_attr(stmt)
        if attr is not None:
            names.add(attr)
    return names


def _is_frozen_attr_read(node: ast.expr, frozen_attrs: set[str]) -> bool:
    """Reads of registered frozen state carry frozenness invariantly.

    Covers ``self._attr`` (double-checked re-reads under the lock) and
    ``self._attr.get(key)`` (lookups in a frozen-valued dict).
    """
    if (
        isinstance(node, ast.Attribute)
        and node.attr in frozen_attrs
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and _is_frozen_attr_read(node.func.value, frozen_attrs)
    ):
        return True
    return False


def flows_through_freeze(
    module: ModuleContext,
    node: ast.expr,
    scope: ast.AST | None,
    frozen_attrs: set[str] = frozenset(),
) -> bool:
    """True when ``node`` provably carries a ``freeze()`` result."""
    if _is_freeze_call(node) or _is_benign_initializer(node):
        return True
    if _is_frozen_attr_read(node, frozen_attrs):
        return True
    if isinstance(node, ast.IfExp):
        return flows_through_freeze(
            module, node.body, scope, frozen_attrs
        ) and flows_through_freeze(module, node.orelse, scope, frozen_attrs)
    if isinstance(node, ast.Subscript):
        return flows_through_freeze(module, node.value, scope, frozen_attrs)
    if isinstance(node, ast.Name) and scope is not None:
        assignments = [
            stmt.value
            for stmt in ast.walk(scope)
            if isinstance(stmt, ast.Assign)
            and stmt.value is not None
            and any(
                isinstance(target, ast.Name) and target.id == node.id
                for target in stmt.targets
            )
        ]
        return bool(assignments) and all(
            flows_through_freeze(module, value, scope, frozen_attrs)
            for value in assignments
        )
    return False


def _registered_attr(stmt: ast.stmt) -> str | None:
    """The attribute name a frozen-attr/frozen-cache statement declares."""
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and isinstance(
                target.value, ast.Name
            ):
                return target.attr
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "__setattr__"
            and len(call.args) >= 2
            and isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, str)
        ):
            return call.args[1].value
    return None


def _attr_assignment_value(
    node: ast.AST, attr: str
) -> tuple[int, ast.expr] | None:
    """(line, value) when ``node`` assigns ``self.attr`` / ``self.attr[…]``."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and base.attr == attr
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                return node.lineno, node.value
    if isinstance(node, ast.AnnAssign) and node.value is not None:
        base = node.target
        if isinstance(base, ast.Subscript):
            base = base.value
        if (
            isinstance(base, ast.Attribute)
            and base.attr == attr
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return node.lineno, node.value
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and len(node.args) >= 3
            and isinstance(node.args[1], ast.Constant)
            and node.args[1].value == attr
        ):
            return node.lineno, node.args[2]
    return None


def _check_frozen_attrs(module: ModuleContext) -> Iterable[Finding]:
    frozen_attrs = frozen_attr_names(module)
    for stmt in module.frozen_attr_statements:
        attr = _registered_attr(stmt)
        if attr is None:
            yield Finding(
                module.relpath,
                stmt.lineno,
                RULE_ID,
                "frozen-attr annotation on a statement that assigns no "
                "attribute",
            )
            continue
        # Scope: the whole class the declaration lives in (or the module).
        scope: ast.AST = module.enclosing_class(stmt) or module.tree
        for node in ast.walk(scope):
            found = _attr_assignment_value(node, attr)
            if found is None:
                continue
            line, value = found
            func_scope = module.enclosing_function(node)
            if not flows_through_freeze(module, value, func_scope, frozen_attrs):
                yield Finding(
                    module.relpath,
                    line,
                    RULE_ID,
                    f"assignment to frozen attribute `{attr}` does not flow "
                    "through freeze(); wrap the value in "
                    "repro.linalg.utils.freeze()",
                )


def _factory_is_frozen(
    module: ModuleContext,
    factory: ast.expr,
    scope: ast.AST | None,
    frozen_attrs: set[str],
) -> bool:
    if isinstance(factory, ast.Lambda):
        return flows_through_freeze(module, factory.body, scope, frozen_attrs)
    # A named function: accept when its def carries returns-frozen.
    name = None
    if isinstance(factory, ast.Name):
        name = factory.id
    elif isinstance(factory, ast.Attribute):
        name = factory.attr
    if name is not None:
        for func in module.returns_frozen_functions:
            if getattr(func, "name", None) == name:
                return True
    return False


def _check_frozen_caches(module: ModuleContext) -> Iterable[Finding]:
    frozen_attrs = frozen_attr_names(module)
    for stmt in module.frozen_cache_statements:
        attr = _registered_attr(stmt)
        if attr is None:
            yield Finding(
                module.relpath,
                stmt.lineno,
                RULE_ID,
                "frozen-cache annotation on a statement that assigns no "
                "attribute",
            )
            continue
        scope: ast.AST = module.enclosing_class(stmt) or module.tree
        for node in ast.walk(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == attr
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                continue
            func_scope = module.enclosing_function(node)
            if func.attr == "put" and len(node.args) >= 2:
                if not flows_through_freeze(
                    module, node.args[1], func_scope, frozen_attrs
                ):
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        RULE_ID,
                        f"value stored in frozen cache `{attr}` does not "
                        "flow through freeze()",
                    )
            elif func.attr == "get_or_compute" and len(node.args) >= 2:
                if not _factory_is_frozen(
                    module, node.args[1], func_scope, frozen_attrs
                ):
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        RULE_ID,
                        f"factory passed to frozen cache `{attr}` must "
                        "produce a freeze()-flowing value (lambda over "
                        "freeze(...) or a returns-frozen function)",
                    )


def _check_returns_frozen(module: ModuleContext) -> Iterable[Finding]:
    frozen_attrs = frozen_attr_names(module)
    for func in module.returns_frozen_functions:
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                if module.enclosing_function(node) is not func:
                    continue  # belongs to a nested function
                if not flows_through_freeze(module, node.value, func, frozen_attrs):
                    yield Finding(
                        module.relpath,
                        node.lineno,
                        RULE_ID,
                        f"`{getattr(func, 'name', '?')}` is annotated "
                        "returns-frozen but this return value does not flow "
                        "through freeze()",
                    )


def _check_raw_flag_writes(module: ModuleContext) -> Iterable[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"
            ):
                yield Finding(
                    module.relpath,
                    node.lineno,
                    RULE_ID,
                    "raw `.flags.writeable` assignment: use "
                    "repro.linalg.utils.freeze() instead",
                )


def check_module(module: ModuleContext) -> Iterable[Finding]:
    yield from _check_raw_flag_writes(module)
    yield from _check_frozen_attrs(module)
    yield from _check_frozen_caches(module)
    yield from _check_returns_frozen(module)
