"""REP005 — config-knob parity: every DEFAULT_* is env-overridable + documented.

The deployment contract (docs/serving.md) promises that every
``DEFAULT_*`` constant in ``repro/config.py`` can be retuned through a
same-named environment variable.  This rule machine-checks the three-way
parity:

* every module-level ``DEFAULT_*`` assignment in config.py must call one
  of the ``_env_int`` / ``_env_float`` / ``_env_choice`` / ``_env_str``
  helpers;
* the helper's first argument must be the knob's own name (the env var
  *is* the constant name);
* every knob must have a row in the docs/serving.md knob table whose
  env-overridable column says ``**yes**`` — and every ``DEFAULT_*`` row
  in that table must exist in config.py (no stale docs).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from tools.analysis.context import Finding, RepoContext

RULE_ID = "REP005"
SUMMARY = "every DEFAULT_* config knob is env-overridable and documented"

_ENV_HELPERS = {"_env_int", "_env_float", "_env_choice", "_env_str"}
_CONFIG_RELPATH = "src/repro/config.py"
_DOC_RELPATH = "docs/serving.md"
_ROW_RE = re.compile(r"^\|\s*`(DEFAULT_[A-Z0-9_]+)`\s*\|[^|]*\|\s*([^|]+?)\s*\|")


def check_repo(repo: RepoContext) -> Iterable[Finding]:
    module = repo.module(_CONFIG_RELPATH)
    if module is None:
        yield Finding(_CONFIG_RELPATH, 1, RULE_ID, "config module not analysed")
        return

    knobs: dict[str, int] = {}
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if not (
                isinstance(target, ast.Name) and target.id.startswith("DEFAULT_")
            ):
                continue
            name = target.id
            knobs[name] = stmt.lineno
            value = stmt.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _ENV_HELPERS
            ):
                yield Finding(
                    _CONFIG_RELPATH,
                    stmt.lineno,
                    RULE_ID,
                    f"`{name}` is a bare constant: wrap it in _env_int / "
                    "_env_float / _env_choice so deployments can override it",
                )
                continue
            first = value.args[0] if value.args else None
            if not (
                isinstance(first, ast.Constant) and first.value == name
            ):
                yield Finding(
                    _CONFIG_RELPATH,
                    stmt.lineno,
                    RULE_ID,
                    f"`{name}` must use its own name as the env variable "
                    f"(got {ast.unparse(first) if first is not None else 'nothing'})",
                )

    doc_path = repo.root / _DOC_RELPATH
    if not doc_path.exists():
        yield Finding(_DOC_RELPATH, 1, RULE_ID, "knob table document missing")
        return
    documented: dict[str, tuple[int, str]] = {}
    for lineno, line in enumerate(
        doc_path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _ROW_RE.match(line.strip())
        if match:
            documented[match.group(1)] = (lineno, match.group(2))

    for name, lineno in knobs.items():
        if name not in documented:
            yield Finding(
                _CONFIG_RELPATH,
                lineno,
                RULE_ID,
                f"`{name}` has no row in the {_DOC_RELPATH} knob table",
            )
        elif documented[name][1] != "**yes**":
            yield Finding(
                _DOC_RELPATH,
                documented[name][0],
                RULE_ID,
                f"knob-table row for `{name}` must say **yes** in the "
                "env-overridable column",
            )
    for name, (lineno, _) in documented.items():
        if name not in knobs:
            yield Finding(
                _DOC_RELPATH,
                lineno,
                RULE_ID,
                f"knob table documents `{name}` but config.py does not "
                "define it",
            )
