"""REP006 — public-API parity between ``repro.__init__`` and docs/api.md.

The top-level namespace is the advertised API.  Three checks keep it
honest:

* every ``__all__`` entry must actually be bound at module level in
  ``repro/__init__.py`` (no phantom exports);
* every name imported at module level of ``repro/__init__.py`` must be
  listed in ``__all__`` (imports into the top-level namespace *are* API —
  either export them or move them out);
* every ``__all__`` entry (dunders aside) must appear in docs/api.md as a
  backticked name, so the reference never silently lags the surface.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from tools.analysis.context import Finding, RepoContext

RULE_ID = "REP006"
SUMMARY = "repro.__init__ exports and docs/api.md stay in lockstep"

_INIT_RELPATH = "src/repro/__init__.py"
_DOC_RELPATH = "docs/api.md"


def check_repo(repo: RepoContext) -> Iterable[Finding]:
    module = repo.module(_INIT_RELPATH)
    if module is None:
        yield Finding(_INIT_RELPATH, 1, RULE_ID, "package __init__ not analysed")
        return

    bound: dict[str, int] = {}
    exported: dict[str, int] = {}
    all_line = 1
    for stmt in module.tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                name = alias.asname or alias.name.split(".")[0]
                bound[name] = stmt.lineno
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound[stmt.name] = stmt.lineno
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bound[target.id] = stmt.lineno
                    if target.id == "__all__":
                        all_line = stmt.lineno
                        if isinstance(stmt.value, (ast.List, ast.Tuple)):
                            for element in stmt.value.elts:
                                if isinstance(
                                    element, ast.Constant
                                ) and isinstance(element.value, str):
                                    exported[element.value] = element.lineno

    if not exported:
        yield Finding(
            _INIT_RELPATH, all_line, RULE_ID, "no literal __all__ list found"
        )
        return

    for name, lineno in exported.items():
        if name not in bound and not name.startswith("__"):
            yield Finding(
                _INIT_RELPATH,
                lineno,
                RULE_ID,
                f"__all__ exports `{name}` but nothing binds it at module "
                "level",
            )
    for name, lineno in bound.items():
        if name.startswith("_"):
            continue
        if name not in exported:
            yield Finding(
                _INIT_RELPATH,
                lineno,
                RULE_ID,
                f"module-level binding `{name}` is missing from __all__ "
                "(export it or make it private)",
            )

    doc_path = repo.root / _DOC_RELPATH
    if not doc_path.exists():
        yield Finding(_DOC_RELPATH, 1, RULE_ID, "API reference document missing")
        return
    doc_text = doc_path.read_text(encoding="utf-8")
    for name, lineno in exported.items():
        if name.startswith("__"):
            continue
        # A span may wrap across lines (bulleted signatures) or be a fenced
        # code block, so newlines are allowed inside the backticks.
        if not re.search(rf"`[^`]*\b{re.escape(name)}\b[^`]*`", doc_text):
            yield Finding(
                _INIT_RELPATH,
                lineno,
                RULE_ID,
                f"exported name `{name}` is not documented in {_DOC_RELPATH}",
            )
