"""Shared analysis context: parsed modules, annotations, suppressions.

Everything the rule modules consume is prepared once per file here:

* the AST (with parent links, so rules can walk *up* from a mutation to
  the ``with`` blocks enclosing it);
* the comment map (via :mod:`tokenize`, so comments survive with exact
  line numbers and trailing/standalone classification);
* the repo's annotation grammar —

  ============================== =======================================
  comment                        meaning
  ============================== =======================================
  ``# guarded-by: _lock``        the attribute assigned on this statement
                                 may only be mutated while holding
                                 ``self._lock`` (REP003)
  ``# repro-lint: holds=_lock``  on a ``def`` line: every caller holds
                                 the lock already (``*_locked`` helpers)
  ``# repro-lint: frozen-attr``  the attribute assigned here must always
                                 be assigned through ``freeze()`` (REP002)
  ``# repro-lint: frozen-cache`` the ``LRUCache`` bound here stores
                                 ndarrays: every ``put`` value / factory
                                 result must flow through ``freeze()``
  ``# repro-lint: returns-frozen`` on a ``def`` line: every return value
                                 must flow through ``freeze()``
  ============================== =======================================

* the suppression grammar — ``# repro-lint: disable=REP00x (reason)``,
  trailing the offending statement or standalone on the line above it.
  The reason is mandatory; a bare disable is reported as ``REP000``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_DISABLE_RE = re.compile(
    r"repro-lint:\s*disable=(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*)"
    r"(?P<reason>\s*\(.*\))?"
)
_GUARDED_BY_RE = re.compile(r"guarded-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
_HOLDS_RE = re.compile(r"repro-lint:\s*holds=(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")
_FROZEN_ATTR_RE = re.compile(r"repro-lint:\s*frozen-attr\b")
_FROZEN_CACHE_RE = re.compile(r"repro-lint:\s*frozen-cache\b")
_RETURNS_FROZEN_RE = re.compile(r"repro-lint:\s*returns-frozen\b")


@dataclass(frozen=True)
class Finding:
    """One invariant violation: where, which rule, what went wrong."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """A parsed ``disable=`` comment and the lines it covers."""

    rules: tuple[str, ...]
    reason: str
    comment_line: int
    lines: set[int] = field(default_factory=set)
    used: bool = False


class ModuleContext:
    """One parsed source file plus its comment-derived annotation tables."""

    def __init__(self, root: Path, path: Path):
        self.root = root
        self.path = path
        self.relpath = str(path.relative_to(root))
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

        # line -> full comment text; standalone = nothing but the comment.
        self.comments: dict[int, str] = {}
        self.standalone_comments: set[int] = set()
        self._collect_comments()

        # Simple (non-compound) statements, for comment → statement lookup.
        self._statements = [
            node
            for node in ast.walk(self.tree)
            if isinstance(node, ast.stmt)
            and not isinstance(
                node,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.If,
                    ast.For,
                    ast.While,
                    ast.With,
                    ast.Try,
                ),
            )
        ]
        self.functions = [
            node
            for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

        # Annotation tables, filled from the comments.
        #   (statement, lock_name) for guarded-by
        self.guarded_statements: list[tuple[ast.stmt, str]] = []
        #   statements carrying frozen-attr / frozen-cache
        self.frozen_attr_statements: list[ast.stmt] = []
        self.frozen_cache_statements: list[ast.stmt] = []
        #   functions carrying holds= / returns-frozen
        self.holds_functions: dict[ast.AST, str] = {}
        self.returns_frozen_functions: set[ast.AST] = set()

        self.suppressions: list[Suppression] = []
        self.malformed: list[Finding] = []
        self._parse_annotations()

    # ------------------------------------------------------------------
    # Comment collection
    # ------------------------------------------------------------------
    def _collect_comments(self) -> None:
        tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
        try:
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                self.comments[line] = token.string
                before = self.source.splitlines()[line - 1][: token.start[1]]
                if not before.strip():
                    self.standalone_comments.add(line)
        except tokenize.TokenError:
            pass  # unterminated strings etc. — the ast parse already passed

    # ------------------------------------------------------------------
    # Statement / function lookup by comment line
    # ------------------------------------------------------------------
    def statement_at(self, line: int) -> ast.stmt | None:
        """The innermost simple statement whose span contains ``line``."""
        best: ast.stmt | None = None
        for stmt in self._statements:
            end = stmt.end_lineno or stmt.lineno
            if stmt.lineno <= line <= end:
                if best is None or stmt.lineno >= best.lineno:
                    best = stmt
        return best

    def statement_after(self, line: int) -> ast.stmt | None:
        """The first simple statement starting strictly after ``line``."""
        best: ast.stmt | None = None
        for stmt in self._statements:
            if stmt.lineno > line and (best is None or stmt.lineno < best.lineno):
                best = stmt
        return best

    def function_at_def_line(self, line: int) -> ast.AST | None:
        """The function whose signature (def line … first body line) has ``line``."""
        best: ast.AST | None = None
        for func in self.functions:
            first_body = func.body[0].lineno
            if func.lineno <= line < first_body or line == func.lineno:
                if best is None or func.lineno >= best.lineno:  # type: ignore[attr-defined]
                    best = func
        return best

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parents.get(current)
        return None

    # ------------------------------------------------------------------
    # Annotation parsing
    # ------------------------------------------------------------------
    def _parse_annotations(self) -> None:
        for line, text in sorted(self.comments.items()):
            disable = _DISABLE_RE.search(text)
            if disable:
                reason = (disable.group("reason") or "").strip()
                rules = tuple(
                    r.strip() for r in disable.group("rules").split(",")
                )
                if len(reason) < 3:  # at least "(x)"
                    self.malformed.append(
                        Finding(
                            self.relpath,
                            line,
                            "REP000",
                            "suppression without a reason: write "
                            "`# repro-lint: disable=REP00x (why this site is safe)`",
                        )
                    )
                else:
                    suppression = Suppression(
                        rules=rules,
                        reason=reason.strip("()").strip(),
                        comment_line=line,
                    )
                    suppression.lines.update(self._suppressed_lines(line))
                    self.suppressions.append(suppression)

            guarded = _GUARDED_BY_RE.search(text)
            if guarded:
                stmt = self.statement_at(line)
                if stmt is None:
                    self.malformed.append(
                        Finding(
                            self.relpath,
                            line,
                            "REP000",
                            "guarded-by annotation is not attached to an "
                            "assignment statement",
                        )
                    )
                else:
                    self.guarded_statements.append((stmt, guarded.group("lock")))

            holds = _HOLDS_RE.search(text)
            if holds:
                func = self.function_at_def_line(line)
                if func is None:
                    self.malformed.append(
                        Finding(
                            self.relpath,
                            line,
                            "REP000",
                            "holds= annotation must sit on a def line",
                        )
                    )
                else:
                    self.holds_functions[func] = holds.group("lock")

            if _FROZEN_ATTR_RE.search(text):
                stmt = self.statement_at(line)
                if stmt is None:
                    self.malformed.append(
                        Finding(
                            self.relpath,
                            line,
                            "REP000",
                            "frozen-attr annotation is not attached to an "
                            "assignment statement",
                        )
                    )
                else:
                    self.frozen_attr_statements.append(stmt)

            if _FROZEN_CACHE_RE.search(text):
                stmt = self.statement_at(line)
                if stmt is None:
                    self.malformed.append(
                        Finding(
                            self.relpath,
                            line,
                            "REP000",
                            "frozen-cache annotation is not attached to an "
                            "assignment statement",
                        )
                    )
                else:
                    self.frozen_cache_statements.append(stmt)

            if _RETURNS_FROZEN_RE.search(text):
                func = self.function_at_def_line(line)
                if func is None:
                    self.malformed.append(
                        Finding(
                            self.relpath,
                            line,
                            "REP000",
                            "returns-frozen annotation must sit on a def line",
                        )
                    )
                else:
                    self.returns_frozen_functions.add(func)

    def _suppressed_lines(self, comment_line: int) -> set[int]:
        """Lines a ``disable=`` at ``comment_line`` covers.

        Trailing: the whole span of the statement it trails (or the def
        line it sits on).  Standalone: the whole span of the next
        statement below it.
        """
        if comment_line in self.standalone_comments:
            stmt = self.statement_after(comment_line)
        else:
            stmt = self.statement_at(comment_line)
            if stmt is None:
                func = self.function_at_def_line(comment_line)
                if func is not None:
                    # Cover the signature lines of the def.
                    return set(range(func.lineno, func.body[0].lineno))
        if stmt is None:
            return {comment_line, comment_line + 1}
        end = stmt.end_lineno or stmt.lineno
        return set(range(stmt.lineno, end + 1))

    def is_suppressed(self, rule: str, line: int) -> bool:
        for suppression in self.suppressions:
            if rule in suppression.rules and line in suppression.lines:
                suppression.used = True
                return True
        return False


class RepoContext:
    """The full analysis target: repo root plus the parsed module set."""

    def __init__(self, root: Path, paths: list[Path] | None = None):
        self.root = root
        if paths is None:
            paths = sorted((root / "src" / "repro").rglob("*.py"))
        self.modules = [ModuleContext(root, path) for path in paths]

    def module(self, relpath: str) -> ModuleContext | None:
        for module in self.modules:
            if module.relpath == relpath:
                return module
        return None
