"""Drives every rule over a repo and folds in suppressions.

The pipeline: build a :class:`~tools.analysis.context.RepoContext` (parse
each file once), run every per-module rule and every repo-level rule,
drop findings covered by a valid ``disable=`` comment, then append the
bookkeeping findings — malformed annotations/suppressions (``REP000``)
and unused suppressions (a disable nothing triggers is stale and must be
deleted, or it will silently mask a future regression).
"""

from __future__ import annotations

from pathlib import Path

from tools.analysis.context import Finding, RepoContext
from tools.analysis.rules import ALL_RULES


def run_analysis(
    root: Path | str, paths: list[Path] | None = None
) -> list[Finding]:
    """All unsuppressed findings for the tree rooted at ``root``."""
    repo = RepoContext(Path(root), paths)
    findings: list[Finding] = []

    for rule in ALL_RULES:
        check_module = getattr(rule, "check_module", None)
        if check_module is not None:
            for module in repo.modules:
                for finding in check_module(module):
                    if not module.is_suppressed(finding.rule, finding.line):
                        findings.append(finding)
        check_repo = getattr(rule, "check_repo", None)
        if check_repo is not None:
            repo_findings = list(check_repo(repo))
            for finding in repo_findings:
                module = repo.module(finding.path)
                if module is not None and module.is_suppressed(
                    finding.rule, finding.line
                ):
                    continue
                findings.append(finding)

    for module in repo.modules:
        findings.extend(module.malformed)
        for suppression in module.suppressions:
            if not suppression.used:
                findings.append(
                    Finding(
                        module.relpath,
                        suppression.comment_line,
                        "REP000",
                        "stale suppression: "
                        f"disable={','.join(suppression.rules)} matched no "
                        "finding — delete it",
                    )
                )

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
