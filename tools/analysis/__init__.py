"""Repo-specific invariant linter for the BlinkML reproduction.

The serving stack runs on a handful of contracts that ordinary linters and
type checkers cannot see — determinism (no global RNG), frozen shared
arrays, lock discipline, process-backend picklability, config-knob parity,
public-API parity and typed-def coverage.  This package machine-checks
them: each rule module under :mod:`tools.analysis.rules` encodes exactly
one contract, reads the same annotation comments the source carries
(``# guarded-by: _lock``, ``# repro-lint: frozen-attr`` …) and reports
:class:`~tools.analysis.context.Finding` records.

Run it as ``python -m tools.analysis [--check] [paths…]``; the clean-tree
gate in ``tests/test_tools_analysis.py`` runs the same entry point under
pytest so CI fails the moment an invariant regresses.  Suppress a single
finding with a written reason::

    do_unusual_thing()  # repro-lint: disable=REP002 (why this site is safe)

A disable without a reason is itself an error (``REP000``).  The rules are
documented for humans in ``docs/invariants.md``.
"""

from __future__ import annotations

from tools.analysis.context import Finding, RepoContext
from tools.analysis.runner import run_analysis

__all__ = ["Finding", "RepoContext", "run_analysis"]
