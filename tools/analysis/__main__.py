"""CLI: ``python -m tools.analysis [--check] [paths…]``.

With no paths, analyses ``src/repro`` plus the doc-parity targets.  Exits
non-zero when any finding survives suppression, so CI can gate on it
(``--check`` is accepted for explicitness; it is the default behaviour).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.analysis.runner import run_analysis
from tools.analysis.rules import ALL_RULES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="Repo-specific invariant linter (REP001-REP007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on findings (the default; kept for CI clarity)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule inventory"
    )
    options = parser.parse_args(argv)

    root = Path(__file__).resolve().parents[2]

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.RULE_ID}  {rule.SUMMARY}")
        return 0

    paths: list[Path] | None = None
    if options.paths:
        paths = []
        for raw in options.paths:
            path = Path(raw)
            if not path.is_absolute():
                path = root / path
            if path.is_dir():
                paths.extend(sorted(path.rglob("*.py")))
            else:
                paths.append(path)

    findings = run_analysis(root, paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    print("invariant lint clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
