"""Coalesced contract serving: one streaming pass answers many callers.

The coalescing tier (`repro.serving`) sits in front of the registry.  A
`CoalescingService` holds one `ContractBatcher` per session key; concurrent
`answer()`/`train_to()` calls that land within a short batching window are
collected into one batch, identical (ε, δ) contracts are deduplicated into
single-flight followers, and the distinct survivors are dispatched as ONE
fused size search — every round of the bracketing search evaluates the
union of all active searches' candidate sizes in a single streamed pass
over the holdout.  Results are demultiplexed per caller and are
bitwise-identical to serial execution: coalescing changes how many passes
run, never what any caller gets back.

The example fires 8 concurrent ``train_to`` requests (duplicates + distinct
confidence levels) through the asyncio front-end, verifies every answer
against a serial baseline on an identically seeded session, and prints the
batching statistics that ``registry.stats()`` rolls up.

Run with::

    python examples/coalesced_serving.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import asyncio
import os
import time

import numpy as np

from repro import (
    ApproximationContract,
    CoalescingService,
    EstimationSession,
    LinearRegressionSpec,
)
from repro.data import gas_like, train_holdout_test_split
from repro.data.splits import SplitSpec

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))
BATCH = 8


async def serve_batch(service, contracts):
    """All requests issued concurrently — they land in one batching window."""
    return await asyncio.gather(
        *(service.train_to("gas-sensors", contract) for contract in contracts)
    )


def main() -> None:
    rows = 20_000 if SMOKE else 120_000
    print(f"Generating a gas-sensor-like workload ({rows} rows, 24 features)...")
    data = gas_like(n_rows=rows, n_features=24, seed=301)
    splits = train_holdout_test_split(
        data,
        SplitSpec(holdout_fraction=0.45, test_fraction=0.05),
        rng=np.random.default_rng(302),
    )
    spec = LinearRegressionSpec.with_estimated_noise(splits.train, regularization=1e-3)
    session_kwargs = dict(
        initial_sample_size=500 if SMOKE else 1_000,
        n_parameter_samples=64 if SMOKE else 128,
        rng=0,  # same seed => bitwise-identical sessions for the baseline
    )

    service = CoalescingService(window_ms=250.0, max_batch=BATCH)
    # Registering the key once also warms the session (trains m_0).
    baseline_session = service.batcher(
        "gas-sensors", spec, train=splits.train, holdout=splits.holdout,
        **session_kwargs,
    ).session

    # What ε does the initial model already achieve?  Place the workload
    # around it: tight contracts need a real size search, loose ones don't.
    epsilon0 = baseline_session.answer(
        ApproximationContract(epsilon=0.5, delta=0.05)
    ).estimate.epsilon
    tight = 0.3 * epsilon0
    contracts = [
        ApproximationContract(epsilon=tight, delta=0.05),
        ApproximationContract(epsilon=tight, delta=0.04),
        ApproximationContract(epsilon=tight, delta=0.05),  # duplicate
        ApproximationContract(epsilon=tight, delta=0.06),
        ApproximationContract(epsilon=tight, delta=0.045),
        ApproximationContract(epsilon=tight, delta=0.05),  # duplicate
        ApproximationContract(epsilon=0.9 * epsilon0, delta=0.05),
        ApproximationContract(epsilon=0.8 * epsilon0, delta=0.10),
    ]

    start = time.perf_counter()
    results = asyncio.run(serve_batch(service, contracts))
    elapsed = time.perf_counter() - start

    # Serial baseline on a fresh, identically seeded session.
    serial_session = EstimationSession(
        spec, splits.train, splits.holdout, **session_kwargs
    )
    serial_start = time.perf_counter()
    serial = [serial_session.train_to(contract) for contract in contracts]
    serial_elapsed = time.perf_counter() - serial_start

    mismatches = sum(
        1
        for fused, lone in zip(results, serial)
        if fused.sample_size != lone.sample_size
        or not np.array_equal(fused.model.theta, lone.model.theta)
        or fused.estimated_epsilon != lone.estimated_epsilon
    )
    print(
        f"\n{BATCH} concurrent train_to requests in {elapsed:.3f}s "
        f"(serial loop: {serial_elapsed:.3f}s, {serial_elapsed / elapsed:.2f}x)"
    )
    print(f"bitwise-identical to serial: {mismatches == 0}")

    stats = service.batching_stats()
    print(
        f"\nbatcher: {stats.requests} request(s) in {stats.batches} batch(es), "
        f"{stats.coalesced_requests} deduplicated in-window"
    )
    print(
        f"size-search passes: {stats.fused_passes} fused vs "
        f"{stats.serial_passes} serial-equivalent "
        f"({stats.passes_saved} saved, window occupancy "
        f"{stats.window_occupancy:.1f} req/window)"
    )

    fleet = service.stats()
    print(
        f"registry roll-up: {fleet.sessions} session(s), "
        f"{fleet.bytes}/{fleet.max_total_bytes} budget bytes, "
        f"serving.requests={fleet.serving.requests}"
    )
    service.close()


if __name__ == "__main__":
    main()
