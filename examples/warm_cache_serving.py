"""Serving across restarts with the cross-process warm cache tier.

A serving process answers repeat contracts from its in-memory caches, but
those die with the process.  This example wires a
:class:`~repro.WarmCacheTier` beneath a session's caches and simulates a
restart: the second "process generation" is a brand-new session (fresh
in-memory caches, fresh RNG stream) pointed at the same warm directory,
and it answers the same contract stream with **zero streamed holdout
passes** — every expensive artifact (sorted difference vectors, the size
search) is loaded from digest-verified ``.npz`` entries instead of
recomputed.  A final section flips one byte in an entry to show the tamper
story: the corrupt entry is quarantined and transparently recomputed, so
corruption costs passes, never answers.

In production the directory is shared by *co-located processes* too — the
entries are content-addressed and published atomically, so concurrent
writers are benign (see ``benchmarks/bench_warm_cache.py`` for the true
multi-process version).

Run with::

    python examples/warm_cache_serving.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import glob
import os
import tempfile
import time

import numpy as np

from repro import ApproximationContract, EstimationSession, LogisticRegressionSpec
from repro.data import higgs_like, train_holdout_test_split
from repro.evaluation.streaming import streaming_pass_count

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))

CONTRACTS = (
    ApproximationContract(epsilon=0.015, delta=0.05),
    ApproximationContract(epsilon=0.010, delta=0.05),
    ApproximationContract(epsilon=0.015, delta=0.05),  # repeat
)


def serve_generation(label: str, warm_dir: str, splits) -> list[tuple]:
    """One 'process generation': a fresh session against the warm dir."""
    session = EstimationSession(
        LogisticRegressionSpec(regularization=1e-3),
        splits.train,
        splits.holdout,
        warm_cache=warm_dir,
        rng=0,
        n_parameter_samples=24 if SMOKE else 64,
        initial_sample_size=250 if SMOKE else 1_000,
    )
    passes_before = streaming_pass_count()
    start = time.perf_counter()
    rows = []
    for contract in CONTRACTS:
        result = session.train_to(contract)
        rows.append(
            (result.model.theta.tobytes(), result.estimated_epsilon, result.sample_size)
        )
        print(
            f"  ε={contract.epsilon:.3f}: n={result.sample_size:>5}  "
            f"ε̂={result.estimated_epsilon:.4f}"
        )
    session.warm_cache.flush()
    stats = session.warm_cache.stats()
    print(
        f"{label}: {streaming_pass_count() - passes_before} streamed passes, "
        f"{time.perf_counter() - start:.2f}s  "
        f"(warm hits={stats.hits} writes={stats.writes} "
        f"quarantined={stats.quarantined})\n"
    )
    return rows


def main() -> None:
    rows = 2_500 if SMOKE else 20_000
    print(f"Generating a HIGGS-like workload ({rows} rows)...")
    splits = train_holdout_test_split(
        higgs_like(n_rows=rows, n_features=10 if SMOKE else 16, seed=13),
        rng=np.random.default_rng(0),
    )

    with tempfile.TemporaryDirectory(prefix="blinkml-warm-") as warm_dir:
        print("generation 1 (cold: empty warm directory)")
        cold = serve_generation("cold", warm_dir, splits)
        entries = glob.glob(os.path.join(warm_dir, "warm-*.npz"))
        print(f"published {len(entries)} warm entries under {warm_dir}\n")

        print("generation 2 (restart: fresh session, same directory)")
        warm = serve_generation("warm restart", warm_dir, splits)
        print(f"restart answers bitwise identical to cold run: {warm == cold}\n")

        # Tamper with one entry: the digest check quarantines it and the
        # answer is recomputed — corruption never surfaces a wrong result.
        victim = sorted(entries)[0]
        blob = bytearray(open(victim, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(victim, "wb") as handle:
            handle.write(bytes(blob))
        print("generation 3 (restart after flipping one byte in an entry)")
        tampered = serve_generation("tampered restart", warm_dir, splits)
        print(f"tampered restart still bitwise identical: {tampered == cold}")


if __name__ == "__main__":
    main()
