"""Plugging a custom MLE model into BlinkML.

BlinkML's estimators only need the model-class-specification interface
(paper Section 2.2): the per-example gradients of the negative
log-likelihood and a prediction-difference function.  This example defines a
model BlinkML does not ship — exponential regression, where
``y ~ Exponential(rate = exp(-θᵀx))`` models positive waiting times — and
trains it under an approximation contract without touching any library
internals.

Run with::

    python examples/custom_model.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os

import numpy as np

from repro import BlinkML, ModelClassSpec
from repro.data import Dataset, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


class ExponentialRegressionSpec(ModelClassSpec):
    """MLE for exponentially distributed waiting times with log-linear mean.

    The mean waiting time is ``exp(θᵀx)``; the per-example negative
    log-likelihood is ``θᵀx + y·exp(−θᵀx)`` with gradient
    ``(1 − y·exp(−θᵀx)) x``.
    """

    task = "regression"
    name = "exponential"

    def n_parameters(self, dataset: Dataset) -> int:
        return dataset.n_features

    def loss(self, theta: np.ndarray, dataset: Dataset) -> float:
        eta = np.clip(dataset.X @ theta, -30, 30)
        data_term = float(np.mean(eta + dataset.y * np.exp(-eta)))
        return data_term + 0.5 * self.regularization * float(theta @ theta)

    def per_example_gradients(self, theta: np.ndarray, dataset: Dataset) -> np.ndarray:
        eta = np.clip(dataset.X @ theta, -30, 30)
        return (1.0 - dataset.y * np.exp(-eta))[:, None] * dataset.X

    def predict(self, theta: np.ndarray, X: np.ndarray) -> np.ndarray:
        return np.exp(np.clip(np.asarray(X) @ theta, -30, 30))

    def prediction_difference(self, theta_a, theta_b, dataset: Dataset) -> float:
        pred_a = self.predict(theta_a, dataset.X)
        pred_b = self.predict(theta_b, dataset.X)
        scale = float(np.std(dataset.y)) or 1.0
        return float(np.sqrt(np.mean((pred_a - pred_b) ** 2))) / scale


def make_waiting_time_data(n_rows: int, n_features: int, seed: int = 61) -> Dataset:
    """Synthetic service-time data: waiting times with a log-linear mean."""
    rng = np.random.default_rng(seed)
    X = np.hstack([np.ones((n_rows, 1)), rng.normal(scale=0.5, size=(n_rows, n_features - 1))])
    theta_true = rng.normal(scale=0.3, size=n_features)
    theta_true[0] = 1.0
    means = np.exp(X @ theta_true)
    y = rng.exponential(means)
    return Dataset(X, y, name="waiting_times")


def main() -> None:
    n_rows = 8_000 if SMOKE else 60_000
    print(f"Generating waiting-time data ({n_rows} rows, 10 features)...")
    data = make_waiting_time_data(n_rows, 10)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(6))

    spec = ExponentialRegressionSpec(regularization=1e-3)
    trainer = BlinkML(
        spec,
        initial_sample_size=800 if SMOKE else 4_000,
        n_parameter_samples=32 if SMOKE else 96,
        seed=0,
    )
    result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.95)
    print("\nBlinkML result for the custom model")
    print("  " + result.summary())

    full_model = trainer.train_full(splits.train)
    difference = spec.prediction_difference(result.model.theta, full_model.theta, splits.holdout)
    print(f"\nNormalised RMS difference of predicted mean waiting times vs the full model: "
          f"{difference:.4f} (requested at most {result.contract.epsilon:.4f})")


if __name__ == "__main__":
    main()
