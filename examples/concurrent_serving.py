"""Serving approximation contracts from a thread pool.

PR 2's `multi_contract_serving` example answers contracts one at a time; a
real deployment serves them concurrently.  The session's caches are
thread-safe bounded LRUs with single-flight computation, so a pool of
worker threads can hammer `answer()` / `accuracy_estimate()` on one shared
session: the first request for each (θ, n) pair runs the k streamed model
diffs exactly once — even when several threads ask simultaneously — and
every other request is a lock plus a conservative-quantile lookup.

The example serves a shuffled stream of requests from 8 threads, verifies
the answers are identical to a serial run, and prints the per-cache
hit/miss/eviction statistics that `session.cache_stats()` exposes.

Run with::

    python examples/concurrent_serving.py
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import ApproximationContract, BlinkML, LogisticRegressionSpec
from repro.data import higgs_like, train_holdout_test_split

N_THREADS = 8


def main() -> None:
    print("Generating a HIGGS-like workload (80k rows, 16 features)...")
    data = higgs_like(n_rows=80_000, n_features=16, seed=21)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(0))

    def make_trainer() -> BlinkML:
        # One trainer per session: a BlinkML instance advances its own RNG
        # as it opens sessions, so seed-identical sessions need fresh
        # trainers built from the same seed.
        return BlinkML(
            LogisticRegressionSpec(regularization=1e-3),
            initial_sample_size=4_000,
            n_parameter_samples=128,
            seed=0,
        )

    start = time.perf_counter()
    session = make_trainer().session(splits.train, splits.holdout)
    print(f"session opened (m_0 + statistics) in {time.perf_counter() - start:.2f}s")

    # A shuffled stream of contracts, repeated as real traffic repeats them.
    contracts = [
        ApproximationContract.from_accuracy(0.85),
        ApproximationContract.from_accuracy(0.90),
        ApproximationContract.from_accuracy(0.95, delta=0.01),
        ApproximationContract.from_accuracy(0.99, delta=0.2),
    ]
    workload = contracts * 25
    random.Random(0).shuffle(workload)

    # Serial reference on a seed-identical session.
    serial_session = make_trainer().session(splits.train, splits.holdout)
    serial = {contract: serial_session.answer(contract) for contract in contracts}

    start = time.perf_counter()
    with ThreadPoolExecutor(N_THREADS) as pool:
        answers = list(pool.map(session.answer, workload))
    elapsed = time.perf_counter() - start

    mismatches = sum(
        1
        for contract, answer in zip(workload, answers)
        if answer.estimate.epsilon != serial[contract].estimate.epsilon
    )
    computed = sum(1 for answer in answers if not answer.from_cache)
    print(
        f"\n{len(workload)} requests from {N_THREADS} threads in {elapsed:.3f}s "
        f"({len(workload) / elapsed:,.0f} req/s)"
    )
    print(
        f"identical to serial: {mismatches == 0} — "
        f"{computed} request(s) computed the difference vector, "
        f"{len(workload) - computed} served from cache"
    )

    print("\ncache statistics:")
    header = f"{'cache':<8}{'hits':>7}{'misses':>8}{'evictions':>11}{'entries':>9}{'hit rate':>10}"
    print(header)
    print("-" * len(header))
    for name, stats in session.cache_stats().items():
        print(
            f"{name:<8}{stats.hits:>7}{stats.misses:>8}{stats.evictions:>11}"
            f"{stats.entries:>9}{stats.hit_rate:>10.1%}"
        )


if __name__ == "__main__":
    main()
