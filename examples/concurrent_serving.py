"""Serving approximation contracts from a thread pool, via the registry.

A real deployment serves contracts concurrently.  Both tiers of the
serving stack are thread-safe: the `SessionRegistry` resolves keys to live
sessions with single-flight construction (concurrent first requests for a
missing key train m_0 exactly once between them), and the session's caches
are bounded LRUs with single-flight computes, so a pool of worker threads
can hammer `get_or_create()` + `answer()` freely: the first request for
each (θ, n) pair runs the k streamed model diffs once and every other
request is a lock plus a conservative-quantile lookup.

The example serves a shuffled stream of requests from 8 threads — every
request resolving its session through the registry, as a stateless handler
would — verifies the answers are identical to a serial run, and prints the
per-cache statistics plus the `registry.stats()` fleet roll-up.

Run with::

    python examples/concurrent_serving.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro import ApproximationContract, LogisticRegressionSpec, SessionRegistry
from repro.data import higgs_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))
N_THREADS = 8


def main() -> None:
    rows = 8_000 if SMOKE else 80_000
    print(f"Generating a HIGGS-like workload ({rows} rows, 16 features)...")
    data = higgs_like(n_rows=rows, n_features=16, seed=21)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(0))
    spec = LogisticRegressionSpec(regularization=1e-3)
    session_kwargs = dict(
        initial_sample_size=800 if SMOKE else 4_000,
        n_parameter_samples=64 if SMOKE else 128,
        rng=0,  # same seed => bitwise-identical sessions across registries
    )

    registry = SessionRegistry()

    def serve(contract: ApproximationContract):
        session = registry.get_or_create(
            "higgs-ctr", spec, splits.train, splits.holdout, **session_kwargs
        )
        return session.answer(contract)

    # A shuffled stream of contracts, repeated as real traffic repeats them.
    contracts = [
        ApproximationContract.from_accuracy(0.85),
        ApproximationContract.from_accuracy(0.90),
        ApproximationContract.from_accuracy(0.95, delta=0.01),
        ApproximationContract.from_accuracy(0.99, delta=0.2),
    ]
    workload = contracts * 25
    random.Random(0).shuffle(workload)

    # Serial reference on a seed-identical session in its own registry.
    serial_registry = SessionRegistry()
    serial_session = serial_registry.get_or_create(
        "higgs-ctr", spec, splits.train, splits.holdout, **session_kwargs
    )
    serial = {contract: serial_session.answer(contract) for contract in contracts}

    start = time.perf_counter()
    with ThreadPoolExecutor(N_THREADS) as pool:
        answers = list(pool.map(serve, workload))
    elapsed = time.perf_counter() - start

    mismatches = sum(
        1
        for contract, answer in zip(workload, answers)
        if answer.estimate.epsilon != serial[contract].estimate.epsilon
    )
    computed = sum(1 for answer in answers if not answer.from_cache)
    print(
        f"\n{len(workload)} requests from {N_THREADS} threads in {elapsed:.3f}s "
        f"({len(workload) / elapsed:,.0f} req/s)"
    )
    print(
        f"identical to serial: {mismatches == 0} — "
        f"{computed} request(s) computed the difference vector, "
        f"{len(workload) - computed} served from cache"
    )

    session = registry.get("higgs-ctr")
    print("\ncache statistics:")
    header = f"{'cache':<8}{'hits':>7}{'misses':>8}{'evictions':>11}{'entries':>9}{'hit rate':>10}"
    print(header)
    print("-" * len(header))
    for name, stats in session.cache_stats().items():
        print(
            f"{name:<8}{stats.hits:>7}{stats.misses:>8}{stats.evictions:>11}"
            f"{stats.entries:>9}{stats.hit_rate:>10.1%}"
        )

    fleet = registry.stats()
    print(
        f"\nregistry: {fleet.sessions} session(s) constructed {fleet.misses} "
        f"time(s) for {fleet.requests} lookups — single-flight means the "
        f"{N_THREADS} threads' first requests trained m_0 once between them "
        f"(registry hit rate {fleet.hit_rate:.0%}, "
        f"{fleet.bytes}/{fleet.max_total_bytes} budget bytes)"
    )


if __name__ == "__main__":
    main()
