"""Observability: scrape a serving fleet and reconstruct request causality.

The observability tier (`repro.obs`) instruments the whole serving stack
with zero dependencies: a metrics registry (counters, gauges, latency
histograms) that every layer ticks into, and a tracer whose spans record
how an `answer()` decomposes into size-search rounds and streamed passes.
Telemetry is off by default; enabling it (``REPRO_OBS_ENABLED=1`` or
:func:`repro.obs.set_obs_enabled`) never changes results — only what you
can see.

The example runs a small fleet (two model families behind a
`CoalescingService`), serves a burst of contracts, then:

* prints the Prometheus text scrape the service exports — streamed-pass
  counters by scope, train/answer latency histograms, cache and registry
  and coalescing gauges bridged from the existing stats surfaces;
* prints the span tree of the last request — the causal chain
  ``train_to → answer → size search → streaming passes``;
* writes a JSON snapshot and re-loads it via ``python -m repro.obs``'s
  machinery, the shard-mergeable form fleet roll-ups use.

Run with::

    python examples/observability.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ApproximationContract,
    CoalescingService,
    LinearRegressionSpec,
    LogisticRegressionSpec,
    get_tracer,
    render_span_tree,
)
from repro.data import gas_like, higgs_like, train_holdout_test_split
from repro.data.splits import SplitSpec
from repro.obs import set_obs_enabled
from repro.obs.export import load_json_snapshot, write_json_snapshot

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def build_fleet(service: CoalescingService) -> None:
    rows = 10_000 if SMOKE else 60_000
    spec_rows = dict(n_rows=rows, n_features=12)
    regression = train_holdout_test_split(
        gas_like(seed=501, **spec_rows),
        SplitSpec(holdout_fraction=0.3, test_fraction=0.1),
        rng=np.random.default_rng(502),
    )
    classification = train_holdout_test_split(
        higgs_like(seed=503, **spec_rows),
        SplitSpec(holdout_fraction=0.3, test_fraction=0.1),
        rng=np.random.default_rng(504),
    )
    kwargs = dict(
        initial_sample_size=300 if SMOKE else 800,
        n_parameter_samples=32 if SMOKE else 96,
        rng=0,
    )
    service.batcher(
        "gas-regression",
        LinearRegressionSpec.with_estimated_noise(
            regression.train, regularization=1e-3
        ),
        train=regression.train,
        holdout=regression.holdout,
        **kwargs,
    )
    service.batcher(
        "higgs-classifier",
        LogisticRegressionSpec(regularization=1e-3),
        train=classification.train,
        holdout=classification.holdout,
        **kwargs,
    )


def main() -> None:
    set_obs_enabled(True)  # equivalent: REPRO_OBS_ENABLED=1 in the environment
    service = CoalescingService(window_ms=100.0)
    build_fleet(service)

    print("Serving a burst of contracts against both sessions...")
    for key in ("gas-regression", "higgs-classifier"):
        for epsilon, delta in ((0.2, 0.05), (0.15, 0.05), (0.2, 0.10)):
            service.answer_sync(key, ApproximationContract(epsilon, delta))
    tracer = get_tracer()
    tracer.clear()  # keep only the final request's spans for the tree below
    service.train_to_sync(
        "higgs-classifier", ApproximationContract(epsilon=0.12, delta=0.05)
    )

    print("\n=== Prometheus scrape (excerpt) ===")
    interesting = (
        "repro_streaming_passes_total",
        "repro_session_answer_seconds_count",
        "repro_session_train_seconds_count",
        "repro_size_search_rounds_total",
        "repro_coalescing_requests",
        "repro_cache_hits",
        "repro_registry_sessions",
        "repro_registry_bytes",
    )
    for line in service.prometheus_metrics().splitlines():
        if line.startswith(interesting):
            print(line)

    print("\n=== Span tree of the last train_to ===")
    # Through the coalescing tier the root is the batch dispatch; the tree
    # below it is session.train_to_many → size search → streamed passes.
    spans = tracer.finished_spans()
    roots = [span for span in spans if span.parent_id is None]
    print(render_span_tree(spans, trace_id=roots[-1].trace_id))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fleet-metrics.json"
        write_json_snapshot(service.metrics_snapshot(), path)
        restored = load_json_snapshot(path)
        print(
            f"\nJSON snapshot round trip: {path.name} -> "
            f"{restored.total('repro_streaming_passes_total'):.0f} streamed "
            "passes (snapshots merge across shards with .merge())"
        )

    service.close()
    set_obs_enabled(None)


if __name__ == "__main__":
    main()
