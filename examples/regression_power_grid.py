"""Approximate linear regression on a power-grid style workload.

Demonstrates two practical details for regression users:

* calibrating the Gaussian likelihood's noise variance with
  ``LinearRegressionSpec.with_estimated_noise`` so the ObservedFisher
  statistics (and therefore the sample-size estimates) are well scaled;
* reading the Lemma 1 bound: the approximate model's test error plus the
  contract's ε bounds the *full* model's test error, so you can reason about
  the model you never trained.

Run with::

    python examples/regression_power_grid.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os

import numpy as np

from repro import BlinkML, LinearRegressionSpec
from repro.core.guarantees import generalization_error_bound
from repro.data import power_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def main() -> None:
    n_rows, n_features = (8_000, 20) if SMOKE else (80_000, 60)
    print(f"Generating a Power-like workload ({n_rows} rows, {n_features} features)...")
    data = power_like(n_rows=n_rows, n_features=n_features, noise=0.4, seed=41)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(4))

    # Estimate the noise variance from a quick least-squares fit so the
    # likelihood is well specified (see the LinearRegressionSpec docstring).
    spec = LinearRegressionSpec.with_estimated_noise(splits.train, regularization=1e-3)
    print(f"Estimated observation-noise variance: {spec.noise_variance:.4f}")

    trainer = BlinkML(
        spec,
        initial_sample_size=800 if SMOKE else 5_000,
        n_parameter_samples=32 if SMOKE else 96,
        seed=0,
    )
    result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.97)
    print("\nBlinkML result")
    print("  " + result.summary())

    full_model = trainer.train_full(splits.train)
    difference = spec.prediction_difference(result.model.theta, full_model.theta, splits.holdout)
    print(f"\nNormalised RMS prediction difference vs the full model: {difference:.4f} "
          f"(requested at most {result.contract.epsilon:.4f})")

    def rms_error(theta: np.ndarray) -> float:
        predictions = spec.predict(theta, splits.test.X)
        return float(np.sqrt(np.mean((predictions - splits.test.y) ** 2)) / np.std(splits.test.y))

    approx_error = rms_error(result.model.theta)
    full_error = rms_error(full_model.theta)
    bound = generalization_error_bound(min(approx_error, 1.0), result.contract.epsilon)
    print("\nNormalised test RMS error")
    print(f"  approximate model: {approx_error:.4f}")
    print(f"  full model:        {full_error:.4f}")
    print(f"  Lemma 1 bound on the full model (from the approximate one): {bound:.4f}")


if __name__ == "__main__":
    main()
