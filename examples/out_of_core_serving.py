"""Serving contracts from an out-of-core shard store.

The paper's premise is that the full dataset is too large to touch more
than necessary — this example takes that literally.  The training and
holdout sets are written once as directories of memory-mapped ``.npy``
shards (`ShardStore.write`), and everything downstream runs against the
`ShardedDataset` views:

* the session's initial sample is gathered *by index* from the training
  shards (only the drawn rows ever enter memory);
* every holdout evaluation streams shard-snapped, zero-copy blocks through
  the sharded diff engine, so resident memory is O(k · block) — a constant
  factor of one block, not of N;
* the registry fingerprints both stores straight from their manifest
  digests (equal to the in-memory digests by construction), so stale data
  invalidation works without materialising a single row.

Run with::

    python examples/out_of_core_serving.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro import ApproximationContract, LogisticRegressionSpec, SessionRegistry
from repro.data import ShardStore, higgs_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def main() -> None:
    rows = 12_000 if SMOKE else 200_000
    shard_rows = 1_000 if SMOKE else 16_384
    print(f"Generating a HIGGS-like workload ({rows} rows, 24 features)...")
    data = higgs_like(n_rows=rows, n_features=24, seed=13)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(0))

    with tempfile.TemporaryDirectory(prefix="blinkml-store-") as root:
        # One-time ETL: persist both splits as shard stores.  Real
        # deployments would build these with ShardStoreWriter.append from a
        # scan cursor; the write path never buffers more than one shard.
        start = time.perf_counter()
        train_store = ShardStore.write(
            splits.train, os.path.join(root, "train"), shard_rows=shard_rows
        )
        holdout_store = ShardStore.write(
            splits.holdout, os.path.join(root, "holdout"), shard_rows=shard_rows
        )
        print(
            f"wrote {train_store.n_shards} train + {holdout_store.n_shards} "
            f"holdout shards in {time.perf_counter() - start:.2f}s "
            f"(digest {holdout_store.manifest.content_digest[:12]}...)"
        )
        holdout_store.verify()
        print("holdout store verified (per-shard + manifest digests)\n")

        train, holdout = train_store.dataset(), holdout_store.dataset()

        registry = SessionRegistry()  # default fleet bounds from repro.config
        spec = LogisticRegressionSpec(regularization=1e-3)
        start = time.perf_counter()
        session = registry.get_or_create(
            "higgs-ooc", spec, train, holdout,
            initial_sample_size=1_000 if SMOKE else 5_000,
            n_parameter_samples=32 if SMOKE else 128,
            rng=0,
        )
        print(
            "session opened from shards (m_0 trained on rows gathered by "
            f"index) in {time.perf_counter() - start:.2f}s"
        )

        # A stream of contracts: every holdout evaluation underneath is
        # zero-copy memory-mapped blocks, never the materialised matrix.
        for epsilon in (0.10, 0.05, 0.03, 0.02):
            contract = ApproximationContract(epsilon=epsilon, delta=0.05)
            start = time.perf_counter()
            result = session.train_to(contract)
            print(
                f"  ε={epsilon:.2f}: n={result.sample_size:>7}  "
                f"ε̂={result.estimated_epsilon:.4f}  "
                f"initial-model={result.used_initial_model!s:<5}  "
                f"({time.perf_counter() - start:.2f}s)"
            )

        # Fingerprint invalidation without materialisation: a re-offered
        # store with identical content hits, different content would miss.
        again = registry.get_or_create(
            "higgs-ooc", spec, train_store.dataset(), holdout_store.dataset(),
            rng=0,
        )
        stats = registry.stats()
        print(
            f"\nre-offered stores: same session={again is session}  "
            f"registry hits={stats.hits} misses={stats.misses}"
        )
        for info in stats.per_session:
            print(
                f"  {info.key}: cache bytes={info.bytes}  "
                f"traffic={info.traffic}  share={info.budget_bytes}"
            )


if __name__ == "__main__":
    main()
