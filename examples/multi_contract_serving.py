"""Serving many approximation contracts from one estimation session.

A serving deployment rarely trains for a single (ε, δ): different callers
ask for different accuracy/confidence trade-offs against the *same* data
and model family.  The `EstimationSession` computes everything
contract-independent once — the initial model, the H/J statistics, the
sampled model-difference distribution — and then answers each contract by a
conservative-quantile lookup on a cached sorted difference vector: after
the first contract, `session.answer()` performs zero new model evaluations.

Run with::

    python examples/multi_contract_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import ApproximationContract, BlinkML, LogisticRegressionSpec
from repro.data import higgs_like, train_holdout_test_split


def main() -> None:
    print("Generating a HIGGS-like workload (120k rows, 24 features)...")
    data = higgs_like(n_rows=120_000, n_features=24, seed=11)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(0))

    trainer = BlinkML(
        LogisticRegressionSpec(regularization=1e-3),
        initial_sample_size=5_000,
        n_parameter_samples=128,
        seed=0,
    )

    # Open the session once: trains m_0 and computes the statistics.
    start = time.perf_counter()
    session = trainer.session(splits.train, splits.holdout)
    print(f"session opened (m_0 + statistics) in {time.perf_counter() - start:.2f}s\n")

    # A stream of contracts, as a serving endpoint would see them.
    contracts = [
        ApproximationContract.from_accuracy(0.80),
        ApproximationContract.from_accuracy(0.90),
        ApproximationContract.from_accuracy(0.95),
        ApproximationContract.from_accuracy(0.90, delta=0.2),   # looser confidence
        ApproximationContract.from_accuracy(0.95, delta=0.01),  # tighter confidence
        ApproximationContract.from_accuracy(0.99),
    ]

    header = f"{'requested':>10}{'delta':>7}{'answered in':>13}{'cached':>8}{'m_0 ok?':>9}{'sample n':>10}"
    print(header)
    print("-" * len(header))
    for contract in contracts:
        start = time.perf_counter()
        answer = session.answer(contract)
        answer_ms = 1e3 * (time.perf_counter() - start)
        if answer.satisfied:
            sample_n = session.initial_sample_size
        else:
            sample_n = session.train_to(contract).sample_size
        print(
            f"{contract.requested_accuracy:>9.0%}{contract.delta:>7.2f}"
            f"{answer_ms:>11.2f}ms{str(answer.from_cache):>8}"
            f"{str(answer.satisfied):>9}{sample_n:>10}"
        )

    stats = session.cache_stats()["diff"]
    print(
        f"\ndifference-vector cache: {stats.misses} misses, {stats.hits} hits "
        f"({stats.hit_rate:.0%} hit rate, {stats.entries} entries, "
        f"{stats.bytes} bytes) — every contract after the first is answered "
        "by quantile lookup, no new model evaluations.  See "
        "examples/concurrent_serving.py for the threaded version."
    )


if __name__ == "__main__":
    main()
