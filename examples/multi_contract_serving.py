"""Serving many approximation contracts from one registered session.

A serving deployment rarely trains for a single (ε, δ): different callers
ask for different accuracy/confidence trade-offs against the *same* data
and model family.  The `EstimationSession` computes everything
contract-independent once — the initial model, the H/J statistics, the
sampled model-difference distribution — and then answers each contract by a
conservative-quantile lookup on a cached sorted difference vector: after
the first contract, `session.answer()` performs zero new model evaluations.

Sessions are obtained through the `SessionRegistry` (the fleet tier): the
first `get_or_create` for the key trains m_0, every later one returns the
same live session, and the registry's global byte budget caps what the
session's caches may hold.  `registry.stats()` at the end shows the
single-member fleet's hit rate, byte usage and eviction counts.

Run with::

    python examples/multi_contract_serving.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import ApproximationContract, LogisticRegressionSpec, SessionRegistry
from repro.data import higgs_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def main() -> None:
    rows = 10_000 if SMOKE else 120_000
    print(f"Generating a HIGGS-like workload ({rows} rows, 24 features)...")
    data = higgs_like(n_rows=rows, n_features=24, seed=11)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(0))

    registry = SessionRegistry()  # default fleet bounds from repro.config
    spec = LogisticRegressionSpec(regularization=1e-3)

    def session_for(key: str):
        """One registry key per (model, dataset) pair a deployment serves."""
        return registry.get_or_create(
            key, spec, splits.train, splits.holdout,
            initial_sample_size=1_000 if SMOKE else 5_000,
            n_parameter_samples=64 if SMOKE else 128,
            rng=0,
        )

    # The first lookup opens the session: trains m_0, computes statistics.
    start = time.perf_counter()
    session = session_for("higgs-ctr")
    print(f"session opened (m_0 + statistics) in {time.perf_counter() - start:.2f}s\n")

    # A stream of contracts, as a serving endpoint would see them; every
    # request re-resolves the key, as a stateless endpoint handler would.
    contracts = [
        ApproximationContract.from_accuracy(0.80),
        ApproximationContract.from_accuracy(0.90),
        ApproximationContract.from_accuracy(0.95),
        ApproximationContract.from_accuracy(0.90, delta=0.2),   # looser confidence
        ApproximationContract.from_accuracy(0.95, delta=0.01),  # tighter confidence
        ApproximationContract.from_accuracy(0.99),
    ]

    header = f"{'requested':>10}{'delta':>7}{'answered in':>13}{'cached':>8}{'m_0 ok?':>9}{'sample n':>10}"
    print(header)
    print("-" * len(header))
    for contract in contracts:
        session = session_for("higgs-ctr")
        start = time.perf_counter()
        answer = session.answer(contract)
        answer_ms = 1e3 * (time.perf_counter() - start)
        if answer.satisfied:
            sample_n = session.initial_sample_size
        else:
            sample_n = session.train_to(contract).sample_size
        print(
            f"{contract.requested_accuracy:>9.0%}{contract.delta:>7.2f}"
            f"{answer_ms:>11.2f}ms{str(answer.from_cache):>8}"
            f"{str(answer.satisfied):>9}{sample_n:>10}"
        )

    stats = session.cache_stats()["diff"]
    print(
        f"\ndifference-vector cache: {stats.misses} misses, {stats.hits} hits "
        f"({stats.hit_rate:.0%} hit rate, {stats.entries} entries, "
        f"{stats.bytes} bytes) — every contract after the first is answered "
        "by quantile lookup, no new model evaluations."
    )

    fleet = registry.stats()
    print(
        f"registry: {fleet.sessions} session(s), {fleet.bytes} of "
        f"{fleet.max_total_bytes} budget bytes in use, "
        f"{fleet.hits} hits / {fleet.misses} constructions "
        f"({fleet.hit_rate:.0%} hit rate, {fleet.evictions} evictions).  See "
        "examples/concurrent_serving.py for the threaded version and "
        "examples/fleet_serving.py for a multi-pair fleet."
    )


if __name__ == "__main__":
    main()
