"""Approximate Poisson regression for count-demand forecasting.

Poisson regression is one of the generalized linear models the paper's MLE
abstraction covers.  This example trains a trip-count model under an
approximation contract and compares its predicted rates with those of the
exact full model.

Run with::

    python examples/poisson_demand_forecast.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os

import numpy as np

from repro import BlinkML, PoissonRegressionSpec
from repro.data import bikeshare_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def main() -> None:
    n_rows = 8_000 if SMOKE else 80_000
    print(f"Generating a bike-share-like count workload ({n_rows} rows, 16 features)...")
    data = bikeshare_like(n_rows=n_rows, n_features=16, base_rate=4.0, seed=51)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(5))

    spec = PoissonRegressionSpec(regularization=1e-3)
    trainer = BlinkML(
        spec,
        initial_sample_size=800 if SMOKE else 5_000,
        n_parameter_samples=32 if SMOKE else 96,
        seed=0,
    )

    result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.97)
    print("\nBlinkML result")
    print("  " + result.summary())

    full_model = trainer.train_full(splits.train)
    difference = spec.prediction_difference(result.model.theta, full_model.theta, splits.holdout)
    print(f"\nNormalised RMS difference of predicted rates vs the full model: {difference:.4f} "
          f"(requested at most {result.contract.epsilon:.4f})")

    # How well do both models forecast held-out demand?
    def mean_absolute_error(theta: np.ndarray) -> float:
        rates = spec.predict(theta, splits.test.X)
        return float(np.mean(np.abs(rates - splits.test.y)))

    print("\nMean absolute error of the demand forecast on the test split")
    print(f"  approximate model: {mean_absolute_error(result.model.theta):.4f}")
    print(f"  full model:        {mean_absolute_error(full_model.theta):.4f}")


if __name__ == "__main__":
    main()
