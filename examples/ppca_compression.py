"""Approximate PPCA: learn a factor model from a small, quality-guaranteed sample.

PPCA extracts a low-dimensional factor subspace from high-dimensional data.
Because PPCA is an MLE model, BlinkML can train it on a sample while
guaranteeing that the learned factors stay within a requested cosine
distance of the factors the full data would produce (the paper's
unsupervised-model difference metric, Appendix C).

Run with::

    python examples/ppca_compression.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os

import numpy as np

from repro import BlinkML, PPCASpec
from repro.data import Dataset, mnist_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def main() -> None:
    n_rows, n_features = (6_000, 25) if SMOKE else (40_000, 64)
    print(f"Generating an MNIST-like image workload ({n_rows} rows, {n_features} 'pixels')...")
    raw = mnist_like(n_rows=n_rows, n_features=n_features, n_classes=10, seed=31)
    centered = Dataset(raw.X - raw.X.mean(axis=0), None, name="mnist_like_centered")
    splits = train_holdout_test_split(centered, rng=np.random.default_rng(3))

    spec = PPCASpec(n_factors=5 if SMOKE else 10, sigma2=1.0)
    trainer = BlinkML(
        spec,
        initial_sample_size=600 if SMOKE else 4_000,
        n_parameter_samples=32 if SMOKE else 96,
        seed=0,
    )

    result = trainer.train_with_accuracy(splits.train, splits.holdout, 0.99)
    print("\nBlinkML PPCA result")
    print("  " + result.summary())

    full_model = trainer.train_full(splits.train)
    cosine_distance = spec.prediction_difference(
        result.model.theta, full_model.theta, splits.holdout
    )
    print("\nComparison against the full-data factors")
    print(f"  cosine distance between factor matrices: {cosine_distance:.4f}")
    print(f"  (requested at most {result.contract.epsilon:.4f})")

    # Reconstruction quality on held-out data, approximate vs full factors.
    def reconstruction_error(theta: np.ndarray) -> float:
        reconstruction = spec.reconstruct(theta, splits.test.X)
        return float(np.linalg.norm(splits.test.X - reconstruction) / np.linalg.norm(splits.test.X))

    print("\nRelative reconstruction error on the test split")
    print(f"  approximate factors: {reconstruction_error(result.model.theta):.4f}")
    print(f"  full-data factors:   {reconstruction_error(full_model.theta):.4f}")


if __name__ == "__main__":
    main()
