"""Hyperparameter search with approximate models (paper Section 5.7).

Random search over (feature subset, regularisation) pairs, comparing two
strategies that consume the *same* candidate sequence:

* ``full``     — train an exact model for every candidate;
* ``blinkml``  — train a 95 %-accurate approximate model for every candidate.

Within the same time budget the BlinkML strategy evaluates far more
candidates, which is exactly the Figure 10 story.

Run with::

    python examples/hyperparameter_search.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os

import numpy as np

from repro import ApproximationContract, LogisticRegressionSpec
from repro.data import higgs_like, train_holdout_test_split
from repro.evaluation import format_table
from repro.tuning import RandomSearch, SearchSpace

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))
TIME_BUDGET_SECONDS = 2.0 if SMOKE else 15.0


def main() -> None:
    n_rows = 6_000 if SMOKE else 50_000
    print(f"Generating a HIGGS-like workload ({n_rows} rows, 24 features)...")
    data = higgs_like(n_rows=n_rows, n_features=24, seed=21)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(2))

    candidates = SearchSpace(
        n_features=24, min_features=6, max_features=24, log_reg_range=(-4, 0), seed=3
    ).sample(30 if SMOKE else 300)

    search = RandomSearch(
        spec_factory=lambda reg: LogisticRegressionSpec(regularization=reg),
        train=splits.train,
        holdout=splits.holdout,
        test=splits.test,
        contract=ApproximationContract.from_accuracy(0.95),
        initial_sample_size=500 if SMOKE else 3_000,
        n_parameter_samples=32 if SMOKE else 64,
        seed=0,
    )

    rows = []
    for strategy in ("full", "blinkml"):
        print(f"\nRunning the {strategy!r} strategy for {TIME_BUDGET_SECONDS:.0f} seconds...")
        result = search.run(
            candidates, strategy=strategy, time_budget_seconds=TIME_BUDGET_SECONDS
        )
        best = result.best_trial
        rows.append(
            {
                "strategy": strategy,
                "candidates_evaluated": result.n_trials,
                "best_test_accuracy": best.test_accuracy if best else float("nan"),
                "seconds_to_best": best.cumulative_seconds if best else float("nan"),
            }
        )

    print("\nSearch outcome within the shared time budget (cf. paper Figure 10):\n")
    print(format_table(rows))


if __name__ == "__main__":
    main()
