"""Hyperparameter search with approximate models (paper Section 5.7).

Random search over (feature subset, regularisation) pairs, comparing two
strategies that consume the *same* candidate sequence:

* ``full``     — train an exact model for every candidate;
* ``blinkml``  — train a 95 %-accurate approximate model for every candidate.

Within the same time budget the BlinkML strategy evaluates far more
candidates, which is exactly the Figure 10 story.

Run with::

    python examples/hyperparameter_search.py
"""

from __future__ import annotations

import numpy as np

from repro import ApproximationContract, LogisticRegressionSpec
from repro.data import higgs_like, train_holdout_test_split
from repro.evaluation import format_table
from repro.tuning import RandomSearch, SearchSpace

TIME_BUDGET_SECONDS = 15.0


def main() -> None:
    print("Generating a HIGGS-like workload (50k rows, 24 features)...")
    data = higgs_like(n_rows=50_000, n_features=24, seed=21)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(2))

    candidates = SearchSpace(
        n_features=24, min_features=6, max_features=24, log_reg_range=(-4, 0), seed=3
    ).sample(300)

    search = RandomSearch(
        spec_factory=lambda reg: LogisticRegressionSpec(regularization=reg),
        train=splits.train,
        holdout=splits.holdout,
        test=splits.test,
        contract=ApproximationContract.from_accuracy(0.95),
        initial_sample_size=3_000,
        n_parameter_samples=64,
        seed=0,
    )

    rows = []
    for strategy in ("full", "blinkml"):
        print(f"\nRunning the {strategy!r} strategy for {TIME_BUDGET_SECONDS:.0f} seconds...")
        result = search.run(
            candidates, strategy=strategy, time_budget_seconds=TIME_BUDGET_SECONDS
        )
        best = result.best_trial
        rows.append(
            {
                "strategy": strategy,
                "candidates_evaluated": result.n_trials,
                "best_test_accuracy": best.test_accuracy if best else float("nan"),
                "seconds_to_best": best.cumulative_seconds if best else float("nan"),
            }
        )

    print("\nSearch outcome within the shared time budget (cf. paper Figure 10):\n")
    print(format_table(rows))


if __name__ == "__main__":
    main()
