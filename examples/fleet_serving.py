"""Serving a fleet of (model, dataset) pairs from one SessionRegistry.

One `EstimationSession` answers any number of (ε, δ) contracts against a
single (model, dataset) pair; a deployment keeps many pairs live at once.
The `SessionRegistry` owns that fleet: `get_or_create(key, ...)` maps an
application key to a live session (training m_0 exactly once per key, even
under concurrent requests), every member's cache caps are rebalanced from
one **global byte budget**, the longest-idle session is evicted whole when
the fleet outgrows its bounds, and a changed training set is detected by
content fingerprint so stale cached answers can never be served.

The example serves a shuffled stream of contracts for several pairs, prints
the fleet statistics from `registry.stats()`, then demonstrates the two
invalidation paths: an explicit `invalidate(key)` and a dataset edit caught
by the fingerprint.

Run with::

    python examples/fleet_serving.py

Set ``REPRO_EXAMPLES_SMOKE=1`` to run a scaled-down configuration (used by
the CI example-smoke job).
"""

from __future__ import annotations

import os
import random
import time

import numpy as np

from repro import (
    ApproximationContract,
    Dataset,
    LinearRegressionSpec,
    LogisticRegressionSpec,
    SessionRegistry,
)
from repro.data import gas_like, higgs_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def build_fleet_pairs():
    """Four (key, spec, splits) serving pairs over two model families."""
    rows = 6_000 if SMOKE else 50_000
    pairs = []
    for index, (key, family, seed) in enumerate(
        [
            ("ctr-model/eu", "lr", 71),
            ("ctr-model/us", "lr", 72),
            ("sensor-drift/plant-a", "lin", 73),
            ("sensor-drift/plant-b", "lin", 74),
        ]
    ):
        if family == "lr":
            spec = LogisticRegressionSpec(regularization=1e-3)
            data = higgs_like(n_rows=rows, n_features=12, seed=seed)
        else:
            spec = LinearRegressionSpec(regularization=1e-3)
            data = gas_like(n_rows=rows, n_features=12, seed=seed)
        splits = train_holdout_test_split(data, rng=np.random.default_rng(index))
        pairs.append((key, spec, splits, seed))
    return pairs


def main() -> None:
    pairs = build_fleet_pairs()
    initial = 400 if SMOKE else 3_000
    k = 32 if SMOKE else 96

    # The global budget is deliberately tight so the rebalancing and
    # per-session eviction are visible in the printed statistics.
    registry = SessionRegistry(
        max_sessions=len(pairs),
        max_total_bytes=16 * 1024,
        min_session_bytes=1 * 1024,
    )
    lookup = {key: (spec, splits, seed) for key, spec, splits, seed in pairs}

    def serve(key, contract):
        spec, splits, seed = lookup[key]
        session = registry.get_or_create(
            key, spec, splits.train, splits.holdout,
            initial_sample_size=initial, n_parameter_samples=k, rng=seed,
        )
        return session.answer(contract)

    contracts = [
        ApproximationContract.from_accuracy(0.85),
        ApproximationContract.from_accuracy(0.90),
        ApproximationContract.from_accuracy(0.95, delta=0.01),
    ]
    workload = [(key, contract) for key, _, _, _ in pairs for contract in contracts]
    workload *= 3 if SMOKE else 10
    random.Random(0).shuffle(workload)

    print(f"Serving {len(workload)} contract requests across {len(pairs)} pairs...")
    start = time.perf_counter()
    served_from_cache = sum(1 for key, contract in workload if serve(key, contract).from_cache)
    elapsed = time.perf_counter() - start
    print(
        f"{len(workload)} requests in {elapsed:.2f}s — "
        f"{served_from_cache} answered from cache with zero new model evaluations\n"
    )

    stats = registry.stats()
    print(
        f"fleet: {stats.sessions} sessions, {stats.bytes} cache bytes of a "
        f"{stats.max_total_bytes}-byte global budget "
        f"({stats.session_budget_bytes} bytes per member), "
        f"registry hit rate {stats.hit_rate:.0%}"
    )
    header = f"{'key':<24}{'bytes':>8}{'idle s':>8}{'diff hits':>11}{'diff misses':>13}"
    print(header)
    print("-" * len(header))
    for info in stats.per_session:
        diff = info.cache_stats["diff"]
        print(
            f"{str(info.key):<24}{info.bytes:>8}{info.idle_seconds:>8.2f}"
            f"{diff.hits:>11}{diff.misses:>13}"
        )
    totals = stats.cache_totals()["diff"]
    print(
        f"fleet-wide difference-vector cache: {totals.hits} hits / "
        f"{totals.misses} misses ({totals.evictions} evictions under the "
        "byte budget)\n"
    )

    # --- Invalidation path 1: explicit --------------------------------
    victim = pairs[0][0]
    registry.invalidate(victim)
    print(f"invalidate({victim!r}): next request constructs a fresh session")

    # --- Invalidation path 2: the data changed under the key ----------
    key, (spec, splits, seed) = pairs[1][0], lookup[pairs[1][0]]
    stale = registry.get(key)
    edited_X = splits.train.X.copy()
    edited_X[0, :] += 0.5  # a retraining pipeline rewrote some rows
    edited_train = Dataset(edited_X, splits.train.y)
    fresh = registry.get_or_create(
        key, spec, edited_train, splits.holdout,
        initial_sample_size=initial, n_parameter_samples=k, rng=seed,
    )
    print(
        f"dataset for {key!r} changed: fingerprint mismatch discarded the "
        f"stale session ({fresh is not stale}), "
        f"fingerprint_invalidations={registry.stats().fingerprint_invalidations}"
    )
    answer = fresh.answer(contracts[0])
    print(
        f"first answer against the new data recomputed (from_cache="
        f"{answer.from_cache}) — a changed training set can never serve "
        "stale sorted-diff vectors"
    )


if __name__ == "__main__":
    main()
