"""Quickstart: train a 95%-accurate logistic-regression model with BlinkML.

The workflow mirrors Figure 1 of the paper: instead of handing the full
training set to a traditional trainer and waiting, you hand BlinkML the same
data *plus an approximation contract* (here: 95 % accuracy with 95 %
confidence) and get back a model trained on a small sample that is
guaranteed, with high probability, to make the same predictions as the full
model would.

Run with::

    python examples/quickstart.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import ApproximationContract, BlinkML, LogisticRegressionSpec
from repro.data import criteo_like, train_holdout_test_split

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def main() -> None:
    # A click-through-rate style workload (stand-in for the paper's Criteo
    # dataset); swap in your own `Dataset(X, y)` here.
    n_rows, n_features = (10_000, 30) if SMOKE else (100_000, 100)
    print(f"Generating a Criteo-like workload ({n_rows} rows, {n_features} sparse features)...")
    data = criteo_like(n_rows=n_rows, n_features=n_features, density=0.05, seed=7)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(0))

    spec = LogisticRegressionSpec(regularization=1e-3)
    contract = ApproximationContract.from_accuracy(0.95, delta=0.05)

    # --- BlinkML: approximate training under the contract ----------------
    trainer = BlinkML(
        spec,
        initial_sample_size=1_000 if SMOKE else 10_000,
        n_parameter_samples=48 if SMOKE else 128,
        seed=0,
    )
    start = time.perf_counter()
    result = trainer.train(splits.train, splits.holdout, contract)
    blinkml_seconds = time.perf_counter() - start

    print("\nBlinkML result")
    print("  " + result.summary())
    print(f"  wall-clock time: {blinkml_seconds:.2f}s")
    print(f"  phase breakdown: {result.timings.as_dict()}")

    # --- Traditional approach: train the exact full model ----------------
    start = time.perf_counter()
    full_model = trainer.train_full(splits.train)
    full_seconds = time.perf_counter() - start
    print("\nFull model (traditional ML library behaviour)")
    print(f"  trained on all {splits.train.n_rows} rows in {full_seconds:.2f}s")

    # --- Did the guarantee hold? ------------------------------------------
    agreement = 1.0 - spec.prediction_difference(
        result.model.theta, full_model.theta, splits.holdout
    )
    print("\nComparison")
    print(f"  actual prediction agreement with the full model: {agreement:.2%}")
    print(f"  requested: {contract.requested_accuracy:.2%} at confidence {contract.confidence:.0%}")
    print(f"  sample used: {result.sample_size} of {result.full_size} rows "
          f"({result.sample_fraction:.2%})")
    print(f"  speed-up over full training: {full_seconds / blinkml_seconds:.1f}x")


if __name__ == "__main__":
    main()
