"""Sweep the approximation contract and watch sample sizes adapt.

This example reproduces — at example scale — the behaviour behind Figures 5
and 6 of the paper: as the requested accuracy rises from 80 % to 99 %,
BlinkML automatically chooses larger samples, and the delivered (actual)
accuracy always tracks the request.

Run with::

    python examples/accuracy_contract_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro import BlinkML, LogisticRegressionSpec
from repro.data import higgs_like, train_holdout_test_split
from repro.evaluation import format_table, model_agreement


def main() -> None:
    print("Generating a HIGGS-like workload (60k rows, 28 features)...")
    data = higgs_like(n_rows=60_000, n_features=28, seed=11)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(1))

    spec = LogisticRegressionSpec(regularization=1e-3)
    full_model = spec.fit(splits.train)
    print(f"Full model trained on {splits.train.n_rows} rows (reference).")

    rows = []
    for requested in (0.80, 0.85, 0.90, 0.95, 0.99):
        trainer = BlinkML(spec, initial_sample_size=5_000, n_parameter_samples=96, seed=0)
        result = trainer.train_with_accuracy(splits.train, splits.holdout, requested)
        actual = model_agreement(spec, result.model.theta, full_model.theta, splits.holdout)
        rows.append(
            {
                "requested_accuracy": requested,
                "actual_accuracy": actual,
                "estimated_accuracy": result.estimated_accuracy,
                "sample_size": result.sample_size,
                "sample_fraction": result.sample_fraction,
                "served_by_initial_model": result.used_initial_model,
            }
        )

    print("\nRequested vs delivered accuracy (cf. paper Figures 5 and 6):\n")
    print(format_table(rows))
    print(
        "\nNote how loose requests are served by the initial 5k-row model alone, "
        "while tighter requests trigger a second, larger training run."
    )


if __name__ == "__main__":
    main()
