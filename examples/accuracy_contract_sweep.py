"""Sweep the approximation contract and watch sample sizes adapt.

This example reproduces — at example scale — the behaviour behind Figures 5
and 6 of the paper: as the requested accuracy rises from 80 % to 99 %,
BlinkML automatically chooses larger samples, and the delivered (actual)
accuracy always tracks the request.

Run with::

    python examples/accuracy_contract_sweep.py

Set ``REPRO_EXAMPLES_SMOKE=1`` for the scaled-down CI configuration.
"""

from __future__ import annotations

import os

import numpy as np

from repro import BlinkML, LogisticRegressionSpec
from repro.data import higgs_like, train_holdout_test_split
from repro.evaluation import format_table, model_agreement

SMOKE = bool(os.environ.get("REPRO_EXAMPLES_SMOKE"))


def main() -> None:
    n_rows = 8_000 if SMOKE else 60_000
    initial = 800 if SMOKE else 5_000
    print(f"Generating a HIGGS-like workload ({n_rows} rows, 28 features)...")
    data = higgs_like(n_rows=n_rows, n_features=28, seed=11)
    splits = train_holdout_test_split(data, rng=np.random.default_rng(1))

    spec = LogisticRegressionSpec(regularization=1e-3)
    full_model = spec.fit(splits.train)
    print(f"Full model trained on {splits.train.n_rows} rows (reference).")

    rows = []
    for requested in (0.80, 0.90, 0.95) if SMOKE else (0.80, 0.85, 0.90, 0.95, 0.99):
        trainer = BlinkML(
            spec,
            initial_sample_size=initial,
            n_parameter_samples=32 if SMOKE else 96,
            seed=0,
        )
        result = trainer.train_with_accuracy(splits.train, splits.holdout, requested)
        actual = model_agreement(spec, result.model.theta, full_model.theta, splits.holdout)
        rows.append(
            {
                "requested_accuracy": requested,
                "actual_accuracy": actual,
                "estimated_accuracy": result.estimated_accuracy,
                "sample_size": result.sample_size,
                "sample_fraction": result.sample_fraction,
                "served_by_initial_model": result.used_initial_model,
            }
        )

    print("\nRequested vs delivered accuracy (cf. paper Figures 5 and 6):\n")
    print(format_table(rows))
    print(
        f"\nNote how loose requests are served by the initial {initial}-row "
        "model alone, while tighter requests trigger a second, larger "
        "training run."
    )


if __name__ == "__main__":
    main()
