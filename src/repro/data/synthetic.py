"""Synthetic workload generators standing in for the paper's datasets.

The paper evaluates BlinkML on six public datasets (Table 2): Gas, Power,
Criteo, HIGGS, infinite-MNIST and Yelp.  The raw files are multi-gigabyte
downloads that are unavailable offline, so this module generates synthetic
datasets that play the same *statistical role* for each experiment:

============  ==========================  =================================
paper         task                        synthetic stand-in
============  ==========================  =================================
Gas           regression, d=57, dense     correlated sensor drift signal
Power         regression, d=114, dense    periodic load + noise
Criteo        binary cls, sparse, huge d  sparse bag-of-features clicks
HIGGS         binary cls, d=28, dense     two overlapping Gaussian classes
                                          with nonlinear derived features
MNIST         10-class cls, d=784         low-rank class-template images
Yelp          5-class cls, bag of words   topic-model review counts
============  ==========================  =================================

What BlinkML exercises — the asymptotic normality of MLE parameters trained
on uniform samples — depends on the task type, feature dimensionality and
noise level, not on the provenance of the rows, so the who-wins/crossover
shapes of the paper's figures are preserved.

Every generator accepts ``n_rows`` and (where meaningful) dimensionality
parameters so the same code can be scaled from unit-test size to the paper's
scale.
"""

from __future__ import annotations

from typing import Any

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError


@dataclass(frozen=True)
class SyntheticSpec:
    """Description of a synthetic workload (used by the benchmark harness)."""

    name: str
    task: str  # "regression" | "binary" | "multiclass" | "unsupervised"
    n_rows: int
    n_features: int
    n_classes: int = 2

    def __post_init__(self) -> None:
        if self.task not in {"regression", "binary", "multiclass", "unsupervised"}:
            raise DataError(f"unknown task type: {self.task!r}")
        if self.n_rows <= 0 or self.n_features <= 0:
            raise DataError("n_rows and n_features must be positive")


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


# ----------------------------------------------------------------------
# Regression workloads (Gas, Power)
# ----------------------------------------------------------------------
def gas_like(
    n_rows: int = 50_000,
    n_features: int = 57,
    noise: float = 0.5,
    seed: int | None = 0,
) -> Dataset:
    """Chemical-sensor-style regression data (stand-in for the Gas dataset).

    Features are correlated sensor channels responding to a shared latent
    concentration signal plus per-sensor drift; the target is a linear
    combination of the channels with additive Gaussian noise.
    """
    rng = _rng(seed)
    n_latent = max(2, n_features // 8)
    latent = rng.normal(size=(n_rows, n_latent))
    mixing = rng.normal(scale=1.0, size=(n_latent, n_features))
    drift = np.cumsum(rng.normal(scale=0.01, size=(n_rows, 1)), axis=0)
    X = latent @ mixing + drift + rng.normal(scale=0.2, size=(n_rows, n_features))
    true_theta = rng.normal(scale=1.0 / np.sqrt(n_features), size=n_features)
    y = X @ true_theta + rng.normal(scale=noise, size=n_rows)
    return Dataset(X, y, name="gas_like", metadata={"task": "regression"})


def power_like(
    n_rows: int = 50_000,
    n_features: int = 114,
    noise: float = 0.3,
    seed: int | None = 1,
) -> Dataset:
    """Household-power-style regression data (stand-in for the Power dataset).

    Features combine periodic (daily/weekly) load components with appliance
    sub-meter readings; the target is total consumption.
    """
    rng = _rng(seed)
    t = np.arange(n_rows, dtype=np.float64)
    n_periodic = min(8, n_features)
    periods = np.geomspace(24.0, 24.0 * 7 * 4, num=n_periodic)
    periodic = np.column_stack(
        [np.sin(2 * np.pi * t / p + rng.uniform(0, 2 * np.pi)) for p in periods]
    )
    n_rest = n_features - n_periodic
    rest = rng.gamma(shape=2.0, scale=0.5, size=(n_rows, n_rest)) if n_rest else None
    X = periodic if rest is None else np.hstack([periodic, rest])
    true_theta = rng.normal(scale=1.0 / np.sqrt(n_features), size=n_features)
    y = X @ true_theta + rng.normal(scale=noise, size=n_rows)
    return Dataset(X, y, name="power_like", metadata={"task": "regression"})


# ----------------------------------------------------------------------
# Binary classification workloads (Criteo, HIGGS)
# ----------------------------------------------------------------------
def criteo_like(
    n_rows: int = 50_000,
    n_features: int = 500,
    density: float = 0.05,
    class_balance: float = 0.25,
    seed: int | None = 2,
) -> Dataset:
    """Click-through-rate-style sparse binary classification data.

    Criteo features are overwhelmingly sparse one-hot encodings of
    categorical ad/user attributes; clicks are rare.  The stand-in draws a
    sparse non-negative feature matrix (each row activates roughly
    ``density * n_features`` features) and labels from a logistic model with
    an intercept chosen to hit the requested positive-class rate.
    """
    rng = _rng(seed)
    if not 0 < density <= 1:
        raise DataError("density must lie in (0, 1]")
    X = np.zeros((n_rows, n_features))
    n_active = max(1, int(round(density * n_features)))
    for i in range(n_rows):
        cols = rng.choice(n_features, size=n_active, replace=False)
        X[i, cols] = rng.exponential(scale=1.0, size=n_active)
    true_theta = rng.normal(scale=1.5 / np.sqrt(n_active), size=n_features)
    logits = X @ true_theta
    # Shift the intercept so the marginal positive rate matches class_balance.
    logits += np.quantile(-logits, class_balance)
    probs = 1.0 / (1.0 + np.exp(-logits))
    y = (rng.uniform(size=n_rows) < probs).astype(np.int64)
    return Dataset(X, y, name="criteo_like", metadata={"task": "binary"})


def higgs_like(
    n_rows: int = 50_000,
    n_features: int = 28,
    separation: float = 1.0,
    seed: int | None = 3,
) -> Dataset:
    """Particle-physics-style dense binary classification data.

    Two overlapping Gaussian classes in a low-dimensional latent space,
    augmented with nonlinear derived features (pairwise products), mimicking
    HIGGS's mix of low-level and derived kinematic features.
    """
    rng = _rng(seed)
    n_low = max(4, n_features // 2)
    n_derived = n_features - n_low
    y = rng.integers(0, 2, size=n_rows)
    centers = separation * rng.normal(size=(2, n_low)) / np.sqrt(n_low)
    low = rng.normal(size=(n_rows, n_low)) + centers[y]
    if n_derived > 0:
        pair_idx = rng.integers(0, n_low, size=(n_derived, 2))
        derived = low[:, pair_idx[:, 0]] * low[:, pair_idx[:, 1]]
        X = np.hstack([low, derived])
    else:
        X = low
    return Dataset(X, y.astype(np.int64), name="higgs_like", metadata={"task": "binary"})


# ----------------------------------------------------------------------
# Multiclass workloads (MNIST, Yelp)
# ----------------------------------------------------------------------
def mnist_like(
    n_rows: int = 50_000,
    n_features: int = 196,
    n_classes: int = 10,
    template_rank: int = 12,
    noise: float = 0.35,
    seed: int | None = 4,
) -> Dataset:
    """Hand-written-digit-style multiclass data (stand-in for infinite MNIST).

    Each class has a low-rank template image; examples are noisy mixtures of
    their class template with random deformation coefficients, clipped to the
    non-negative intensity range as pixel data would be.
    """
    rng = _rng(seed)
    if n_classes < 2:
        raise DataError("mnist_like requires at least two classes")
    basis = rng.normal(size=(template_rank, n_features))
    class_coeff = rng.normal(scale=1.5, size=(n_classes, template_rank))
    y = rng.integers(0, n_classes, size=n_rows)
    deformation = rng.normal(scale=0.4, size=(n_rows, template_rank))
    coeffs = class_coeff[y] + deformation
    X = coeffs @ basis + rng.normal(scale=noise, size=(n_rows, n_features))
    X = np.clip(X, 0.0, None)
    return Dataset(
        X, y.astype(np.int64), name="mnist_like", metadata={"task": "multiclass"}
    )


def yelp_like(
    n_rows: int = 50_000,
    n_features: int = 1_000,
    n_classes: int = 5,
    n_topics: int = 20,
    document_length: int = 40,
    seed: int | None = 5,
) -> Dataset:
    """Review-rating-style bag-of-words multiclass data (stand-in for Yelp).

    A small topic model: each rating class has a distribution over topics,
    each topic a distribution over vocabulary terms.  Documents are sampled
    term counts, which produces the sparse, integer-valued, heavy-tailed
    feature matrix typical of text classification.
    """
    rng = _rng(seed)
    topic_word = rng.dirichlet(np.full(n_features, 0.05), size=n_topics)
    class_topic = rng.dirichlet(np.full(n_topics, 0.3), size=n_classes)
    y = rng.integers(0, n_classes, size=n_rows)
    X = np.zeros((n_rows, n_features))
    for i in range(n_rows):
        topic_mixture = class_topic[y[i]] @ topic_word
        X[i] = rng.multinomial(document_length, topic_mixture)
    return Dataset(
        X, y.astype(np.int64), name="yelp_like", metadata={"task": "multiclass"}
    )


# ----------------------------------------------------------------------
# Count-data workload (Poisson regression)
# ----------------------------------------------------------------------
def bikeshare_like(
    n_rows: int = 50_000,
    n_features: int = 24,
    base_rate: float = 3.0,
    seed: int | None = 6,
) -> Dataset:
    """Trip-count-style data for Poisson regression.

    The paper lists Poisson regression among the GLMs its MLE abstraction
    covers; this workload exercises it.  The first feature is a constant
    intercept (so the log-linear model is well specified), the rest mix
    periodic (hour/weekday) signals with weather-like covariates; counts are
    drawn from a Poisson distribution whose log-rate is linear in the
    features.
    """
    rng = _rng(seed)
    if n_features < 2:
        raise DataError("bikeshare_like needs at least two features (incl. intercept)")
    t = np.arange(n_rows, dtype=np.float64)
    n_periodic = min(6, n_features - 1)
    periods = np.geomspace(24.0, 24.0 * 7, num=n_periodic)
    periodic = np.column_stack(
        [np.sin(2 * np.pi * t / p + rng.uniform(0, 2 * np.pi)) for p in periods]
    )
    n_rest = n_features - 1 - n_periodic
    columns = [np.ones((n_rows, 1)), periodic]
    if n_rest:
        columns.append(rng.normal(scale=0.5, size=(n_rows, n_rest)))
    X = np.hstack(columns)
    true_theta = rng.normal(scale=0.4 / np.sqrt(n_features), size=n_features)
    true_theta[0] = np.log(base_rate)
    log_rates = X @ true_theta
    y = rng.poisson(np.exp(np.clip(log_rates, -10, 10))).astype(np.float64)
    return Dataset(X, y, name="bikeshare_like", metadata={"task": "regression"})


# ----------------------------------------------------------------------
# Generic factory
# ----------------------------------------------------------------------
_GENERATORS = {
    "gas_like": gas_like,
    "power_like": power_like,
    "criteo_like": criteo_like,
    "higgs_like": higgs_like,
    "mnist_like": mnist_like,
    "yelp_like": yelp_like,
    "bikeshare_like": bikeshare_like,
}


def make_dataset(name: str, n_rows: int, seed: int | None = 0, **kwargs: Any) -> Dataset:
    """Build one of the named synthetic workloads.

    Parameters
    ----------
    name:
        One of ``gas_like``, ``power_like``, ``criteo_like``, ``higgs_like``,
        ``mnist_like`` or ``yelp_like``.
    n_rows:
        Number of examples to generate.
    seed:
        Random seed.
    kwargs:
        Forwarded to the specific generator (e.g. ``n_features``).
    """
    if name not in _GENERATORS:
        raise DataError(
            f"unknown synthetic dataset {name!r}; choose from {sorted(_GENERATORS)}"
        )
    return _GENERATORS[name](n_rows=n_rows, seed=seed, **kwargs)
