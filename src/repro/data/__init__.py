"""Data substrate: dataset containers, splits, sampling and synthetic workloads.

BlinkML is built on top of a sampling abstraction (the paper's key
observation is that the uniform-sampling operator already offered by nearly
every database system is enough to approximate MLE training).  This
subpackage provides that substrate:

* :mod:`repro.data.dataset` — an immutable in-memory training-set container
  with feature matrix, labels and named splits;
* :mod:`repro.data.splits` — train / holdout / test splitting;
* :mod:`repro.data.sampling` — uniform random sampling (with and without
  replacement) and reservoir sampling over streams;
* :mod:`repro.data.synthetic` — generators that stand in for the six
  real-world datasets used in the paper's evaluation (see that module's
  docstring for the substitution rationale);
* :mod:`repro.data.store` — the out-of-core tier: datasets persisted as
  memory-mapped ``.npy`` shards behind a digested manifest, consumed
  block-by-block by the streaming engine and row-by-index by the samplers.
"""

from repro.data.dataset import Dataset
from repro.data.splits import SplitSpec, train_holdout_test_split
from repro.data.sampling import UniformSampler, WeightedSampler, reservoir_sample
from repro.data.store import (
    ShardManifest,
    ShardStore,
    ShardStoreWriter,
    ShardedDataset,
    write_blocks,
)
from repro.data.synthetic import (
    SyntheticSpec,
    gas_like,
    power_like,
    criteo_like,
    higgs_like,
    mnist_like,
    yelp_like,
    bikeshare_like,
    make_dataset,
)

__all__ = [
    "Dataset",
    "SplitSpec",
    "train_holdout_test_split",
    "UniformSampler",
    "WeightedSampler",
    "reservoir_sample",
    "ShardManifest",
    "ShardStore",
    "ShardStoreWriter",
    "ShardedDataset",
    "write_blocks",
    "SyntheticSpec",
    "gas_like",
    "power_like",
    "criteo_like",
    "higgs_like",
    "mnist_like",
    "yelp_like",
    "bikeshare_like",
    "make_dataset",
]
