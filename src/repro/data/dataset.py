"""In-memory dataset container used throughout the library.

A :class:`Dataset` bundles a dense feature matrix ``X`` (N rows, d columns)
with an optional label vector ``y`` (absent for unsupervised models such as
PPCA).  It is deliberately immutable: every transformation (subsetting,
sampling, feature selection) returns a new ``Dataset`` that shares the
underlying NumPy buffers via views wherever possible.

The class is the unit of exchange between the data substrate, the model
trainers and the BlinkML coordinator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DataError
from repro.linalg.utils import freeze


# ----------------------------------------------------------------------
# Content-digest byte format — THE single source of truth.
#
# Everything that fingerprints dataset contents (Dataset.content_digest,
# the shard store's per-shard digests, and its streamed manifest-level
# digest in repro.data.store.shard_store) feeds a hasher through these
# helpers, so a sharded and an in-memory copy of the same data can never
# diverge.  Any change here changes every digest in lockstep.
# ----------------------------------------------------------------------
def content_hasher() -> "hashlib.blake2b":
    """The hasher every content digest uses (the digest is its hexdigest)."""
    return hashlib.blake2b(digest_size=16)


def hash_feature_header(
    hasher: "hashlib.blake2b", shape: tuple, dtype: "np.typing.DTypeLike"
) -> None:
    """Feed the feature matrix's shape/dtype header (precedes the X bytes)."""
    hasher.update(str(tuple(shape)).encode())
    hasher.update(np.dtype(dtype).str.encode())


def hash_label_header(
    hasher: "hashlib.blake2b",
    shape: tuple | None,
    dtype: "np.typing.DTypeLike" = None,
) -> None:
    """Feed the label header (follows the X bytes, precedes the y bytes).

    ``shape=None`` marks an unsupervised dataset (no y bytes follow).
    """
    if shape is None:
        hasher.update(b"|unsupervised")
    else:
        hasher.update(f"|y:{tuple(shape)}:{np.dtype(dtype).str}".encode())


@dataclass(frozen=True)
class Dataset:
    """A (multi-)set of training examples ``{(x_i, y_i)}``.

    Parameters
    ----------
    X:
        Feature matrix of shape ``(n_rows, n_features)``.
    y:
        Label vector of shape ``(n_rows,)`` or ``None`` for unsupervised
        tasks.  Classification models expect integer labels; regression
        models expect floats.
    name:
        Optional human-readable name (used in experiment reports).
    """

    X: np.ndarray
    y: np.ndarray | None = None
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        X = np.asarray(self.X, dtype=np.float64)
        if X.ndim != 2:
            raise DataError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.shape[0] == 0:
            raise DataError("dataset must contain at least one row")
        # Enforce the documented immutability: the arrays are published
        # read-only, so an in-place edit cannot silently invalidate shared
        # state derived from them — most critically the memoised
        # content_digest() the serving registry uses to detect changed
        # training data.  (np.asarray avoids copying, so the freeze also
        # applies to a float64 array the caller passed in; mutate a .copy()
        # instead.)
        object.__setattr__(self, "X", freeze(X))
        if self.y is not None:
            y = np.asarray(self.y)
            if y.ndim != 1:
                raise DataError(f"y must be 1-dimensional, got shape {y.shape}")
            if y.shape[0] != X.shape[0]:
                raise DataError(
                    f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
                )
            object.__setattr__(self, "y", freeze(y))

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of examples (the paper's N or n depending on context)."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of features d."""
        return int(self.X.shape[1])

    @property
    def is_supervised(self) -> bool:
        """Whether labels are present."""
        return self.y is not None

    def __len__(self) -> int:
        return self.n_rows

    def content_digest(self) -> str:
        """A stable hex digest of the dataset *contents* (X, y, shapes, dtypes).

        Two datasets carrying equal arrays produce the same digest no matter
        how they were constructed (name and metadata are excluded); any
        change to a value, shape or dtype changes it.  The cross-session
        registry (:mod:`repro.core.registry`) fingerprints training data
        with this so a changed training set can never be served stale
        cached answers.

        The digest is computed once per ``Dataset`` object and memoised —
        safe because the arrays are published read-only at construction,
        so the contents cannot change under the memo.
        """
        cached = getattr(self, "_content_digest", None)
        if cached is not None:
            return cached
        hasher = content_hasher()
        hash_feature_header(hasher, self.X.shape, self.X.dtype)
        # Feed the array buffers to the hash directly (zero-copy for the
        # already-contiguous common case; .tobytes() would transiently
        # double the dataset's memory).
        hasher.update(np.ascontiguousarray(self.X))
        if self.y is None:
            hash_label_header(hasher, None)
        else:
            hash_label_header(hasher, self.y.shape, self.y.dtype)
            hasher.update(np.ascontiguousarray(self.y))
        digest = hasher.hexdigest()
        object.__setattr__(self, "_content_digest", digest)
        return digest

    # ------------------------------------------------------------------
    # Transformations (all return new Dataset objects)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> Dataset:
        """Return the subset of rows addressed by ``indices`` (kept in order)."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            raise DataError("cannot take an empty subset of a dataset")
        if indices.min() < 0 or indices.max() >= self.n_rows:
            raise DataError("subset indices out of range")
        y = None if self.y is None else self.y[indices]
        return Dataset(self.X[indices], y, name=self.name, metadata=dict(self.metadata))

    def head(self, n: int) -> Dataset:
        """Return the first ``n`` rows."""
        if n <= 0:
            raise DataError("head() requires n >= 1")
        n = min(n, self.n_rows)
        return self.take(np.arange(n))

    def select_features(self, feature_indices: np.ndarray) -> Dataset:
        """Return a dataset restricted to the given feature columns.

        Used by the hyperparameter-optimisation harness (Section 5.7), which
        searches over random feature subsets.
        """
        feature_indices = np.asarray(feature_indices, dtype=np.intp)
        if feature_indices.size == 0:
            raise DataError("cannot select an empty feature set")
        if feature_indices.min() < 0 or feature_indices.max() >= self.n_features:
            raise DataError("feature indices out of range")
        return Dataset(
            self.X[:, feature_indices],
            self.y,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def concat(self, other: Dataset) -> Dataset:
        """Stack two datasets with identical schemas row-wise."""
        if self.n_features != other.n_features:
            raise DataError(
                "cannot concatenate datasets with different feature counts: "
                f"{self.n_features} vs {other.n_features}"
            )
        if (self.y is None) != (other.y is None):
            raise DataError("cannot concatenate supervised with unsupervised data")
        X = np.vstack([self.X, other.X])
        y = None if self.y is None else np.concatenate([self.y, other.y])
        return Dataset(X, y, name=self.name, metadata=dict(self.metadata))

    def with_name(self, name: str) -> Dataset:
        """Return a copy carrying a new name."""
        return Dataset(self.X, self.y, name=name, metadata=dict(self.metadata))

    def standardized(self, eps: float = 1e-12) -> Dataset:
        """Return a copy whose feature columns have zero mean and unit variance.

        Columns with (near-)zero variance are left centred but unscaled to
        avoid dividing by zero.
        """
        mean = self.X.mean(axis=0)
        std = self.X.std(axis=0)
        std = np.where(std < eps, 1.0, std)
        X = (self.X - mean) / std
        return Dataset(X, self.y, name=self.name, metadata=dict(self.metadata))

    def class_labels(self) -> np.ndarray:
        """Return the sorted unique class labels (classification datasets only)."""
        if self.y is None:
            raise DataError("unsupervised dataset has no labels")
        return np.unique(self.y)
