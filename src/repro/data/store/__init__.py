"""Out-of-core dataset store: memory-mapped ``.npy`` shards + JSON manifest.

The storage tier beneath the streaming sharded holdout engine (see
``docs/architecture.md``, "Storage tier"):

* :class:`ShardStore` — owns a store directory (write / open / verify);
* :class:`ShardStoreWriter` / :func:`write_blocks` — out-of-core write path;
* :class:`ShardedDataset` — the zero-copy block source the evaluation,
  session and registry layers consume in place of an in-memory ``Dataset``;
* :class:`ShardManifest` / :class:`ShardInfo` / :class:`LabelMoments` — the
  manifest schema (dtype, shape, per-shard row ranges and digests, and a
  manifest-level content digest compatible with
  :meth:`repro.data.dataset.Dataset.content_digest`).
"""

from repro.data.store.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    LabelMoments,
    ShardInfo,
    ShardManifest,
)
from repro.data.store.shard_store import (
    ShardStore,
    ShardStoreWriter,
    ShardedDataset,
    write_blocks,
)

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "LabelMoments",
    "ShardInfo",
    "ShardManifest",
    "ShardStore",
    "ShardStoreWriter",
    "ShardedDataset",
    "write_blocks",
]
