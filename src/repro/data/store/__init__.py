"""Out-of-core dataset store: memory-mapped ``.npy`` shards + JSON manifest.

The storage tier beneath the streaming sharded holdout engine (see
``docs/architecture.md``, "Storage tier"):

* :class:`ShardStore` — owns a store directory (write / open / verify /
  append);
* :class:`ShardStoreWriter` / :func:`write_blocks` — out-of-core write path
  (``append=True`` reopens and grows an existing store);
* :class:`ShardedDataset` — the zero-copy block source the evaluation,
  session and registry layers consume in place of an in-memory ``Dataset``
  (``reload()`` adopts published growth in place);
* :class:`ShardManifest` / :class:`ShardInfo` / :class:`LabelMoments` — the
  manifest schema (dtype, shape, per-shard row ranges and digests, and a
  manifest-level content digest compatible with
  :meth:`repro.data.dataset.Dataset.content_digest`);
* :class:`StatisticsIndex` / :class:`StatisticsSidecarInfo` — per-shard H/J
  moment-summary sidecars keyed by (model-spec digest, θ-digest, method),
  written lazily by the streaming statistics tier and reused on every later
  session bootstrap;
* :class:`WarmCacheTier` / :class:`WarmCacheStats` — the cross-process warm
  cache: digest-keyed persistent ``.npz`` artifacts (sorted-difference
  vectors, size-search outcomes) shared across restarts and co-located
  serving processes, verified on every read and quarantined when corrupt.
"""

from repro.data.store.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    LabelMoments,
    ShardInfo,
    ShardManifest,
    StatisticsSidecarInfo,
)
from repro.data.store.shard_store import (
    ShardStore,
    ShardStoreWriter,
    ShardedDataset,
    write_blocks,
)
from repro.data.store.statistics_index import StatisticsIndex, sidecar_filename
from repro.data.store.warm_cache import (
    WarmCacheStats,
    WarmCacheTier,
    resolve_warm_cache,
    shared_warm_cache,
)

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "LabelMoments",
    "ShardInfo",
    "ShardManifest",
    "StatisticsSidecarInfo",
    "ShardStore",
    "ShardStoreWriter",
    "ShardedDataset",
    "StatisticsIndex",
    "WarmCacheStats",
    "WarmCacheTier",
    "resolve_warm_cache",
    "shared_warm_cache",
    "sidecar_filename",
    "write_blocks",
]
