"""Cross-process warm cache tier: digest-keyed persistent artifacts.

The paper's serving economy — a repeat (ε, δ) contract costs a quantile
lookup, not k model trainings — previously died at the process boundary:
every restart, and every one of N co-located serving processes, recomputed
identical sorted-difference vectors and size-search brackets from scratch.
:class:`WarmCacheTier` is the durable second tier beneath the in-memory
session caches (:meth:`repro.core.caching.LRUCache.get_or_compute` probes
it on a miss before computing), the same shape as a persistent KV /
compilation cache in an inference stack:

* **self-describing entries** — each artifact is one ``.npz`` file holding
  the payload arrays plus its kind, its full key string, and an embedded
  content digest over the payload; nothing outside the file is needed to
  validate it, so there is no manifest to keep consistent across
  processes;
* **content-addressed, deterministic bytes** — the file name is a digest
  of the key and the archive is serialised with fixed member order and
  zip timestamps, so two processes racing to publish the same key write
  *byte-identical* files and last-writer-wins is benign;
* **crash-safe publication** — writes go to a unique dot-prefixed temp
  file and become visible only through one atomic ``os.replace``; a
  reader can never observe a torn entry, and a SIGKILL mid-write leaves
  only an invisible temp file the next GC sweeps up;
* **verification + quarantine on every read** — a mismatched digest (or a
  key collision, or any parse failure) moves the entry into a
  ``quarantine/`` subdirectory — mirroring the tamper semantics of
  :meth:`repro.data.store.shard_store.ShardStore.verify`, but recovering
  by recomputation instead of raising — and reports a miss, so a
  corrupted entry can never surface a wrong answer;
* **byte-bounded mtime-GC** — after each write the tier deletes
  oldest-first until the directory is back under ``max_bytes`` (and
  removes aged temp files left by crashed writers);
* **async write-behind** — by default entries are published from a
  background thread so the serving path never waits on disk; a bounded
  queue drops (and counts) writes under pressure rather than blocking.

Keys are built by the pure functions :func:`diff_entry_key` /
:func:`size_entry_key` from content digests only — model-spec digest,
holdout content digest, θ-digest, and a digest of the parameter sampler's
actual base draws (which captures both the H/J statistics and the RNG
seed).  Draw-digest inclusion is what makes a warm hit *bitwise* equal to
the cold compute: equal keys imply the Monte-Carlo inputs match exactly,
and distinct statistics or seeds can never alias.
"""

from __future__ import annotations

import hashlib
import io
import os
import queue
import threading
import time
import uuid
import zipfile
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.config import (
    DEFAULT_WARM_CACHE_DIR,
    DEFAULT_WARM_CACHE_MAX_BYTES,
    DEFAULT_WARM_CACHE_WRITE_BEHIND,
)
from repro.linalg.utils import freeze

#: entry kinds the session layer persists.
DIFF_KIND = "diff"
SIZE_KIND = "size"

_ENTRY_PREFIX = "warm-"
_ENTRY_SUFFIX = ".npz"
_TEMP_MARKER = ".tmp-"
_QUARANTINE_DIR = "quarantine"
#: temp files older than this are presumed abandoned by a crashed writer.
_TEMP_MAX_AGE_SECONDS = 600.0
#: bounded write-behind queue; submissions beyond it are dropped, not blocked.
_WRITE_QUEUE_CAPACITY = 256


# ----------------------------------------------------------------------
# Digests and keys (pure functions — stable across processes by design)
# ----------------------------------------------------------------------
def array_digest(*arrays: np.ndarray) -> str:
    """Content digest of one or more arrays (dtype, shape and bytes)."""
    digest = hashlib.blake2b(digest_size=16)
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(array.dtype.str.encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def payload_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """Content digest of a named payload, order-independent (sorted names)."""
    digest = hashlib.blake2b(digest_size=16)
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(b"\x00")
        digest.update(array.dtype.str.encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _float_hex(value: float) -> str:
    """Exact (bit-level) spelling of a float for key strings."""
    return np.float64(value).tobytes().hex()


def diff_entry_key(
    *,
    spec_digest: str,
    holdout_digest: str,
    draws_digest: str,
    theta_digest: str,
    n: int,
    N: int,
    k: int,
) -> str:
    """The warm key of one sorted-difference vector.

    All keyword-only, so the key cannot depend on caller argument order;
    ``draws_digest`` hashes the sampler's actual base-draw block, which
    folds in the H/J statistics and the RNG seed (see module docstring).
    """
    return (
        f"{DIFF_KIND}|spec={spec_digest}|holdout={holdout_digest}"
        f"|draws={draws_digest}|theta={theta_digest}|n={int(n)}|N={int(N)}"
        f"|k={int(k)}"
    )


def size_entry_key(
    *,
    spec_digest: str,
    holdout_digest: str,
    draws_digest: str,
    theta_digest: str,
    n0: int,
    N: int,
    k: int,
    probe_batch: int,
    epsilon: float,
    delta: float,
) -> str:
    """The warm key of one size-search outcome (adds ε, δ, probe_batch)."""
    return (
        f"{SIZE_KIND}|spec={spec_digest}|holdout={holdout_digest}"
        f"|draws={draws_digest}|theta={theta_digest}|n0={int(n0)}|N={int(N)}"
        f"|k={int(k)}|probe={int(probe_batch)}"
        f"|eps={_float_hex(epsilon)}|delta={_float_hex(delta)}"
    )


def entry_filename(kind: str, key: str) -> str:
    """Content-addressed file name for ``key`` (same key → same name)."""
    digest = hashlib.blake2b(key.encode(), digest_size=16).hexdigest()
    return f"{_ENTRY_PREFIX}{kind}-{digest}{_ENTRY_SUFFIX}"


def serialize_entry(kind: str, key: str, arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialise one entry to deterministic ``.npz`` bytes.

    Member order is sorted, members are stored uncompressed, and zip
    timestamps are pinned to the epoch, so the same (kind, key, payload)
    always yields the same bytes — two processes racing to publish one key
    write byte-identical files (the last-writer-wins guarantee).
    """
    members = {
        str(name): np.ascontiguousarray(value) for name, value in arrays.items()
    }
    members["__kind__"] = np.array(kind)
    members["__key__"] = np.array(key)
    members["__digest__"] = np.array(payload_digest(arrays))
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
        for name in sorted(members):
            payload = io.BytesIO()
            np.lib.format.write_array(payload, members[name], allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
            archive.writestr(info, payload.getvalue())
    return buffer.getvalue()


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WarmCacheStats:
    """Immutable snapshot of one tier's counters and directory occupancy.

    ``hits``/``misses`` count :meth:`WarmCacheTier.get` probes;
    ``quarantined`` counts entries moved aside for a failed digest/key
    check or parse error; ``writes`` counts entries actually published,
    ``dropped_writes`` write-behind submissions shed by the bounded queue;
    ``gc_removed`` files deleted by the byte-bounded mtime-GC.
    ``entries``/``bytes`` describe the directory at snapshot time.
    """

    directory: str
    hits: int
    misses: int
    writes: int
    dropped_writes: int
    quarantined: int
    gc_removed: int
    entries: int
    bytes: int
    max_bytes: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from disk (0.0 when never probed)."""
        return self.hits / self.requests if self.requests else 0.0


# ----------------------------------------------------------------------
# The tier
# ----------------------------------------------------------------------
class WarmCacheTier:
    """A directory of digest-verified, crash-safe ``.npz`` artifacts.

    Parameters
    ----------
    directory:
        The shared warm-cache directory (created on first use).  Safe to
        share across threads, sessions and processes: entries are
        content-addressed, published atomically, and verified on read.
    max_bytes:
        Byte bound for the directory; after each write an mtime-GC deletes
        oldest entries until the bound holds again.
    write_behind:
        When true (default), :meth:`put` enqueues the entry for a
        background daemon thread and returns immediately (a full queue
        drops the write and counts it — the tier is an optimisation, never
        a blocking dependency).  When false, writes happen synchronously.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        max_bytes: int = DEFAULT_WARM_CACHE_MAX_BYTES,
        write_behind: bool = bool(DEFAULT_WARM_CACHE_WRITE_BEHIND),
    ) -> None:
        self.directory = os.fspath(directory)
        self.max_bytes = max(1, int(max_bytes))
        self.write_behind = bool(write_behind)
        self._lock = threading.Lock()
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._writes = 0  # guarded-by: _lock
        self._dropped_writes = 0  # guarded-by: _lock
        self._quarantined = 0  # guarded-by: _lock
        self._gc_removed = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._writer: threading.Thread | None = None  # guarded-by: _lock
        self._queue: queue.Queue[tuple[str, str, dict[str, np.ndarray]] | None] = (
            queue.Queue(maxsize=_WRITE_QUEUE_CAPACITY)
        )

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, kind: str, key: str) -> dict[str, np.ndarray] | None:
        """Load, verify and return the payload for ``key`` (``None`` = miss).

        Every returned array is frozen read-only (the caller typically
        publishes it straight into a shared in-memory cache).  Any failure
        mode — missing file, unparseable archive, kind/key mismatch (a
        digest collision or a tampered entry), payload digest mismatch
        (bit rot) — quarantines the file where applicable and reports a
        miss, so corruption costs a recompute, never a wrong answer.
        """
        path = os.path.join(self.directory, entry_filename(kind, key))
        try:
            with np.load(path, allow_pickle=False) as archive:
                members = {name: archive[name] for name in archive.files}
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
            return None
        except Exception:
            # Unparseable bytes where a verified entry should be: a torn
            # copy (impossible via our atomic rename, but the directory is
            # shared), truncation, or external tampering.
            self._quarantine(path)
            with self._lock:
                self._misses += 1
            return None
        payload = {
            name: value for name, value in members.items() if not name.startswith("__")
        }
        if (
            str(members.get("__kind__", "")) != kind
            or str(members.get("__key__", "")) != key
            or str(members.get("__digest__", "")) != payload_digest(payload)
        ):
            self._quarantine(path)
            with self._lock:
                self._misses += 1
            return None
        with self._lock:
            self._hits += 1
        return {name: freeze(value) for name, value in payload.items()}

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, kind: str, key: str, arrays: Mapping[str, np.ndarray]) -> None:
        """Publish (or re-publish) the payload for ``key``.

        With write-behind enabled the entry lands on the background queue
        (dropped and counted if the queue is full); otherwise it is
        written synchronously.  Publication is atomic either way: readers
        see the previous entry or the new one, never a torn file.
        """
        payload = {
            str(name): np.ascontiguousarray(value) for name, value in arrays.items()
        }
        if not self.write_behind:
            self._write_entry(kind, key, payload)
            return
        with self._lock:
            if self._closed:
                self._dropped_writes += 1
                return
            self._ensure_writer_locked()
        try:
            self._queue.put_nowait((kind, key, payload))
        except queue.Full:
            with self._lock:
                self._dropped_writes += 1

    def flush(self) -> None:
        """Block until every queued write-behind entry has been published."""
        self._queue.join()

    def close(self) -> None:
        """Drain the write-behind queue and stop the writer.  Idempotent.

        Later :meth:`put` calls are dropped (and counted); :meth:`get`
        keeps working — the directory outlives the tier object by design.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            writer = self._writer
        if writer is not None:
            self._queue.put(None)
            writer.join()

    def _ensure_writer_locked(self) -> None:  # repro-lint: holds=_lock
        if self._writer is None:
            self._writer = threading.Thread(
                target=self._writer_loop,
                name="repro-warm-cache-writer",
                daemon=True,
            )
            self._writer.start()

    def _writer_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            kind, key, payload = item
            try:
                self._write_entry(kind, key, payload)
            except Exception:
                # A failing disk must never take the writer thread (and
                # with it every later flush()) down; the write is simply
                # lost and the entry recomputes next time.
                with self._lock:
                    self._dropped_writes += 1
            finally:
                self._queue.task_done()

    def _write_entry(
        self, kind: str, key: str, payload: dict[str, np.ndarray]
    ) -> None:
        """Serialise, write to a temp file, atomically rename, then GC."""
        data = serialize_entry(kind, key, payload)
        final_path = os.path.join(self.directory, entry_filename(kind, key))
        temp_path = (
            f"{final_path}{_TEMP_MARKER}{os.getpid()}-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(temp_path, "wb") as handle:
                handle.write(data)
            os.replace(temp_path, final_path)
        except OSError:
            with self._lock:
                self._dropped_writes += 1
            try:
                os.remove(temp_path)
            except OSError:
                pass
            return
        with self._lock:
            self._writes += 1
        self.gc()

    # ------------------------------------------------------------------
    # Quarantine and GC
    # ------------------------------------------------------------------
    def _quarantine(self, path: str) -> None:
        """Move a failed entry aside (mirrors ShardStore.verify semantics).

        The file is preserved under ``quarantine/`` for post-mortems
        rather than deleted; if even the move fails (e.g. a concurrent
        quarantine already claimed it) the entry is removed so it cannot
        be re-served.
        """
        quarantine_dir = os.path.join(self.directory, _QUARANTINE_DIR)
        target = os.path.join(quarantine_dir, os.path.basename(path))
        try:
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(path, target)
        except OSError:
            try:
                os.remove(path)
            except OSError:
                pass
        with self._lock:
            self._quarantined += 1

    def _scan(self) -> list[tuple[str, float, int]]:
        """(path, mtime, size) for every visible entry file, oldest first."""
        rows: list[tuple[str, float, int]] = []
        try:
            with os.scandir(self.directory) as it:
                for item in it:
                    if not (
                        item.is_file()
                        and item.name.startswith(_ENTRY_PREFIX)
                        and item.name.endswith(_ENTRY_SUFFIX)
                    ):
                        continue
                    try:
                        stat = item.stat()
                    except OSError:
                        continue
                    rows.append((item.path, stat.st_mtime, stat.st_size))
        except OSError:
            return []
        rows.sort(key=lambda row: row[1])
        return rows

    def gc(self) -> int:
        """Enforce the byte bound (oldest-mtime first); sweep stale temps.

        Concurrent GCs from co-located processes are safe: deletions race
        benignly (a vanished file is skipped) and every surviving entry is
        still individually verified on read.  Returns files removed.
        """
        removed = 0
        try:
            with os.scandir(self.directory) as it:
                stale = [
                    item.path
                    for item in it
                    if item.is_file() and _TEMP_MARKER in item.name
                ]
        except OSError:
            stale = []
        now = time.time()
        for path in stale:
            try:
                if now - os.stat(path).st_mtime > _TEMP_MAX_AGE_SECONDS:
                    os.remove(path)
                    removed += 1
            except OSError:
                continue
        rows = self._scan()
        total = sum(size for _, _, size in rows)
        for path, _, size in rows:
            if total <= self.max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            with self._lock:
                self._gc_removed += removed
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> WarmCacheStats:
        """A snapshot of counters plus the directory's current occupancy."""
        rows = self._scan()
        with self._lock:
            return WarmCacheStats(
                directory=self.directory,
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                dropped_writes=self._dropped_writes,
                quarantined=self._quarantined,
                gc_removed=self._gc_removed,
                entries=len(rows),
                bytes=sum(size for _, _, size in rows),
                max_bytes=self.max_bytes,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats()
        return (
            f"WarmCacheTier({self.directory!r}, entries={snapshot.entries}, "
            f"bytes={snapshot.bytes}/{self.max_bytes}, hits={snapshot.hits}, "
            f"misses={snapshot.misses}, quarantined={snapshot.quarantined})"
        )


# ----------------------------------------------------------------------
# Process-wide shared tiers
# ----------------------------------------------------------------------
_shared_lock = threading.Lock()
_shared_tiers: dict[str, WarmCacheTier] = {}  # guarded-by: _shared_lock


def default_warm_cache_dir() -> str:
    """The configured warm-cache directory ('' = disabled).

    Reads the deployment-facing ``REPRO_WARM_CACHE_DIR`` runtime alias
    first (evaluated per call, so tests and CI can retarget it without
    re-importing :mod:`repro.config`), then the REP005 import-time knob
    ``DEFAULT_WARM_CACHE_DIR``.
    """
    return os.environ.get("REPRO_WARM_CACHE_DIR", "").strip() or DEFAULT_WARM_CACHE_DIR


def shared_warm_cache(directory: str | os.PathLike[str]) -> WarmCacheTier:
    """The process-wide tier for ``directory`` (one instance per real path).

    Co-located sessions and registries sharing a directory must share the
    write-behind thread and the counters too, so resolution memoises per
    absolute path.
    """
    path = os.path.abspath(os.fspath(directory))
    with _shared_lock:
        tier = _shared_tiers.get(path)
        if tier is None:
            tier = WarmCacheTier(path)
            _shared_tiers[path] = tier
        return tier


def resolve_warm_cache(
    warm_cache: WarmCacheTier | str | os.PathLike[str] | bool | None = None,
) -> WarmCacheTier | None:
    """Resolve a constructor-facing ``warm_cache`` argument to a tier.

    ``None``/``True`` resolve through :func:`default_warm_cache_dir`
    (``None`` when unconfigured), ``False`` disables the tier even when
    the environment configures one (tests asserting cold-path behaviour
    pin this), a path selects the process-shared tier for that directory,
    and an existing :class:`WarmCacheTier` passes through.
    """
    if isinstance(warm_cache, WarmCacheTier):
        return warm_cache
    if warm_cache is False:
        return None
    if warm_cache is None or warm_cache is True:
        directory = default_warm_cache_dir()
        return shared_warm_cache(directory) if directory else None
    return shared_warm_cache(warm_cache)
