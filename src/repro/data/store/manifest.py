"""Shard-store manifest: the JSON metadata that makes a directory a dataset.

A shard store (:mod:`repro.data.store.shard_store`) persists one dataset as
a directory of ``.npy`` row shards plus one ``manifest.json``.  The manifest
is the single source of truth for

* the **schema** — row/feature counts and the exact dtypes of the feature
  matrix and the label vector (labels keep whatever dtype they were written
  with; features are always float64, matching
  :class:`repro.data.dataset.Dataset`'s coercion);
* the **layout** — the ordered list of shards with their half-open row
  ranges ``[start, stop)`` and file names, which is what lets readers map a
  global row index to a shard without touching the data;
* the **integrity story** — a per-shard content digest (the digest the
  shard's rows would have as a standalone ``Dataset``) plus a manifest-level
  ``content_digest`` that equals :meth:`repro.data.dataset.Dataset.content_digest`
  of the fully materialised dataset.  The latter is what lets the serving
  registry fingerprint a sharded holdout *without materialising it*: a
  sharded and an in-memory copy of the same data produce the same digest;
* the **label moments** — per-store count/mean/M2 (Chan's parallel-variance
  form) so normalised regression metrics can recover the holdout label
  scale in O(1) instead of re-reading every label shard.

Loading is strict: a missing file, truncated JSON, unknown version, or a
shard list that does not tile ``[0, n_rows)`` raises
:class:`~repro.exceptions.DataError` immediately — a partially written or
hand-edited store must never be silently served.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.exceptions import DataError

#: File name of the manifest inside a store directory.
MANIFEST_FILENAME = "manifest.json"

#: On-disk format version; bump on incompatible layout changes.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ShardInfo:
    """One shard: a half-open row range and the files that hold it.

    ``digest`` is the content digest the shard's rows would have as a
    standalone :class:`~repro.data.dataset.Dataset` — recomputable from the
    shard files alone, which is what makes per-shard tamper detection
    possible without reading the whole store.
    """

    index: int
    start: int
    stop: int
    x_file: str
    y_file: str | None
    digest: str

    @property
    def n_rows(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class LabelMoments:
    """Streaming label statistics in Chan's combinable (count, mean, M2) form.

    ``std`` equals ``sqrt(M2 / count)`` — the population standard deviation
    ``numpy.std`` computes — to within a few ulps, because the per-shard
    moments are combined with the numerically stable pairwise update rather
    than the cancellation-prone ``E[y²] − E[y]²`` form.
    """

    count: int
    mean: float
    m2: float

    @classmethod
    def from_block(cls, y: np.ndarray) -> "LabelMoments":
        """The moments of one label block.

        THE single per-block computation: the shard-store writer folds
        these in at flush time and ``ShardStore.verify()`` re-derives them
        for comparison, so both sides stay bitwise-identical by
        construction.
        """
        block = np.asarray(y, dtype=np.float64)
        mean = float(block.mean())
        return cls(
            count=int(block.shape[0]),
            mean=mean,
            m2=float(np.sum((block - mean) ** 2)),
        )

    def combined(self, count: int, mean: float, m2: float) -> "LabelMoments":
        """Fold another block's (count, mean, M2) into this one (Chan et al.)."""
        if count == 0:
            return self
        if self.count == 0:
            return LabelMoments(count=count, mean=mean, m2=m2)
        total = self.count + count
        delta = mean - self.mean
        return LabelMoments(
            count=total,
            mean=self.mean + delta * (count / total),
            m2=self.m2 + m2 + delta * delta * (self.count * count / total),
        )

    def merge(self, other: "LabelMoments") -> "LabelMoments":
        """Fold another :class:`LabelMoments` into this one."""
        return self.combined(other.count, other.mean, other.m2)

    def matches(self, other: "LabelMoments") -> bool:
        """Exact equality, except NaN moments match NaN (IEEE ``nan != nan``
        would otherwise flag a pristine store with NaN labels as tampered)."""

        def same(a: float, b: float) -> bool:
            return a == b or (math.isnan(a) and math.isnan(b))

        return (
            self.count == other.count
            and same(self.mean, other.mean)
            and same(self.m2, other.m2)
        )

    @property
    def std(self) -> float:
        if self.count == 0:
            return 0.0
        return math.sqrt(max(self.m2 / self.count, 0.0))


@dataclass(frozen=True)
class StatisticsSidecarInfo:
    """One statistics sidecar file: per-shard moment summaries for one key.

    A sidecar holds every covered shard's H/J moment summary for one
    ``(model-spec digest, θ-digest, method)`` key — what lets a session
    bootstrap merge persisted summaries instead of re-reading raw rows.

    ``digest`` is the blake2b hex digest of the sidecar file's bytes (the
    tamper check :meth:`ShardStore.verify` replays); ``shard_digests``
    records, in shard order, which shard contents each stored summary was
    computed from, so a reader can tell exactly which shards of the current
    manifest are covered (after an append the sidecar covers the old
    prefix until the statistics are refreshed).
    """

    file: str
    spec_digest: str
    theta_digest: str
    method: str
    block_rows: int
    digest: str
    shard_digests: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.file or not self.digest:
            raise DataError("statistics sidecar entry needs a file and a digest")
        if self.block_rows < 1:
            raise DataError("statistics sidecar block_rows must be at least 1")
        if not self.shard_digests:
            raise DataError("statistics sidecar entry covers no shards")
        object.__setattr__(self, "shard_digests", tuple(self.shard_digests))


@dataclass(frozen=True)
class ShardManifest:
    """Schema, layout and integrity metadata of one shard store."""

    name: str
    n_rows: int
    n_features: int
    x_dtype: str
    y_dtype: str | None
    shards: tuple[ShardInfo, ...]
    content_digest: str
    label_moments: LabelMoments | None = None
    version: int = MANIFEST_VERSION
    metadata: dict = field(default_factory=dict)
    statistics: tuple[StatisticsSidecarInfo, ...] = ()

    def __post_init__(self) -> None:
        if self.version != MANIFEST_VERSION:
            raise DataError(
                f"unsupported shard-store manifest version {self.version} "
                f"(this library reads version {MANIFEST_VERSION})"
            )
        if self.n_rows < 1 or self.n_features < 1:
            raise DataError("shard store must hold at least one row and one feature")
        if not self.shards:
            raise DataError("shard store manifest lists no shards")
        expected_start = 0
        for position, shard in enumerate(self.shards):
            if shard.index != position:
                raise DataError(
                    f"shard list out of order: position {position} holds index "
                    f"{shard.index}"
                )
            if shard.start != expected_start or shard.stop <= shard.start:
                raise DataError(
                    f"shard {position} covers [{shard.start}, {shard.stop}) but "
                    f"rows must tile the store contiguously from {expected_start}"
                )
            if (shard.y_file is None) != (self.y_dtype is None):
                raise DataError(
                    f"shard {position} label file is inconsistent with the "
                    "manifest's label dtype"
                )
            expected_start = shard.stop
        if expected_start != self.n_rows:
            raise DataError(
                f"shards cover {expected_start} rows but the manifest declares "
                f"{self.n_rows}"
            )
        if (self.label_moments is None) != (self.y_dtype is None):
            raise DataError(
                "manifest label moments must be present exactly when the store "
                "is supervised (y_dtype set) — a supervised manifest without "
                "them cannot serve normalised regression metrics"
            )
        if self.label_moments is not None and self.label_moments.count != self.n_rows:
            raise DataError(
                f"label moments cover {self.label_moments.count} rows but the "
                f"manifest declares {self.n_rows}"
            )
        object.__setattr__(self, "statistics", tuple(self.statistics))

    @property
    def is_supervised(self) -> bool:
        return self.y_dtype is not None

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_for_row(self, row: int) -> ShardInfo:
        """The shard holding global row index ``row`` (binary search)."""
        if not 0 <= row < self.n_rows:
            raise DataError(f"row {row} out of range for {self.n_rows}-row store")
        lo, hi = 0, len(self.shards) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.shards[mid].stop <= row:
                lo = mid + 1
            else:
                hi = mid
        return self.shards[lo]

    def label_std(self) -> float:
        """Population standard deviation of the labels (from the moments)."""
        if self.label_moments is None:
            raise DataError("shard store records no label moments (unsupervised)")
        return self.label_moments.std

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = asdict(self)
        payload["shards"] = [asdict(shard) for shard in self.shards]
        payload["statistics"] = [asdict(entry) for entry in self.statistics]
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ShardManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DataError(f"corrupt shard-store manifest: {exc}") from exc
        if not isinstance(payload, dict):
            raise DataError("corrupt shard-store manifest: not a JSON object")
        try:
            shards = tuple(
                ShardInfo(
                    index=int(shard["index"]),
                    start=int(shard["start"]),
                    stop=int(shard["stop"]),
                    x_file=str(shard["x_file"]),
                    y_file=None if shard["y_file"] is None else str(shard["y_file"]),
                    digest=str(shard["digest"]),
                )
                for shard in payload["shards"]
            )
            moments = payload.get("label_moments")
            label_moments = (
                None
                if moments is None
                else LabelMoments(
                    count=int(moments["count"]),
                    mean=float(moments["mean"]),
                    m2=float(moments["m2"]),
                )
            )
            # Older manifests (pre statistics tier) simply omit the key.
            statistics = tuple(
                StatisticsSidecarInfo(
                    file=str(entry["file"]),
                    spec_digest=str(entry["spec_digest"]),
                    theta_digest=str(entry["theta_digest"]),
                    method=str(entry["method"]),
                    block_rows=int(entry["block_rows"]),
                    digest=str(entry["digest"]),
                    shard_digests=tuple(
                        str(digest) for digest in entry["shard_digests"]
                    ),
                )
                for entry in payload.get("statistics", [])
            )
            return cls(
                name=str(payload["name"]),
                n_rows=int(payload["n_rows"]),
                n_features=int(payload["n_features"]),
                x_dtype=str(payload["x_dtype"]),
                y_dtype=None if payload["y_dtype"] is None else str(payload["y_dtype"]),
                shards=shards,
                content_digest=str(payload["content_digest"]),
                label_moments=label_moments,
                version=int(payload["version"]),
                metadata=dict(payload.get("metadata", {})),
                statistics=statistics,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(
                f"corrupt shard-store manifest: missing or malformed field ({exc})"
            ) from exc

    def save(self, directory: str | os.PathLike) -> str:
        """Write ``manifest.json`` atomically (write-then-rename) into ``directory``."""
        path = os.path.join(os.fspath(directory), MANIFEST_FILENAME)
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
        os.replace(tmp_path, path)
        return path

    @classmethod
    def load(cls, directory: str | os.PathLike) -> "ShardManifest":
        """Load and validate the manifest of a store directory."""
        path = os.path.join(os.fspath(directory), MANIFEST_FILENAME)
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError as exc:
            raise DataError(
                f"{os.fspath(directory)!r} is not a shard store: no {MANIFEST_FILENAME}"
            ) from exc
        except OSError as exc:
            raise DataError(f"cannot read shard-store manifest: {exc}") from exc
        return cls.from_json(text)
