"""Out-of-core dataset store: ``.npy`` row shards behind one manifest.

The paper's whole premise is training on a small sample while the full
dataset is too large to touch more than necessary — yet an in-memory
:class:`~repro.data.dataset.Dataset` caps N at RAM.  This module is the
storage tier that removes the cap:

* :class:`ShardStoreWriter` appends row blocks and spills them to disk as
  fixed-size ``.npy`` shards, never holding more than one shard in memory —
  datasets that never fit in RAM can be written block by block;
* :class:`ShardStore` owns a written directory: it opens the manifest,
  structurally validates every shard file against it, and can fully
  re-verify the per-shard and manifest content digests (tamper detection);
* :class:`ShardedDataset` is the read side — a *block source* that yields
  zero-copy memory-mapped row blocks to the streaming sharded holdout
  engine (:mod:`repro.evaluation.streaming`), and gathers arbitrary row
  subsets for the samplers (:class:`repro.data.sampling.UniformSampler`
  draws training rows from shards by index).  Only the rows actually
  touched are ever resident.

Digest compatibility is the load-bearing design point:
``ShardedDataset.content_digest()`` returns the manifest-level digest,
which is computed over the exact byte sequence
:meth:`repro.data.dataset.Dataset.content_digest` hashes — so a sharded
and an in-memory copy of the same data fingerprint identically, and the
serving registry (:mod:`repro.core.registry`) invalidates stale sessions
without ever materialising the store.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from collections import OrderedDict
from collections.abc import Iterable, Iterator

import numpy as np

from repro.config import DEFAULT_STORE_SHARD_ROWS
from repro.data.dataset import (
    Dataset,
    content_hasher,
    hash_feature_header,
    hash_label_header,
)
from repro.data.store.manifest import (
    MANIFEST_FILENAME,
    LabelMoments,
    ShardInfo,
    ShardManifest,
)
from repro.data.store.statistics_index import StatisticsIndex, _file_digest
from repro.exceptions import DataError

#: feature matrices are always stored as little-endian float64, matching the
#: coercion :class:`~repro.data.dataset.Dataset` applies on construction.
_X_DTYPE = np.dtype(np.float64)


def _digest_arrays(X: np.ndarray, y: np.ndarray | None) -> str:
    """The digest ``Dataset(X, y).content_digest()`` would produce.

    Built from the shared byte-format helpers in
    :mod:`repro.data.dataset` (one source of truth) rather than by
    constructing a ``Dataset`` — construction would flip the writeable
    flag on the caller's arrays as a side effect.
    """
    hasher = content_hasher()
    hash_feature_header(hasher, X.shape, X.dtype)
    hasher.update(np.ascontiguousarray(X))
    if y is None:
        hash_label_header(hasher, None)
    else:
        hash_label_header(hasher, y.shape, y.dtype)
        hasher.update(np.ascontiguousarray(y))
    return hasher.hexdigest()


def _open_shard_array(
    directory: str, file_name: str, expected_shape: tuple, expected_dtype: np.dtype
) -> np.ndarray:
    """Memory-map one shard file, validating its header against the manifest."""
    path = os.path.join(directory, file_name)
    try:
        array = np.load(path, mmap_mode="r")
    except FileNotFoundError as exc:
        raise DataError(f"shard store is missing shard file {file_name!r}") from exc
    except ValueError as exc:
        raise DataError(f"corrupt shard file {file_name!r}: {exc}") from exc
    except OSError as exc:
        # Not necessarily corruption — EMFILE/EACCES and friends land here;
        # say what actually failed so operators do not chase phantom
        # data-integrity problems.
        raise DataError(f"cannot open shard file {file_name!r}: {exc}") from exc
    if tuple(array.shape) != tuple(expected_shape) or array.dtype != expected_dtype:
        raise DataError(
            f"shard file {file_name!r} holds {array.dtype}{array.shape} but the "
            f"manifest expects {expected_dtype}{tuple(expected_shape)}"
        )
    return array


def _stream_content_digest(manifest: ShardManifest, directory: str) -> str:
    """The materialised dataset's content digest, streamed shard by shard.

    Feeds :func:`hashlib.blake2b` the same byte sequence
    ``Dataset.content_digest()`` hashes — shape header, X dtype, every X
    shard in row order, the y header, every y shard — while only memory
    mapping one shard at a time.  O(store) I/O, O(1) resident memory.
    """
    x_dtype = np.dtype(manifest.x_dtype)
    hasher = content_hasher()
    hash_feature_header(hasher, (manifest.n_rows, manifest.n_features), x_dtype)
    for shard in manifest.shards:
        X = _open_shard_array(
            directory, shard.x_file, (shard.n_rows, manifest.n_features), x_dtype
        )
        hasher.update(np.ascontiguousarray(X))
    if manifest.y_dtype is None:
        hash_label_header(hasher, None)
    else:
        y_dtype = np.dtype(manifest.y_dtype)
        hash_label_header(hasher, (manifest.n_rows,), y_dtype)
        for shard in manifest.shards:
            y = _open_shard_array(directory, shard.y_file, (shard.n_rows,), y_dtype)
            hasher.update(np.ascontiguousarray(y))
    return hasher.hexdigest()


class ShardStoreWriter:
    """Builds a shard store by appending row blocks (out-of-core write path).

    Blocks are buffered until a full shard (``shard_rows`` rows) is
    available, then spilled to ``shard-NNNNN.x.npy`` / ``.y.npy``; peak
    memory is one shard plus one incoming block no matter how many rows are
    written.  ``close()`` flushes the remainder shard, computes the
    manifest-level content digest by streaming the written files back, and
    publishes ``manifest.json`` atomically — a crash mid-write therefore
    leaves a directory *without* a manifest, which :meth:`ShardStore.open`
    rejects, so a partial store can never be served.

    Use as a context manager, or pair :meth:`append` with :meth:`close`::

        with ShardStoreWriter("/data/holdout", shard_rows=65536) as writer:
            for X_block, y_block in produce_blocks():
                writer.append(X_block, y_block)
        store = writer.store

    Reopening an existing store with ``append=True`` seeds the writer from
    the published manifest and grows it: existing shard files are left
    untouched (only manifest-unreferenced leftovers are cleared), new
    shards continue the index sequence, label moments keep folding, and the
    statistics sidecar entries are carried into the republished manifest —
    they remain valid for the shards they cover.  Shard *writes* are
    O(new rows); the close-time content digest is an O(store) streaming
    re-hash, inherent to the header-first digest byte format (the final row
    count leads the hashed bytes, and a sequential hash cannot be
    prepended to).  The manifest republish is atomic, so a crash mid-append
    leaves the previous manifest serving the previous store consistently.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        shard_rows: int = DEFAULT_STORE_SHARD_ROWS,
        name: str = "dataset",
        metadata: dict | None = None,
        overwrite: bool = False,
        append: bool = False,
        content_digest: str | None = None,
    ):
        if shard_rows < 1:
            raise DataError("shard_rows must be at least 1")
        if append and overwrite:
            raise DataError("append and overwrite are mutually exclusive")
        # Optional precomputed digest of exactly the rows about to be
        # appended (e.g. Dataset.content_digest() when persisting an
        # in-memory dataset).  It spares close() the re-read hashing pass
        # over the feature shards; the caller vouches it matches the data.
        self._known_content_digest = content_digest
        self._directory = os.fspath(directory)
        self._shard_rows = int(shard_rows)
        self._name = name
        self._metadata = dict(metadata or {})
        self._pending_X: list[np.ndarray] = []
        self._pending_y: list[np.ndarray] = []
        self._pending_rows = 0
        self._n_features: int | None = None
        self._y_dtype: np.dtype | None = None
        self._supervised: bool | None = None
        self._shards: list[ShardInfo] = []
        self._moments = LabelMoments(count=0, mean=0.0, m2=0.0)
        self._statistics: tuple = ()
        self._store: ShardStore | None = None
        self._closed = False

        manifest_path = os.path.join(self._directory, MANIFEST_FILENAME)
        if append:
            if not os.path.exists(manifest_path):
                raise DataError(
                    f"{self._directory!r} holds no shard store to append to"
                )
            manifest = ShardManifest.load(self._directory)
            self._name = manifest.name
            self._metadata = {**manifest.metadata, **self._metadata}
            self._n_features = manifest.n_features
            self._y_dtype = (
                None if manifest.y_dtype is None else np.dtype(manifest.y_dtype)
            )
            self._supervised = manifest.is_supervised
            self._shards = list(manifest.shards)
            if manifest.label_moments is not None:
                self._moments = manifest.label_moments
            # Sidecars stay valid for the shards they cover; the refresh
            # path computes summaries for the new shards only.
            self._statistics = manifest.statistics
            # The old manifest stays in place until close() republishes —
            # readers keep serving the pre-append store consistently, and a
            # crash mid-append at worst strands unreferenced new shard
            # files (cleared by the next writer).  Only clear leftovers the
            # manifest does not reference.
            referenced = {
                file
                for shard in manifest.shards
                for file in (shard.x_file, shard.y_file)
                if file is not None
            }
            for entry in os.listdir(self._directory):
                if (
                    entry.startswith("shard-")
                    and entry.endswith(".npy")
                    and entry not in referenced
                ):
                    os.remove(os.path.join(self._directory, entry))
            return

        if os.path.exists(manifest_path):
            if not overwrite:
                raise DataError(
                    f"{self._directory!r} already holds a shard store "
                    "(pass overwrite=True to replace it, or append=True to "
                    "grow it)"
                )
            # Unlink the old manifest *before* writing anything: a crash
            # mid-rewrite must leave a manifest-less directory that
            # ShardStore.open rejects — never an old manifest over a mix of
            # old and new shard data, which would open cleanly and
            # fingerprint as the old content.
            os.remove(manifest_path)
        os.makedirs(self._directory, exist_ok=True)
        # Clear leftover shard and statistics-sidecar files unconditionally
        # (not only under overwrite): a crashed earlier write leaves shards
        # without a manifest, and a successful re-run must not strand those
        # alien files beside a store whose manifest no longer references
        # them.  Sidecars summarise the *old* rows, so a rewrite invalidates
        # them wholesale.
        for entry in os.listdir(self._directory):
            if (entry.startswith("shard-") and entry.endswith(".npy")) or (
                entry.startswith("stats-") and entry.endswith(".npz")
            ):
                os.remove(os.path.join(self._directory, entry))

    @property
    def store(self) -> "ShardStore":
        if self._store is None:
            raise DataError("writer not closed yet: no store to return")
        return self._store

    @staticmethod
    def _owned(block: np.ndarray, source: np.ndarray) -> np.ndarray:
        """A buffer-safe version of ``block`` (which was converted from ``source``).

        The dtype/contiguity conversions below are no-ops for already
        conforming input, so the buffered array can alias the *caller's*
        array — and a caller that reuses its block buffer (the natural ETL
        loop) would silently rewrite pending rows before they are flushed,
        corrupting the store while its digests verify clean.  Copy whenever
        the buffered array still shares writable memory with the caller.
        """
        if block.flags.writeable and np.may_share_memory(block, source):
            return block.copy()
        return block

    def append(self, X_block: np.ndarray, y_block: np.ndarray | None = None) -> None:
        """Append one row block; spills full shards to disk as they fill.

        The block is copied into the writer's buffer if it aliases the
        caller's (writable) memory, so the caller may freely reuse its
        block arrays between appends.
        """
        if self._closed:
            raise DataError("cannot append to a closed ShardStoreWriter")
        X_source = X_block
        X_block = self._owned(
            np.ascontiguousarray(X_block, dtype=_X_DTYPE), X_source
        )
        if X_block.ndim != 2 or X_block.shape[0] == 0:
            raise DataError(
                f"appended block must be a non-empty 2-D array, got {X_block.shape}"
            )
        if self._n_features is None:
            self._n_features = int(X_block.shape[1])
            self._supervised = y_block is not None
        if X_block.shape[1] != self._n_features:
            raise DataError(
                f"appended block has {X_block.shape[1]} features, store has "
                f"{self._n_features}"
            )
        if (y_block is not None) != self._supervised:
            raise DataError("all appended blocks must agree on having labels")
        if y_block is not None:
            y_source = y_block
            y_block = self._owned(np.ascontiguousarray(y_block), y_source)
            if y_block.shape != (X_block.shape[0],):
                raise DataError(
                    f"label block shape {y_block.shape} does not match "
                    f"{X_block.shape[0]} rows"
                )
            if self._y_dtype is None:
                self._y_dtype = y_block.dtype
            elif y_block.dtype != self._y_dtype:
                raise DataError(
                    f"label block dtype {y_block.dtype} does not match the "
                    f"store's {self._y_dtype}"
                )
            self._pending_y.append(y_block)
        self._pending_X.append(X_block)
        self._pending_rows += X_block.shape[0]
        while self._pending_rows >= self._shard_rows:
            self._flush_shard(self._shard_rows)

    def _take_pending(self, rows: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Pop exactly ``rows`` buffered rows as contiguous arrays.

        Copy-free when one buffer covers the request (the common case —
        every shard from :meth:`ShardStore.write` pops a single
        shard-aligned slice): a whole buffer is handed back as-is, a larger
        head is split by view.  Only a request spanning multiple buffers
        concatenates (which is the one case a copy is inherent); all
        buffered arrays are already contiguous, as are their row-slice
        views, so no extra contiguity pass is needed.
        """

        def take(buffers: list[np.ndarray]) -> np.ndarray:
            head = buffers[0]
            if head.shape[0] == rows:
                return buffers.pop(0)
            if head.shape[0] > rows:
                buffers[0] = head[rows:]
                return head[:rows]
            taken, filled = [], 0
            while filled < rows:
                head = buffers[0]
                need = rows - filled
                if head.shape[0] <= need:
                    taken.append(buffers.pop(0))
                    filled += head.shape[0]
                else:
                    taken.append(head[:need])
                    buffers[0] = head[need:]
                    filled += need
            return np.concatenate(taken, axis=0)

        X = take(self._pending_X)
        y = take(self._pending_y) if self._supervised else None
        self._pending_rows -= rows
        return X, y

    def _flush_shard(self, rows: int) -> None:
        X, y = self._take_pending(rows)
        index = len(self._shards)
        start = self._shards[-1].stop if self._shards else 0
        x_file = f"shard-{index:05d}.x.npy"
        y_file = None if y is None else f"shard-{index:05d}.y.npy"
        try:
            np.save(os.path.join(self._directory, x_file), X)
            if y is not None:
                np.save(os.path.join(self._directory, y_file), y)
        except BaseException:
            # A transient save failure (ENOSPC, EIO) must not consume the
            # rows: push them back so a retried append/close re-flushes
            # them — otherwise the retry would publish a *truncated* store
            # whose digests verify clean (undetectable data loss).  A
            # half-written shard file left behind is harmless: the retry
            # reuses the same index and overwrites it.
            self._pending_X.insert(0, X)
            if y is not None:
                self._pending_y.insert(0, y)
            self._pending_rows += rows
            raise
        if y is not None:
            self._moments = self._moments.merge(LabelMoments.from_block(y))
        self._shards.append(
            ShardInfo(
                index=index,
                start=start,
                stop=start + rows,
                x_file=x_file,
                y_file=y_file,
                digest=_digest_arrays(X, y),
            )
        )

    def close(self) -> "ShardStore":
        """Flush, digest, and publish the manifest; returns the opened store.

        Without a precomputed ``content_digest`` the manifest digest is
        computed by streaming the written shards back from disk — the
        digest byte format opens with the final ``(n_rows, n_features)``
        header, which a block-streaming writer only knows here, and a
        sequential hash cannot be prepended to, so the re-read pass is
        inherent to digest compatibility.  Callers that already hold the
        digest (``ShardStore.write``) pass it in and skip the pass.
        """
        if self._closed:
            return self.store
        if self._pending_rows:
            self._flush_shard(self._pending_rows)
        if not self._shards:
            raise DataError("shard store must contain at least one row")
        layout = ShardManifest(
            name=self._name,
            n_rows=self._shards[-1].stop,
            n_features=self._n_features,
            x_dtype=_X_DTYPE.str,
            y_dtype=None if self._y_dtype is None else self._y_dtype.str,
            shards=tuple(self._shards),
            content_digest="pending",
            label_moments=self._moments if self._supervised else None,
            metadata=self._metadata,
            statistics=self._statistics,
        )
        digest = self._known_content_digest
        if digest is None:
            digest = _stream_content_digest(layout, self._directory)
        manifest = dataclasses.replace(layout, content_digest=digest)
        manifest.save(self._directory)
        self._store = ShardStore(self._directory, manifest)
        # Marked closed only now: a transient failure in the digest pass or
        # the manifest save above leaves the writer retryable (shards are
        # already flushed, so a repeat close() just redoes digest + save)
        # instead of permanently wedged behind the early-return branch.
        self._closed = True
        return self._store

    def __enter__(self) -> "ShardStoreWriter":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            self.close()


class ShardStore:
    """A written shard-store directory: manifest plus validated shard files.

    Construct through :meth:`write` (persist an in-memory dataset),
    :class:`ShardStoreWriter` (out-of-core block appends) or :meth:`open`
    (an existing directory).  Opening structurally validates every shard
    file's ``.npy`` header against the manifest — existence, shape, dtype —
    without reading row data; :meth:`verify` additionally re-hashes every
    shard and the manifest digest (full tamper detection, O(store) I/O).
    """

    def __init__(self, directory: str | os.PathLike, manifest: ShardManifest):
        self._directory = os.fspath(directory)
        self._manifest = manifest

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def write(
        cls,
        dataset: Dataset,
        directory: str | os.PathLike,
        *,
        shard_rows: int = DEFAULT_STORE_SHARD_ROWS,
        name: str | None = None,
        overwrite: bool = False,
    ) -> "ShardStore":
        """Persist an in-memory :class:`Dataset` as a shard store.

        The dataset's own (memoised) content digest becomes the manifest
        digest directly — the written bytes are exactly the dataset's
        arrays, so no close-time re-read hashing pass is needed.
        """
        writer = ShardStoreWriter(
            directory,
            shard_rows=shard_rows,
            name=dataset.name if name is None else name,
            metadata=dict(dataset.metadata),
            overwrite=overwrite,
            content_digest=dataset.content_digest(),
        )
        for start in range(0, dataset.n_rows, shard_rows):
            stop = min(start + shard_rows, dataset.n_rows)
            y_block = None if dataset.y is None else dataset.y[start:stop]
            writer.append(dataset.X[start:stop], y_block)
        return writer.close()

    @classmethod
    def open(
        cls, directory: str | os.PathLike, *, validate_layout: bool = True
    ) -> "ShardStore":
        """Open an existing store, validating layout against the manifest.

        ``validate_layout=True`` (the default) checks every shard file's
        ``.npy`` header — existence, shape, dtype — up front, so a partial
        or mismatched store fails at open time.  Pass ``False`` on hot
        re-open paths that will validate lazily anyway (every
        ``read_block`` re-checks the header of the shard it touches):
        process-backend workers unpickling a ``ShardedDataset`` per task
        must not pay O(n_shards) file opens before reading a single row.
        """
        manifest = ShardManifest.load(directory)
        store = cls(directory, manifest)
        if not validate_layout:
            return store
        x_dtype = np.dtype(manifest.x_dtype)
        y_dtype = None if manifest.y_dtype is None else np.dtype(manifest.y_dtype)
        for shard in manifest.shards:
            _open_shard_array(
                store._directory,
                shard.x_file,
                (shard.n_rows, manifest.n_features),
                x_dtype,
            )
            if shard.y_file is not None:
                _open_shard_array(
                    store._directory, shard.y_file, (shard.n_rows,), y_dtype
                )
        return store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self._directory

    @property
    def manifest(self) -> ShardManifest:
        return self._manifest

    @property
    def n_rows(self) -> int:
        return self._manifest.n_rows

    @property
    def n_features(self) -> int:
        return self._manifest.n_features

    @property
    def n_shards(self) -> int:
        return self._manifest.n_shards

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardStore({self._directory!r}, rows={self.n_rows}, "
            f"features={self.n_features}, shards={self.n_shards})"
        )

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def append_shards(
        self,
        blocks: Iterable[tuple[np.ndarray, np.ndarray | None]],
        *,
        shard_rows: int = DEFAULT_STORE_SHARD_ROWS,
    ) -> "ShardStore":
        """Grow this store by appending ``(X_block, y_block)`` pairs.

        Convenience wrapper over ``ShardStoreWriter(..., append=True)``:
        existing shards and statistics sidecars are untouched, new shards
        continue the sequence, and the manifest is republished atomically.
        This store object adopts the grown manifest; other handles (e.g. a
        long-lived :class:`ShardedDataset` in a serving session) pick it up
        via :meth:`ShardedDataset.reload`.  Returns ``self``.
        """
        writer = ShardStoreWriter(self._directory, shard_rows=shard_rows, append=True)
        for X_block, y_block in blocks:
            writer.append(X_block, y_block)
        grown = writer.close()
        self._manifest = grown.manifest
        return self

    # ------------------------------------------------------------------
    # Statistics sidecars
    # ------------------------------------------------------------------
    def statistics_index(self) -> "StatisticsIndex":
        """Read/write access to this store's per-shard statistics sidecars."""
        return StatisticsIndex(self)

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Re-hash every shard and the manifest digest; raise on any mismatch.

        Full tamper detection: a flipped byte in any shard file changes
        that shard's digest, any change to the row data changes the
        manifest-level content digest, and the manifest's *derived* label
        moments — which feed the normalised regression metrics but are not
        part of the row-data digest — are re-derived from the label shards
        and compared exactly (the recompute replays the writer's
        per-shard-then-combine order, so matching stores match bitwise).
        Statistics sidecars are covered too: every listed sidecar file must
        exist, hash to its manifest digest, and reference only shard
        contents the manifest actually holds.
        O(store) sequential I/O, one shard resident at a time.
        """
        manifest = self._manifest
        x_dtype = np.dtype(manifest.x_dtype)
        y_dtype = None if manifest.y_dtype is None else np.dtype(manifest.y_dtype)
        moments = LabelMoments(count=0, mean=0.0, m2=0.0)
        for shard in manifest.shards:
            X = _open_shard_array(
                self._directory, shard.x_file, (shard.n_rows, manifest.n_features), x_dtype
            )
            y = (
                None
                if shard.y_file is None
                else _open_shard_array(self._directory, shard.y_file, (shard.n_rows,), y_dtype)
            )
            digest = _digest_arrays(X, y)
            if digest != shard.digest:
                raise DataError(
                    f"shard {shard.index} content digest mismatch "
                    f"(expected {shard.digest}, found {digest}): store tampered "
                    "or corrupted"
                )
            if y is not None:
                moments = moments.merge(LabelMoments.from_block(y))
        if manifest.y_dtype is not None and not manifest.label_moments.matches(moments):
            raise DataError(
                "shard store label moments mismatch "
                f"(manifest {manifest.label_moments}, derived {moments}): a "
                "tampered manifest would silently mis-scale normalised "
                "regression metrics"
            )
        digest = _stream_content_digest(manifest, self._directory)
        if digest != manifest.content_digest:
            raise DataError(
                "shard store content digest mismatch "
                f"(expected {manifest.content_digest}, found {digest})"
            )
        known_shards = {shard.digest for shard in manifest.shards}
        for entry in manifest.statistics:
            path = os.path.join(self._directory, entry.file)
            if not os.path.exists(path):
                raise DataError(
                    f"statistics sidecar {entry.file!r} is listed in the "
                    "manifest but missing on disk"
                )
            if _file_digest(path) != entry.digest:
                raise DataError(
                    f"statistics sidecar {entry.file!r} content digest mismatch: "
                    "sidecar tampered or corrupted"
                )
            orphaned = set(entry.shard_digests) - known_shards
            if orphaned:
                raise DataError(
                    f"statistics sidecar {entry.file!r} references shard "
                    f"contents the store does not hold: {sorted(orphaned)}"
                )

    # ------------------------------------------------------------------
    # The read side
    # ------------------------------------------------------------------
    def dataset(self, name: str | None = None) -> "ShardedDataset":
        """The store's block-source view (see :class:`ShardedDataset`)."""
        return ShardedDataset(self, name=name)


class ShardedDataset:
    """Zero-copy memory-mapped read side of a :class:`ShardStore`.

    Implements the :class:`repro.evaluation.streaming.BlockSource` protocol
    — ``n_rows`` / ``block_bounds`` / ``read_block`` — so the streaming
    sharded holdout engine, the estimation session and the serving registry
    accept it anywhere an in-memory holdout :class:`Dataset` is accepted.
    Block bounds are **snapped to shard boundaries**: a block never crosses
    a shard, so every block the engine sees is a zero-copy slice of one
    memory-mapped ``.npy`` file and no cross-shard row copies ever happen.

    For the *training* side, :meth:`take` gathers arbitrary row indices
    across shards (one shard resident at a time) into an in-memory
    :class:`Dataset` — this is how :class:`repro.data.sampling.UniformSampler`
    draws the paper's small training samples from an arbitrarily large
    store.

    Instances pickle as the store *path* (plus expected digest), not the
    data: the process streaming backend ships a handle to each worker and
    every worker re-opens its own memory maps.
    """

    #: most shards whose memory maps one instance keeps open at a time.
    #: Streaming visits shards sequentially (1 live shard) and the thread
    #: backend at most n_workers concurrently, so a small LRU serves every
    #: access pattern while bounding file descriptors — an unbounded cache
    #: on a many-thousand-shard store would exhaust the process fd limit.
    MAX_CACHED_SHARDS = 16

    def __init__(
        self, store: "ShardStore | str | os.PathLike", name: str | None = None
    ):
        if not isinstance(store, ShardStore):
            store = ShardStore.open(store)
        self._store = store
        self._name = store.manifest.name if name is None else name
        self._memmaps: OrderedDict[int, tuple[np.ndarray, np.ndarray | None]] = (
            OrderedDict()
        )  # guarded-by: _memmap_lock
        self._memmap_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Dataset-compatible surface
    # ------------------------------------------------------------------
    @property
    def store(self) -> ShardStore:
        return self._store

    @property
    def manifest(self) -> ShardManifest:
        return self._store.manifest

    @property
    def name(self) -> str:
        return self._name

    @property
    def metadata(self) -> dict:
        return dict(self.manifest.metadata)

    @property
    def n_rows(self) -> int:
        return self.manifest.n_rows

    @property
    def n_features(self) -> int:
        return self.manifest.n_features

    @property
    def is_supervised(self) -> bool:
        return self.manifest.is_supervised

    def __len__(self) -> int:
        return self.n_rows

    def content_digest(self) -> str:
        """The manifest-level digest — equal to the digest the materialised
        :class:`Dataset` would report, so registry fingerprinting needs no
        materialisation."""
        return self.manifest.content_digest

    def label_std(self) -> float:
        """Holdout label scale from the manifest moments (O(1), no I/O).

        Matches ``numpy.std(y)`` of the materialised labels to a few ulps
        (Chan-combined per-shard moments); the normalised regression
        families call this instead of touching ``.y``.
        """
        return self.manifest.label_std()

    def statistics_index(self) -> StatisticsIndex:
        """The owning store's statistics-sidecar index (shared manifest)."""
        return self._store.statistics_index()

    def reload(self) -> bool:
        """Re-read the manifest from disk; adopt any published growth.

        The serving refresh entry point: after another writer appended
        shards (:meth:`ShardStore.append_shards`), a long-lived reader
        calls ``reload()`` to pick the new manifest up.  Returns ``True``
        iff the *row data* changed (content digest moved); a republish that
        only touched statistics sidecars adopts silently and returns
        ``False``.  When the old shards survive as a digest-matching prefix
        of the new layout — the append case — the open memory maps are
        kept; any other change drops them so no stale map is ever served.
        """
        new_manifest = ShardManifest.load(self._store.directory)
        old_manifest = self._store.manifest
        old_shards = old_manifest.shards
        new_shards = new_manifest.shards
        appended_prefix = len(new_shards) >= len(old_shards) and all(
            old.digest == new.digest and old.x_file == new.x_file
            for old, new in zip(old_shards, new_shards)
        )
        if not appended_prefix:
            with self._memmap_lock:
                self._memmaps.clear()
        self._store._manifest = new_manifest
        return new_manifest.content_digest != old_manifest.content_digest

    # ------------------------------------------------------------------
    # Block source protocol
    # ------------------------------------------------------------------
    def block_bounds(self, block_rows: int) -> list[tuple[int, int]]:
        """Contiguous ``[start, stop)`` bounds covering the store in order.

        Bounds are snapped to shard boundaries: each is at most
        ``block_rows`` rows *and* lies inside a single shard, so
        :meth:`read_block` on any returned bound is zero-copy.
        """
        if block_rows < 1:
            raise DataError("block_rows must be at least 1")
        bounds: list[tuple[int, int]] = []
        for shard in self.manifest.shards:
            for start in range(shard.start, shard.stop, block_rows):
                bounds.append((start, min(start + block_rows, shard.stop)))
        return bounds

    def _shard_arrays(self, index: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Lazily opened memory maps for one shard (bounded LRU per instance).

        At most :data:`MAX_CACHED_SHARDS` shards stay open; the eviction
        only drops this cache's reference — blocks handed out earlier keep
        their underlying maps alive through NumPy's base-array refcounting,
        so a reader holding an old block is never invalidated.
        """
        with self._memmap_lock:
            cached = self._memmaps.get(index)
            if cached is not None:
                self._memmaps.move_to_end(index)
                return cached
        manifest = self.manifest
        shard = manifest.shards[index]
        # Opened outside the lock (file I/O); a concurrent duplicate open of
        # the same shard is benign — last one in wins the cache slot.
        X = _open_shard_array(
            self._store.directory,
            shard.x_file,
            (shard.n_rows, manifest.n_features),
            np.dtype(manifest.x_dtype),
        )
        y = (
            None
            if shard.y_file is None
            else _open_shard_array(
                self._store.directory,
                shard.y_file,
                (shard.n_rows,),
                np.dtype(manifest.y_dtype),
            )
        )
        with self._memmap_lock:
            self._memmaps[index] = (X, y)
            self._memmaps.move_to_end(index)
            while len(self._memmaps) > self.MAX_CACHED_SHARDS:
                self._memmaps.popitem(last=False)
        return X, y

    def read_block(self, start: int, stop: int) -> Dataset:
        """The rows ``[start, stop)`` as a :class:`Dataset`.

        Zero-copy (memory-mapped views) when the range lies inside one
        shard — which every bound from :meth:`block_bounds` does; a range
        crossing shards is gathered with one copy.
        """
        if not 0 <= start < stop <= self.n_rows:
            raise DataError(
                f"block [{start}, {stop}) out of range for {self.n_rows} rows"
            )
        shard = self.manifest.shard_for_row(start)
        if stop <= shard.stop:
            X, y = self._shard_arrays(shard.index)
            lo, hi = start - shard.start, stop - shard.start
            y_slice = None if y is None else y[lo:hi]
            return Dataset(X[lo:hi], y_slice, name=self._name, metadata=self.metadata)
        return self.take(np.arange(start, stop))

    def iter_blocks(self, block_rows: int) -> Iterator[Dataset]:
        """Yield the store as shard-snapped zero-copy blocks in row order."""
        for start, stop in self.block_bounds(block_rows):
            yield self.read_block(start, stop)

    # ------------------------------------------------------------------
    # Row gathering (the samplers' entry point)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> Dataset:
        """Gather the addressed rows (kept in order) into an in-memory Dataset.

        Matches :meth:`Dataset.take` bitwise.  Shards are visited one at a
        time, so peak extra memory is the output plus one shard's selected
        rows — never the whole store.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            raise DataError("cannot take an empty subset of a dataset")
        if indices.min() < 0 or indices.max() >= self.n_rows:
            raise DataError("subset indices out of range")
        manifest = self.manifest
        X_out = np.empty((indices.size, manifest.n_features), dtype=np.dtype(manifest.x_dtype))
        y_out = (
            None
            if manifest.y_dtype is None
            else np.empty(indices.size, dtype=np.dtype(manifest.y_dtype))
        )
        # Group the requested rows by shard via one sort + searchsorted —
        # O(n log n) and touching only the shards that actually hold rows
        # (a per-shard mask scan would cost O(n_shards · n_indices), which
        # bites at tens of thousands of shards).  Within each shard the
        # gather is ascending, which is also the memmap-friendly order.
        order = np.argsort(indices, kind="stable")
        sorted_indices = indices[order]
        starts = np.fromiter(
            (shard.start for shard in manifest.shards),
            dtype=np.int64,
            count=manifest.n_shards,
        )
        shard_of = np.searchsorted(starts, sorted_indices, side="right") - 1
        group_bounds = np.flatnonzero(np.diff(shard_of)) + 1
        for group in np.split(np.arange(indices.size), group_bounds):
            shard = manifest.shards[int(shard_of[group[0]])]
            positions = order[group]
            local = sorted_indices[group] - shard.start
            X, y = self._shard_arrays(shard.index)
            X_out[positions] = X[local]
            if y_out is not None:
                y_out[positions] = y[local]
        return Dataset(X_out, y_out, name=self._name, metadata=self.metadata)

    def materialize(self) -> Dataset:
        """The whole store as one in-memory :class:`Dataset`.

        Correctness escape hatch (used by the generic accumulator fallback
        for custom model specs without a streaming decomposition); it
        deliberately defeats the out-of-core memory bound, so hot paths
        should stream blocks instead.
        """
        manifest = self.manifest
        X = np.concatenate(
            [self._shard_arrays(shard.index)[0] for shard in manifest.shards], axis=0
        )
        y = (
            None
            if manifest.y_dtype is None
            else np.concatenate(
                [self._shard_arrays(shard.index)[1] for shard in manifest.shards]
            )
        )
        return Dataset(X, y, name=self._name, metadata=self.metadata)

    # ------------------------------------------------------------------
    # Pickling: ship the path, not the data
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        return {
            "directory": self._store.directory,
            "name": self._name,
            "content_digest": self.manifest.content_digest,
        }

    def __setstate__(self, state: dict) -> None:
        # Manifest + digest check only: eager per-shard header validation
        # would cost O(n_shards) opens on every process-backend task, and
        # read_block validates each shard it actually touches anyway.
        store = ShardStore.open(state["directory"], validate_layout=False)
        if store.manifest.content_digest != state["content_digest"]:
            raise DataError(
                "shard store changed between pickling and unpickling "
                f"({state['directory']!r}): content digest mismatch"
            )
        self._store = store
        self._name = state["name"]
        self._memmaps = OrderedDict()
        self._memmap_lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedDataset({self._store.directory!r}, rows={self.n_rows}, "
            f"features={self.n_features}, shards={self.manifest.n_shards})"
        )


def write_blocks(
    blocks: Iterable[tuple[np.ndarray, np.ndarray | None]],
    directory: str | os.PathLike,
    *,
    shard_rows: int = DEFAULT_STORE_SHARD_ROWS,
    name: str = "dataset",
    metadata: dict | None = None,
    overwrite: bool = False,
) -> ShardStore:
    """Write an iterable of ``(X_block, y_block)`` pairs as a shard store.

    Convenience wrapper over :class:`ShardStoreWriter` for block streams
    (``y_block`` is ``None`` throughout for unsupervised data); never holds
    more than one shard plus one block in memory.
    """
    writer = ShardStoreWriter(
        directory, shard_rows=shard_rows, name=name, metadata=metadata, overwrite=overwrite
    )
    for X_block, y_block in blocks:
        writer.append(X_block, y_block)
    return writer.close()
