"""Per-shard statistics sidecars: persisted H/J moment summaries.

The streaming statistics tier (:mod:`repro.core.statistics`) reduces every
shard of a store to a compact moment summary (:mod:`repro.linalg.moments`)
and merges the summaries in shard order.  This module persists those
per-shard summaries next to the shard data so later bootstraps — a new
session over the same store, or a :meth:`EstimationSession.refresh` after
an append — merge a few kilobytes of sidecar instead of re-reading every
raw row.

Layout.  One ``.npz`` file per statistics key, named

    ``stats-<spec_digest[:8]>-<theta_digest[:8]>-<method>.npz``

(the ``stats-`` prefix keeps the namespace disjoint from the ``shard-*``
data files), holding for each covered shard position ``i`` the summary's
arrays under ``s{i}_``-prefixed keys plus a ``shard_digests`` array that
records which shard contents each summary came from.  The manifest lists
every sidecar as a :class:`~repro.data.store.manifest.StatisticsSidecarInfo`
with the blake2b digest of the file bytes, so ``ShardStore.verify()`` can
detect sidecar tampering exactly like shard tampering.

Integrity / staleness rules:

* ``load`` re-hashes the file and compares against the manifest entry — a
  mismatch raises :class:`~repro.exceptions.DataError`, never a silent
  wrong answer;
* summaries are keyed by shard *content* digest, so a summary is only ever
  applied to the exact bytes it was computed from (after an append the old
  sidecar covers the old shards; the new shards are computed fresh);
* ``publish`` garbage-collects sidecars that share the (spec, method) key
  but were taken at a **different θ** — those became stale the moment the
  model's bootstrap parameter moved (a grown store re-trains a new θ₀) and
  must not linger as dead weight or, worse, be served by key collision.

Publishing rewrites the sidecar and republishes the manifest atomically
(write-then-rename, same discipline as the shard writer), so a crash
mid-publish leaves the previous manifest intact and at worst strands an
unreferenced ``stats-*.npz`` file that the next overwrite cleans up.
"""

from __future__ import annotations

import hashlib
import io
import os
from typing import TYPE_CHECKING

import numpy as np

from repro.data.store.manifest import ShardManifest, StatisticsSidecarInfo
from repro.exceptions import DataError
from repro.linalg.moments import SUMMARY_KINDS, MomentSummary, summary_kind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.store.shard_store import ShardStore


def _file_digest(path: str) -> str:
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def sidecar_filename(spec_digest: str, theta_digest: str, method: str) -> str:
    """Deterministic sidecar file name for one statistics key."""
    return f"stats-{spec_digest[:8]}-{theta_digest[:8]}-{method}.npz"


class StatisticsIndex:
    """Read/write access to one store's statistics sidecars.

    Obtained via :meth:`ShardStore.statistics_index` /
    :meth:`ShardedDataset.statistics_index`; operates on the store's live
    manifest so a publish is immediately visible to the owning store object
    (and, via the rewritten ``manifest.json``, to every other process).
    """

    def __init__(self, store: "ShardStore"):
        self._store = store

    @property
    def directory(self) -> str:
        return self._store.directory

    @property
    def manifest(self) -> ShardManifest:
        return self._store.manifest

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def find(
        self, spec_digest: str, theta_digest: str, method: str
    ) -> StatisticsSidecarInfo | None:
        """The manifest entry for one statistics key, or ``None``."""
        for entry in self.manifest.statistics:
            if (
                entry.spec_digest == spec_digest
                and entry.theta_digest == theta_digest
                and entry.method == method
            ):
                return entry
        return None

    def load(
        self, spec_digest: str, theta_digest: str, method: str
    ) -> dict[str, MomentSummary]:
        """Per-shard summaries for one key, as ``{shard digest: summary}``.

        Returns an empty mapping when no sidecar covers the key.  A listed
        sidecar whose file is missing, whose bytes do not hash to the
        manifest digest, or whose payload is malformed raises
        :class:`DataError` — tampered statistics must never be merged.
        """
        entry = self.find(spec_digest, theta_digest, method)
        if entry is None:
            return {}
        path = os.path.join(self.directory, entry.file)
        if not os.path.exists(path):
            raise DataError(
                f"statistics sidecar {entry.file!r} is listed in the manifest "
                "but missing on disk"
            )
        if _file_digest(path) != entry.digest:
            raise DataError(
                f"statistics sidecar {entry.file!r} does not match its manifest "
                "digest (file corrupted or tampered with)"
            )
        try:
            with np.load(path) as payload:
                kind = str(payload["kind"][()])
                summary_cls = SUMMARY_KINDS.get(kind)
                if summary_cls is None:
                    raise DataError(
                        f"statistics sidecar {entry.file!r} holds unknown "
                        f"summary kind {kind!r}"
                    )
                shard_digests = [str(d) for d in payload["shard_digests"]]
                summaries: dict[str, MomentSummary] = {}
                for position, digest in enumerate(shard_digests):
                    prefix = f"s{position}_"
                    arrays = {
                        name[len(prefix):]: payload[name]
                        for name in payload.files
                        if name.startswith(prefix)
                    }
                    summaries[digest] = summary_cls.from_arrays(arrays)
        except DataError:
            raise
        except Exception as exc:  # truncated zip, missing keys, bad shapes
            raise DataError(
                f"statistics sidecar {entry.file!r} is malformed: {exc}"
            ) from exc
        if shard_digests != list(entry.shard_digests):
            raise DataError(
                f"statistics sidecar {entry.file!r} covers different shards "
                "than its manifest entry claims"
            )
        return summaries

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def publish(
        self,
        spec_digest: str,
        theta_digest: str,
        method: str,
        block_rows: int,
        shard_digests: list[str],
        summaries: list[MomentSummary],
    ) -> StatisticsSidecarInfo:
        """Write one key's complete per-shard summary set and republish.

        ``summaries[i]`` must be the canonical summary of the shard whose
        content digest is ``shard_digests[i]``, in shard order.  Stale
        sidecars for the same (spec, method) at a different θ are
        garbage-collected as part of the same manifest republish.
        """
        if len(shard_digests) != len(summaries) or not summaries:
            raise DataError(
                "publish needs one summary per covered shard (and at least one)"
            )
        kinds = {summary_kind(summary) for summary in summaries}
        if len(kinds) != 1:
            raise DataError(f"cannot mix summary kinds in one sidecar: {kinds}")

        arrays: dict[str, np.ndarray] = {
            "kind": np.array(next(iter(kinds))),
            "shard_digests": np.array(shard_digests),
        }
        for position, summary in enumerate(summaries):
            for name, value in summary.to_arrays().items():
                arrays[f"s{position}_{name}"] = value

        file_name = sidecar_filename(spec_digest, theta_digest, method)
        path = os.path.join(self.directory, file_name)
        # Serialise to memory first so the on-disk file appears atomically.
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(buffer.getvalue())
        os.replace(tmp_path, path)

        entry = StatisticsSidecarInfo(
            file=file_name,
            spec_digest=spec_digest,
            theta_digest=theta_digest,
            method=method,
            block_rows=int(block_rows),
            digest=_file_digest(path),
            shard_digests=tuple(shard_digests),
        )

        manifest = self.manifest
        kept: list[StatisticsSidecarInfo] = []
        stale: list[StatisticsSidecarInfo] = []
        for existing in manifest.statistics:
            if existing.file == file_name:
                continue  # replaced below
            if (
                existing.spec_digest == spec_digest
                and existing.method == method
                and existing.theta_digest != theta_digest
            ):
                stale.append(existing)  # θ moved: summaries are dead weight
            else:
                kept.append(existing)
        updated = ShardManifest(
            name=manifest.name,
            n_rows=manifest.n_rows,
            n_features=manifest.n_features,
            x_dtype=manifest.x_dtype,
            y_dtype=manifest.y_dtype,
            shards=manifest.shards,
            content_digest=manifest.content_digest,
            label_moments=manifest.label_moments,
            version=manifest.version,
            metadata=dict(manifest.metadata),
            statistics=(*kept, entry),
        )
        updated.save(self.directory)
        self._store._manifest = updated
        for dead in stale:
            try:
                os.remove(os.path.join(self.directory, dead.file))
            except OSError:
                pass  # unreferenced leftovers are harmless; best-effort GC
        return entry
