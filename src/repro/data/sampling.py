"""Uniform random sampling over datasets.

BlinkML deliberately restricts itself to *uniform* random sampling
(Section 1, "Difference from Previous Work"): unlike coreset or
leverage-score approaches, no sampling probabilities have to be tailored to
the model, which is what lets a single system serve every MLE-based model.

This module provides:

* :class:`UniformSampler` — draws size-n uniform samples without replacement
  from a :class:`~repro.data.dataset.Dataset`, with support for nested
  sampling (a size-n' sample that contains an earlier size-n sample, which is
  how the coordinator grows the initial sample into the final one without
  discarding already-seen rows);
* :func:`reservoir_sample` — classic reservoir sampling over a row stream,
  standing in for the database-side sampling operator the paper assumes.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError
from repro.linalg.utils import freeze

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from repro.data.store import ShardedDataset


class UniformSampler:
    """Draw uniform random samples (without replacement) from a dataset.

    Parameters
    ----------
    dataset:
        The training portion of the data: an in-memory :class:`Dataset` or
        an out-of-core :class:`~repro.data.store.ShardedDataset`.  Only
        ``n_rows`` and ``take(indices)`` are used, so samples drawn from a
        shard store gather exactly the selected rows (one shard resident at
        a time) — the row data itself is never materialised.  The *index*
        machinery, however, is O(N): ``nested_sample`` keeps a full random
        permutation (8 bytes per population row) and ``sample`` uses
        ``Generator.choice(replace=False)``, so a 10⁹-row store still
        costs ~8 GB of index memory (a sub-linear per-shard index scheme
        is a ROADMAP item).
    rng:
        Seeded NumPy generator for reproducibility.
    """

    def __init__(
        self,
        dataset: Dataset | ShardedDataset,
        rng: np.random.Generator | None = None,
    ):
        self._dataset = dataset
        self._rng = rng or np.random.default_rng()
        # A lazily-built random permutation of all row indices.  Sampling a
        # prefix of a fixed permutation yields uniform samples with the
        # useful property that samples of increasing size are nested, which
        # mirrors how a database cursor over a shuffled table behaves.
        # Built under a lock with a double-checked read: if two concurrent
        # nested_sample calls could each build their own permutation, the
        # nesting invariant (D0 ⊂ Dn) would silently break for whichever
        # caller's permutation lost the publication race.  The same lock
        # serialises every other consumption of the shared generator
        # (sample / sample_indices), so concurrent callers cannot interleave
        # its bit-stream mid-draw.
        self._permutation: np.ndarray | None = None  # guarded-by: _rng_lock  # repro-lint: frozen-attr
        self._rng_lock = threading.Lock()

    @property
    def dataset(self) -> Dataset | ShardedDataset:
        return self._dataset

    @property
    def population_size(self) -> int:
        return self._dataset.n_rows

    def _ensure_permutation(self) -> np.ndarray:
        permutation = self._permutation
        if permutation is None:
            with self._rng_lock:
                permutation = self._permutation
                if permutation is None:
                    permutation = freeze(self._rng.permutation(self._dataset.n_rows))
                    self._permutation = permutation
        return permutation

    def sample(self, n: int) -> Dataset:
        """Return an independent size-``n`` uniform sample without replacement."""
        if n <= 0:
            raise DataError("sample size must be positive")
        if n > self._dataset.n_rows:
            raise DataError(
                f"sample size {n} exceeds population size {self._dataset.n_rows}"
            )
        with self._rng_lock:
            indices = self._rng.choice(self._dataset.n_rows, size=n, replace=False)
        return self._dataset.take(indices).with_name(f"{self._dataset.name}/sample[{n}]")

    def nested_sample(self, n: int) -> Dataset:
        """Return the first ``n`` rows of a fixed random permutation.

        Successive calls with increasing ``n`` return nested samples: the
        size-n0 initial training set D0 is a prefix of the size-n final
        training set Dn.  This matches the coordinator workflow in
        Section 2.3 where the final sample subsumes the initial one.
        """
        if n <= 0:
            raise DataError("sample size must be positive")
        if n > self._dataset.n_rows:
            raise DataError(
                f"sample size {n} exceeds population size {self._dataset.n_rows}"
            )
        permutation = self._ensure_permutation()
        return self._dataset.take(permutation[:n]).with_name(
            f"{self._dataset.name}/nested[{n}]"
        )

    def sample_indices(self, n: int) -> np.ndarray:
        """Return ``n`` uniformly sampled row indices without replacement."""
        if n <= 0 or n > self._dataset.n_rows:
            raise DataError("sample size out of range")
        with self._rng_lock:
            return self._rng.choice(self._dataset.n_rows, size=n, replace=False)


class WeightedSampler:
    """Draw samples with per-row inclusion probabilities proportional to weights.

    BlinkML itself needs only *uniform* sampling, but the paper points out
    (Sections 3.2 and 7) that its machinery extends to non-uniform sampling
    as long as the sampling probabilities are known: the gradient covariance
    J can then be re-weighted accordingly.  This sampler provides the data
    side of that extension — weighted sampling without replacement using the
    Efraimidis–Spirakis exponential-key method — together with the
    raw Horvitz–Thompson-style importance weights ``1 / (n · p_i)`` a
    downstream estimator needs to stay (asymptotically) unbiased for the
    full-data objective (see :meth:`sample` for the exact estimator
    conventions and the without-replacement caveat).
    """

    def __init__(
        self,
        dataset: Dataset,
        weights: np.ndarray,
        rng: np.random.Generator | None = None,
    ):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (dataset.n_rows,):
            raise DataError(
                f"weights must have one entry per row; got {weights.shape} for "
                f"{dataset.n_rows} rows"
            )
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise DataError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise DataError("at least one weight must be positive")
        self._dataset = dataset
        self._probabilities = weights / total
        self._rng = rng or np.random.default_rng()

    @property
    def probabilities(self) -> np.ndarray:
        """Normalised per-row selection probabilities."""
        return self._probabilities

    def sample_indices(self, n: int) -> np.ndarray:
        """Weighted sampling of ``n`` distinct row indices (Efraimidis–Spirakis)."""
        if n <= 0:
            raise DataError("sample size must be positive")
        positive = np.flatnonzero(self._probabilities > 0)
        if n > positive.size:
            raise DataError(
                f"cannot draw {n} distinct rows: only {positive.size} rows have "
                "positive weight"
            )
        # Key_i = U_i^(1/w_i); the n largest keys form a weighted sample
        # without replacement.
        uniforms = self._rng.uniform(size=positive.size)
        keys = np.power(uniforms, 1.0 / self._probabilities[positive])
        chosen = positive[np.argsort(keys)[-n:]]
        return chosen

    def sample(self, n: int, normalize: bool = False) -> tuple[Dataset, np.ndarray]:
        """Return a weighted sample and the matching importance weights.

        The importance weight of row i is the *raw* Horvitz–Thompson-style
        weight ``w_i = 1 / (n · p_i)``: with it, ``Σ_sample w_i y_i``
        estimates the population total and ``(1/N) Σ_sample w_i y_i`` the
        population mean — which is what keeps a weighted MLE objective
        anchored to the full-data objective.  (For an objective written as
        a *sample average*, ``(1/n) Σ w'_i ℓ_i`` matching the full-data
        average requires ``w'_i = (n/N) w_i = 1/(N · p_i)``; either scaling
        is an exact constant multiple of the weights returned here.)

        Exactness caveat: ``n · p_i`` is the *with-replacement* inclusion
        rate.  Under the Efraimidis–Spirakis without-replacement draws used
        here the true inclusion probability of a heavy row is capped at 1,
        so the estimators above are exactly unbiased for uniform weights
        (where ``w_i = N/n``) and approximately unbiased otherwise, with
        bias vanishing as ``max_i n · p_i → 0``.  Rows with extreme weights
        relative to ``1/n`` should be handled with a dedicated
        certainty-stratum before relying on these weights.

        Parameters
        ----------
        n:
            Sample size.
        normalize:
            When true, rescale the returned weights to mean one over the
            sample.  Convenient when only *relative* weights matter (e.g.
            reweighting a loss against a fixed regulariser), but it
            silently destroys the exact unbiasedness above, so it is an
            explicit opt-in rather than the default.
        """
        indices = self.sample_indices(n)
        importance = 1.0 / (n * self._probabilities[indices])
        if normalize:
            importance = importance / importance.mean()
        subset = self._dataset.take(indices).with_name(
            f"{self._dataset.name}/weighted[{n}]"
        )
        return subset, importance


def reservoir_sample(
    rows: Iterable[np.ndarray],
    k: int,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Reservoir-sample ``k`` rows from a stream of feature vectors.

    This implements Algorithm R.  It exists to emulate the database-side
    sampling operator the paper leans on: a single pass over a table (here, a
    row iterator) producing a uniform sample of fixed size without knowing
    the table's cardinality in advance.

    Parameters
    ----------
    rows:
        Iterable of 1-D NumPy arrays, all of the same length.
    k:
        Reservoir size.
    rng:
        Seeded generator.

    Returns
    -------
    numpy.ndarray
        A ``(k, d)`` array.  Raises :class:`DataError` if the stream holds
        fewer than ``k`` rows.
    """
    if k <= 0:
        raise DataError("reservoir size must be positive")
    rng = rng or np.random.default_rng()

    iterator: Iterator[np.ndarray] = iter(rows)
    reservoir: list[np.ndarray] = []
    for _ in range(k):
        try:
            reservoir.append(np.asarray(next(iterator), dtype=np.float64))
        except StopIteration as exc:
            raise DataError(
                f"stream exhausted after {len(reservoir)} rows; needed {k}"
            ) from exc

    seen = k
    for row in iterator:
        seen += 1
        j = int(rng.integers(0, seen))
        if j < k:
            reservoir[j] = np.asarray(row, dtype=np.float64)

    return np.vstack(reservoir)
