"""Train / holdout / test splitting.

BlinkML needs three disjoint views of the data (Section 2.1 and 2.3):

* the *training* portion, from which the initial sample ``D0`` and the final
  sample ``Dn`` are drawn;
* a *holdout* set, not used for training, on which the Model Accuracy
  Estimator evaluates the prediction difference ``v(m_n)``;
* a *test* set used only for reporting generalisation error (Section 5.5).

``train_holdout_test_split`` produces all three with a single shuffle so the
splits are disjoint and reproducible given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_HOLDOUT_FRACTION, DEFAULT_TEST_FRACTION
from repro.data.dataset import Dataset
from repro.exceptions import DataError


@dataclass(frozen=True)
class SplitSpec:
    """Fractions of rows assigned to the holdout and test splits.

    The remaining rows form the training split.  Fractions must be
    non-negative and sum to strictly less than one.
    """

    holdout_fraction: float = DEFAULT_HOLDOUT_FRACTION
    test_fraction: float = DEFAULT_TEST_FRACTION

    def __post_init__(self) -> None:
        if self.holdout_fraction < 0 or self.test_fraction < 0:
            raise DataError("split fractions must be non-negative")
        if self.holdout_fraction + self.test_fraction >= 1.0:
            raise DataError("holdout + test fractions must leave room for training data")

    @property
    def train_fraction(self) -> float:
        return 1.0 - self.holdout_fraction - self.test_fraction


@dataclass(frozen=True)
class DataSplits:
    """The three disjoint views produced by :func:`train_holdout_test_split`."""

    train: Dataset
    holdout: Dataset
    test: Dataset


def train_holdout_test_split(
    dataset: Dataset,
    spec: SplitSpec | None = None,
    rng: np.random.Generator | None = None,
) -> DataSplits:
    """Shuffle ``dataset`` once and cut it into train / holdout / test views.

    Parameters
    ----------
    dataset:
        The full dataset D.
    spec:
        Fractions for holdout and test; defaults to 10 % / 20 % as in the
        paper's setup (80 % training, Section 5.1, with a 10 % holdout carved
        out of the training side for accuracy estimation).
    rng:
        NumPy random generator; a fresh default generator is used when
        omitted, which makes the split non-deterministic.  Pass a seeded
        generator for reproducibility.
    """
    spec = spec or SplitSpec()
    rng = rng or np.random.default_rng()

    n = dataset.n_rows
    n_holdout = int(round(n * spec.holdout_fraction))
    n_test = int(round(n * spec.test_fraction))
    n_train = n - n_holdout - n_test
    if n_train <= 0:
        raise DataError(
            f"split leaves no training rows (n={n}, holdout={n_holdout}, test={n_test})"
        )
    if n_holdout <= 0:
        raise DataError("split must reserve at least one holdout row")
    if n_test <= 0:
        raise DataError("split must reserve at least one test row")

    permutation = rng.permutation(n)
    train_idx = permutation[:n_train]
    holdout_idx = permutation[n_train : n_train + n_holdout]
    test_idx = permutation[n_train + n_holdout :]

    return DataSplits(
        train=dataset.take(train_idx).with_name(f"{dataset.name}/train"),
        holdout=dataset.take(holdout_idx).with_name(f"{dataset.name}/holdout"),
        test=dataset.take(test_idx).with_name(f"{dataset.name}/test"),
    )
