"""Cross-session serving registry with a global byte budget.

One :class:`~repro.core.session.EstimationSession` serves every (ε, δ)
contract against one (model, dataset) pair; a serving *fleet* holds many
pairs live at once.  PR 3 bounded the per-session caches, but a fleet of
sessions still shared nothing: no collective memory bound, no invalidation
when training data changes, and every caller constructing sessions by hand.
:class:`SessionRegistry` is the tier that turns the session layer into a
server:

* **keyed ownership** — :meth:`SessionRegistry.get_or_create` maps an
  application key (e.g. ``"fraud-lr/eu"``) to a live session, constructing
  it on first use and serving the same instance afterwards;
* **single-flight construction** — concurrent ``get_or_create`` calls for
  the same missing key train m_0 exactly once: one thread constructs, the
  others block on the result (the same protocol as
  :meth:`repro.core.caching.LRUCache.get_or_compute`);
* **global byte budget with traffic-weighted shares** — the registry owns
  a byte pool (``max_total_bytes``) shared by every member session.  Each
  member's cache caps are rebalanced (via
  :meth:`EstimationSession.resize_cache_budget`) whenever the fleet grows
  or shrinks; under the default ``rebalance_policy="traffic"`` every
  member receives a floor of ``min_session_bytes`` and the remaining pool
  is divided in proportion to each session's *recent* serving traffic (an
  exponentially decayed average of the cache-request deltas between
  rebalances, from its :meth:`EstimationSession.cache_stats` roll-ups), so
  hot (model, dataset) pairs keep more vectors cached under the same
  global bound, a formerly hot pair's share decays geometrically once its
  traffic stops, and back-to-back rebalances cannot collapse a hot pair's
  share through a near-empty measurement window.  ``rebalance_policy="even"`` restores the plain
  ``pool / N`` split.  Either way the sum of shares never exceeds the
  pool, so the fleet invariant ``stats().bytes <= max_total_bytes`` holds
  structurally no matter how many pairs are live;
* **LRU eviction of whole idle sessions** — when admitting a session would
  exceed ``max_sessions``, or would split the pool thinner than
  ``min_session_bytes`` per member, the registry evicts the session that
  has been idle longest (by :attr:`EstimationSession.last_used_at`, which
  every served request refreshes — including requests made directly on a
  session handle, not through the registry);
* **invalidation** — :meth:`SessionRegistry.invalidate` drops a key
  explicitly, and every ``get_or_create`` checks a content fingerprint of
  the offered training/holdout data (:meth:`repro.data.dataset.Dataset.content_digest`)
  against the fingerprint the live session was built from.  A changed
  dataset therefore *always* misses: the stale session is discarded and a
  fresh one is constructed, so stale sorted-difference vectors can never be
  served.  Out-of-core :class:`~repro.data.store.ShardedDataset` members
  fingerprint through their manifest-level digest — equal to the digest of
  the materialised data but read straight from the manifest, so a
  terabyte-scale holdout is fingerprinted without touching a single row.

Eviction and invalidation only drop the registry's reference: a caller
still holding the session handle can keep using it (its caches keep their
last caps but no longer count against the pool).  Evicted pairs recompute
bitwise-identically on their next ``get_or_create`` when constructed with
the same seed, because the Monte-Carlo vectors are determined by the cached
base draws, not by request order.

Byte accounting matches the session caches' (approximate ``sizeof``); the
one structural exception is inherited from :class:`~repro.core.caching.LRUCache` —
a single cached value larger than a session's whole share is still stored.
With the default k = 128 parameter samples a difference vector is ~1 KB,
orders of magnitude below any sane share, so the pool bound is tight in
practice.

Thread safety: one registry lock guards the fleet map, counters and
rebalancing; session construction runs *outside* it (single-flight), and
member sessions remain individually thread-safe as before, so worker
threads may mix ``get_or_create`` with direct ``session.answer()`` calls
freely.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.config import (
    DEFAULT_REGISTRY_CACHE_BYTES,
    DEFAULT_REGISTRY_MAX_SESSIONS,
    DEFAULT_REGISTRY_MIN_SESSION_BYTES,
)
from repro.core.caching import CacheStats, _InFlight
from repro.core.session import EstimationSession, SessionRefresh
from repro.data.dataset import Dataset
from repro.data.store import ShardedDataset
from repro.data.store.warm_cache import WarmCacheStats, WarmCacheTier, resolve_warm_cache
from repro.exceptions import BlinkMLError
from repro.models.base import ModelClassSpec
from repro.obs import get_metrics, obs_enabled

#: accepted ``rebalance_policy`` values.
REBALANCE_POLICIES = ("traffic", "even")

# Fleet lifecycle *events* (repro.obs, telemetry-gated): the cumulative
# totals in RegistryStats are bridged to gauges at scrape time; these
# counters attribute each event to a reason as it happens.
_REBALANCE_EVENTS = get_metrics().counter(
    "repro_registry_rebalance_total",
    "Byte-pool rebalances that applied new per-session shares, by policy.",
    ("policy",),
)
_EVICTION_EVENTS = get_metrics().counter(
    "repro_registry_eviction_events_total",
    "Whole-session evictions, by reason (capacity admission vs idleness).",
    ("reason",),
)


@dataclass(frozen=True)
class SessionInfo:
    """Per-session row of a :class:`RegistryStats` snapshot.

    ``budget_bytes`` is the byte share the last rebalance assigned this
    member (``None`` when the pool is unbounded); ``traffic`` is the
    *lifetime cumulative* serving-request roll-up.  The traffic-weighted
    policy weights by a decayed average of this value's growth between
    rebalances, so a high-``traffic`` member can legitimately hold a
    floor-sized share if it has gone idle.
    """

    key: object
    fingerprint: str
    bytes: int
    idle_seconds: float
    cache_stats: dict[str, CacheStats]
    budget_bytes: int | None = None
    traffic: int = 0


@dataclass(frozen=True)
class RegistryStats:
    """Immutable snapshot of the fleet: occupancy, budget, counters.

    ``bytes`` sums the member sessions' cache bytes — the quantity the
    global budget bounds.  ``hits`` counts ``get_or_create`` calls served
    by a live fingerprint-matching session (including single-flight
    followers); ``misses`` counts session constructions.  ``evictions``
    counts whole sessions evicted for capacity/budget/idleness;
    ``invalidations`` explicit :meth:`SessionRegistry.invalidate` drops;
    ``fingerprint_invalidations`` sessions discarded because the offered
    dataset's content digest no longer matched; ``refreshes`` live sessions
    that adopted appended data in place via :meth:`SessionRegistry.refresh`
    instead of being torn down.
    """

    sessions: int
    max_sessions: int | None
    bytes: int
    max_total_bytes: int | None
    session_budget_bytes: int | None
    hits: int
    misses: int
    evictions: int
    invalidations: int
    fingerprint_invalidations: int
    per_session: tuple[SessionInfo, ...]
    refreshes: int = 0
    #: snapshot from an attached serving front-end (``None`` when no
    #: provider is attached) — the coalescing tier's aggregated
    #: :class:`~repro.serving.batcher.BatcherStats` when served through
    #: :class:`~repro.serving.service.CoalescingService`.  Typed loosely so
    #: the core registry stays import-free of the serving package.
    serving: object | None = None
    #: snapshot of the registry's shared cross-process warm tier
    #: (:class:`~repro.data.store.warm_cache.WarmCacheStats`: warm hits,
    #: misses, quarantined entries, on-disk bytes), or ``None`` when no
    #: warm tier is configured.
    warm: WarmCacheStats | None = None

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get_or_create`` calls served by a live session."""
        return self.hits / self.requests if self.requests else 0.0

    def cache_totals(self) -> dict[str, CacheStats]:
        """Fleet-wide roll-up of the member sessions' cache counters.

        Returns one aggregated :class:`~repro.core.caching.CacheStats` per
        cache name ("diff", "model", "size"), summing hits/misses/evictions/
        entries/bytes across every live session (bounds are reported as the
        per-cache sums too, ``None`` if any member is unbounded).
        """
        totals: dict[str, CacheStats] = {}
        for info in self.per_session:
            for name, stats in info.cache_stats.items():
                base = totals.get(name)
                totals[name] = stats if base is None else base.merge(stats)
        return totals


def _cache_traffic(cache_stats: dict[str, CacheStats]) -> int:
    """Total cache requests (hits + misses) in one ``cache_stats()`` snapshot."""
    return sum(entry.hits + entry.misses for entry in cache_stats.values())


class _Member:
    """A live fleet member: the session, its data fingerprint, its byte share."""

    __slots__ = ("session", "fingerprint", "share", "rebalanced_traffic", "traffic_ema")

    def __init__(self, session: EstimationSession, fingerprint: str) -> None:
        self.session = session
        self.fingerprint = fingerprint
        self.share: int | None = None
        # Cumulative traffic observed at the last rebalance, plus an
        # exponentially decayed running average of the per-rebalance
        # deltas.  The average — not the lifetime total, not the raw last
        # delta — is the weighting signal: lifetime totals would let a
        # formerly hot, now idle session dominate forever, while a raw
        # delta would collapse a hot session's share whenever a
        # membership-triggered rebalance lands moments after a periodic
        # one (near-zero window).  Halving per rebalance decays idle
        # sessions geometrically and keeps short windows informative.
        self.rebalanced_traffic = 0
        self.traffic_ema = 0

    def traffic(self) -> int:
        """Cumulative cache requests this session has served (hits + misses).

        The rebalancing signal: every serving call (``answer`` /
        ``accuracy_estimate`` / ``train_to``) passes through at least the
        sorted-difference cache, so the roll-up tracks how hot the (model,
        dataset) pair is.  Sessions without the stats surface (injected
        test fakes) count as zero traffic — feature-detected, not caught,
        so an exception raised *inside* a real ``cache_stats()`` propagates
        instead of silently starving the session's caches at the floor.
        """
        stats_fn = getattr(self.session, "cache_stats", None)
        if not callable(stats_fn):
            return 0
        return _cache_traffic(stats_fn())


class SessionRegistry:
    """Owns a fleet of keyed :class:`EstimationSession`\\ s under one byte pool.

    Parameters
    ----------
    max_sessions:
        Most sessions live at once (``None`` = unbounded by count); admitting
        one more evicts the longest-idle member first.  Default
        ``DEFAULT_REGISTRY_MAX_SESSIONS``.
    max_total_bytes:
        Global cache-byte pool shared by the whole fleet (``None`` =
        unbounded).  Divided evenly among members and rebalanced on every
        membership change.  Default ``DEFAULT_REGISTRY_CACHE_BYTES``.
    min_session_bytes:
        Smallest useful per-session share of the pool; rather than splitting
        thinner, the registry evicts.  Under the traffic-weighted policy
        this is also the *floor* every member is guaranteed regardless of
        how cold it is.  Default ``DEFAULT_REGISTRY_MIN_SESSION_BYTES``.
    rebalance_policy:
        ``"traffic"`` (default) gives every member the
        ``min_session_bytes`` floor and divides the rest of the pool in
        proportion to each session's serving traffic (cache-request
        roll-ups); a zero-traffic fleet degenerates to the even split.
        ``"even"`` always splits the pool as ``pool / N``.
    session_factory:
        Callable with :class:`EstimationSession`'s signature used to
        construct members (injectable for tests).
    warm_cache:
        Cross-process warm tier shared by *every* member session
        (:class:`~repro.data.store.warm_cache.WarmCacheTier`): a tier
        instance, a directory path, ``None``/``True`` to consult
        ``REPRO_WARM_CACHE_DIR`` / ``DEFAULT_WARM_CACHE_DIR`` (disabled
        when unset), or ``False`` to force cold construction.  When a tier
        resolves it is injected into every ``get_or_create`` construction
        (explicit ``warm_cache`` in ``session_kwargs`` wins) and its
        counters are reported as :attr:`RegistryStats.warm`.
    """

    def __init__(
        self,
        *,
        max_sessions: int | None = DEFAULT_REGISTRY_MAX_SESSIONS,
        max_total_bytes: int | None = DEFAULT_REGISTRY_CACHE_BYTES,
        min_session_bytes: int = DEFAULT_REGISTRY_MIN_SESSION_BYTES,
        rebalance_policy: str = "traffic",
        session_factory: Callable[..., EstimationSession] = EstimationSession,
        warm_cache: WarmCacheTier | str | os.PathLike[str] | bool | None = None,
    ):
        if rebalance_policy not in REBALANCE_POLICIES:
            raise BlinkMLError(
                f"registry: unknown rebalance_policy {rebalance_policy!r}; "
                f"expected one of {REBALANCE_POLICIES}"
            )
        if max_sessions is not None and max_sessions < 1:
            raise BlinkMLError("registry: max_sessions must be at least 1 or None")
        if max_total_bytes is not None and max_total_bytes < 1:
            raise BlinkMLError("registry: max_total_bytes must be at least 1 or None")
        if min_session_bytes < 1:
            raise BlinkMLError("registry: min_session_bytes must be at least 1")
        if max_total_bytes is not None and max_total_bytes < min_session_bytes:
            raise BlinkMLError(
                "registry: max_total_bytes must be at least min_session_bytes "
                f"({max_total_bytes} < {min_session_bytes})"
            )
        self.max_sessions = max_sessions
        self.max_total_bytes = max_total_bytes
        self.min_session_bytes = int(min_session_bytes)
        self.rebalance_policy = rebalance_policy
        self._session_factory = session_factory
        # Resolved once: every member session shares this one tier (one
        # writer thread, one stats surface) instead of each resolving its
        # own.  None when neither argument nor environment enables it.  An
        # explicit ``False`` is remembered separately: member sessions must
        # be forced cold too, or they would re-resolve the environment.
        self._warm_disabled = warm_cache is False
        self._warm_cache = resolve_warm_cache(warm_cache)
        self._lock = threading.RLock()
        self._members: dict[object, _Member] = {}  # guarded-by: _lock
        self._inflight: dict[object, _InFlight] = {}  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._invalidations = 0  # guarded-by: _lock
        self._fingerprint_invalidations = 0  # guarded-by: _lock
        self._refreshes = 0  # guarded-by: _lock
        # Plain atomic reference swap; stats() reads it lock-free by design
        # (providers may take their own locks), so it is intentionally not
        # in the guarded-by table above.
        self._serving_stats_provider = None

    # ------------------------------------------------------------------
    # Fleet capacity
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int | None:
        """Most members the configured bounds admit (``None`` = unbounded).

        The byte pool bounds the count too: each member must receive at
        least ``min_session_bytes`` of the pool.
        """
        by_count = self.max_sessions
        if self.max_total_bytes is None:
            return by_count
        by_bytes = max(1, self.max_total_bytes // self.min_session_bytes)
        return by_bytes if by_count is None else min(by_count, by_bytes)

    def session_budget_bytes(self, n_sessions: int | None = None) -> int | None:
        """The even-split baseline share of the pool at the given fleet size.

        This is what a zero-traffic fleet (or ``rebalance_policy="even"``)
        assigns each member; under the traffic-weighted policy actual
        shares vary around it (floor ``min_session_bytes``, surplus
        proportional to traffic) — see :meth:`session_shares`.
        """
        if self.max_total_bytes is None:
            return None
        with self._lock:
            count = len(self._members) if n_sessions is None else n_sessions
        return self.max_total_bytes // max(1, count)

    def session_shares(self) -> dict[object, int | None]:
        """The byte share the last rebalance assigned each live member."""
        with self._lock:
            return {key: member.share for key, member in self._members.items()}

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(
        train: Dataset | ShardedDataset, holdout: Dataset | ShardedDataset
    ) -> str:
        """Joint content digest of the data a session is built from.

        The sorted-difference vectors a session caches depend on the
        holdout as much as on the training set, so both are fingerprinted.
        Sharded members answer from their manifest digest (no row I/O, no
        materialisation); the digest is defined to equal the materialised
        dataset's, so mixing storage tiers cannot alias distinct data.
        """
        return f"{train.content_digest()}:{holdout.content_digest()}"

    # ------------------------------------------------------------------
    # The serving entry point
    # ------------------------------------------------------------------
    def get_or_create(
        self,
        key: object,
        spec: ModelClassSpec,
        train: Dataset | ShardedDataset,
        holdout: Dataset | ShardedDataset,
        **session_kwargs: Any,
    ) -> EstimationSession:
        """Return the live session for ``key``, constructing it if needed.

        A live session is served only when the offered ``train``/``holdout``
        data still matches the content fingerprint it was built from; a
        mismatch discards the stale session and constructs a fresh one (so
        a changed training set can never be served stale cached answers).
        Construction is single-flight: concurrent calls for the same
        missing key train m_0 once.  ``session_kwargs`` are forwarded to
        the session factory on construction (pass ``rng=<seed>`` for
        reproducible fleets) and ignored on a hit.
        """
        fingerprint = self.fingerprint(train, holdout)
        while True:
            with self._lock:
                member = self._members.get(key)
                if member is not None:
                    if member.fingerprint == fingerprint:
                        self._hits += 1
                        member.session._touch()
                        return member.session
                    # Fingerprint mismatch: the data changed under the key.
                    del self._members[key]
                    self._fingerprint_invalidations += 1
                    self._rebalance_locked()
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                break
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            # Loop rather than trusting the leader's session blindly: this
            # caller's datasets may differ from the leader's, and the member
            # may already have been evicted/invalidated again.  The re-check
            # serves it only on a fingerprint match.

        try:
            if self._warm_cache is not None:
                # Injected only when a tier actually resolved, so factories
                # without the parameter (injected test fakes) keep working
                # in warm-disabled runs; an explicit caller value wins.
                session_kwargs.setdefault("warm_cache", self._warm_cache)
            elif self._warm_disabled:
                # Registry-level opt-out beats the environment for members.
                session_kwargs.setdefault("warm_cache", False)
            session = self._session_factory(spec, train, holdout, **session_kwargs)
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                del self._inflight[key]
            flight.event.set()
            raise
        # Unlike LRUCache.get_or_compute, followers never consume
        # flight.value: they loop back and re-resolve through _members so
        # the fingerprint is re-checked against *their* datasets.
        try:
            with self._lock:
                del self._inflight[key]
                self._misses += 1
                self._members[key] = _Member(session, fingerprint)
                self._evict_to_capacity_locked(protect=key)
                self._rebalance_locked()
        finally:
            flight.event.set()
        return session

    # ------------------------------------------------------------------
    # Lookup / membership
    # ------------------------------------------------------------------
    def get(self, key: object) -> EstimationSession | None:
        """The live session for ``key`` (no construction, no fingerprint check)."""
        with self._lock:
            member = self._members.get(key)
            return None if member is None else member.session

    def keys(self) -> list[object]:
        with self._lock:
            return list(self._members.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._members

    # ------------------------------------------------------------------
    # Invalidation and eviction
    # ------------------------------------------------------------------
    def invalidate(self, key: object) -> bool:
        """Drop ``key``'s session; True if one was live.

        The next ``get_or_create`` for the key constructs afresh.  Byte
        shares of the remaining members grow to fill the freed pool.
        """
        with self._lock:
            member = self._members.pop(key, None)
            if member is None:
                return False
            self._invalidations += 1
            self._rebalance_locked()
            return True

    def clear(self) -> None:
        """Drop every session (counted as invalidations, not evictions)."""
        with self._lock:
            self._invalidations += len(self._members)
            self._members.clear()

    def refresh(self, key: object) -> SessionRefresh | None:
        """Fold appended data into ``key``'s live session *in place*.

        The incremental alternative to the fingerprint-mismatch path of
        :meth:`get_or_create`: where a mismatch discards the session and
        retrains m_0 from scratch, ``refresh`` asks the session to adopt
        the grown store via :meth:`EstimationSession.refresh` — O(new
        shards) when the session streams statistics from a sidecar-indexed
        store — and then re-fingerprints the member from the reloaded
        manifests, so the *next* ``get_or_create`` offering the grown data
        is a hit instead of a teardown.  Returns the session's
        :class:`~repro.core.session.SessionRefresh` report, or ``None``
        when no session is live under ``key``.  The (potentially slow)
        session refresh runs outside the registry lock.
        """
        with self._lock:
            member = self._members.get(key)
        if member is None:
            return None
        outcome = member.session.refresh()
        with self._lock:
            # Re-resolve: the member may have been evicted while we worked.
            current = self._members.get(key)
            if current is member:
                member.fingerprint = self.fingerprint(
                    member.session.train_data, member.session.holdout
                )
                self._refreshes += 1
        return outcome

    def rebalance(self, min_drift: float = 0.0) -> bool:
        """Recompute every member's byte share from current traffic.

        Rebalancing otherwise happens only on membership changes; a
        serving loop (the :class:`~repro.serving.service.CoalescingService`
        housekeeping thread, or any periodic task) calls this so shares
        track traffic shifts inside a stable fleet.

        ``min_drift`` adds hysteresis for periodic callers: when every
        member already holds a share and the largest relative share change
        the recomputation proposes is at most ``min_drift`` (e.g. ``0.1``
        = 10 %), the proposal is discarded and no cache cap moves —
        avoiding eviction churn from re-capping caches over noise-level
        traffic shifts.  The traffic measurement window is consumed either
        way (the decayed averages stay current), so skipped rounds do not
        distort the next applied one.  Returns whether new shares were
        applied.
        """
        with self._lock:
            return self._rebalance_locked(min_drift=min_drift)

    def evict_idle(self, idle_seconds: float) -> int:
        """Evict every member idle for longer than ``idle_seconds``; count."""
        now = time.monotonic()
        with self._lock:
            stale = [
                key
                for key, member in self._members.items()
                if now - member.session.last_used_at > idle_seconds
            ]
            for key in stale:
                del self._members[key]
                self._evictions += 1
            if stale:
                if obs_enabled():
                    _EVICTION_EVENTS.inc(len(stale), reason="idle")
                self._rebalance_locked()
            return len(stale)

    def _evict_to_capacity_locked(self, protect: object) -> None:  # repro-lint: holds=_lock
        """Evict longest-idle members until within capacity (lock held).

        ``protect`` (the key just admitted) is never the victim, so a
        fleet at capacity always turns over its idlest member instead.
        """
        capacity = self.capacity
        if capacity is None:
            return
        while len(self._members) > max(1, capacity):
            victim = min(
                (key for key in self._members if key != protect),
                key=lambda key: self._members[key].session.last_used_at,
                default=None,
            )
            if victim is None:
                return
            del self._members[victim]
            self._evictions += 1
            if obs_enabled():
                _EVICTION_EVENTS.inc(1, reason="capacity")

    def _rebalance_locked(self, min_drift: float = 0.0) -> bool:  # repro-lint: holds=_lock
        """Re-split the byte pool across the current members (lock held).

        ``"even"`` assigns every member ``pool // N``.  ``"traffic"``
        assigns every member a ``min_session_bytes`` floor (capacity
        guarantees N · floor <= pool) and divides the surplus in proportion
        to ``1 + traffic_ema``, an exponentially decayed average of the
        member's cache-request deltas between rebalances (see ``_Member``
        for why neither lifetime totals nor raw last-window deltas work).
        The ``+1`` keeps a freshly admitted session from starting at the
        bare floor while established members are warm, and makes a fleet
        with no traffic history degenerate to the even split.  Under both
        policies the sum of shares never exceeds the pool, so the fleet
        invariant ``stats().bytes <= max_total_bytes`` holds structurally.

        ``min_drift`` (see :meth:`rebalance`) discards the proposal — after
        the traffic window has been consumed — when every member has a
        share and no proposed share moves by more than that relative
        fraction.  Membership-change callers pass 0, so admissions,
        evictions and invalidations always apply.  Returns whether shares
        were applied.
        """
        if self.max_total_bytes is None or not self._members:
            return False
        members = list(self._members.values())
        if self.rebalance_policy == "even":
            share = max(1, self.max_total_bytes // len(members))
            shares = [share] * len(members)
        else:
            floor = min(self.min_session_bytes, self.max_total_bytes // len(members))
            surplus = self.max_total_bytes - floor * len(members)
            weights = []
            for member in members:
                current = member.traffic()
                # max() guards caches whose counters were externally reset.
                delta = max(0, current - member.rebalanced_traffic)
                member.rebalanced_traffic = current
                member.traffic_ema = member.traffic_ema // 2 + delta
                weights.append(1 + member.traffic_ema)
            total_weight = sum(weights)
            shares = [
                max(1, floor + surplus * weight // total_weight)
                for weight in weights
            ]
        if min_drift > 0 and all(member.share is not None for member in members):
            drift = max(
                abs(share - member.share) / max(member.share, 1)
                for member, share in zip(members, shares)
            )
            if drift <= min_drift:
                return False
        for member, share in zip(members, shares):
            member.share = share
            member.session.resize_cache_budget(share)
        if obs_enabled():
            _REBALANCE_EVENTS.inc(1, policy=self.rebalance_policy)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def warm_cache(self) -> WarmCacheTier | None:
        """The fleet-shared cross-process warm tier (``None`` = disabled)."""
        return self._warm_cache

    def attach_serving_stats(self, provider: Callable[[], object] | None) -> None:
        """Roll a serving front-end's stats snapshot into :meth:`stats`.

        ``provider`` is a zero-argument callable returning any snapshot
        object (the :class:`~repro.serving.service.CoalescingService`
        attaches its aggregated
        :class:`~repro.serving.batcher.BatcherStats`); every later
        ``stats()`` call invokes it *outside* the registry lock — providers
        may take their own locks freely — and reports the result as
        :attr:`RegistryStats.serving`.  Pass ``None`` to detach.  Kept as a
        callback so the core registry never imports the serving package.
        """
        if provider is not None and not callable(provider):
            raise BlinkMLError("registry: serving stats provider must be callable")
        self._serving_stats_provider = provider

    def stats(self) -> RegistryStats:
        """A snapshot of fleet occupancy, byte usage and counters."""
        provider = self._serving_stats_provider
        serving = provider() if provider is not None else None
        with self._lock:
            rows = []
            for key, member in self._members.items():
                # One cache_stats() roll-up per member: traffic is derived
                # from the same snapshot the row reports, so the two can
                # never disagree within a SessionInfo.
                cache_stats = member.session.cache_stats()
                rows.append(
                    SessionInfo(
                        key=key,
                        fingerprint=member.fingerprint,
                        bytes=sum(entry.bytes for entry in cache_stats.values()),
                        idle_seconds=member.session.idle_seconds,
                        cache_stats=cache_stats,
                        budget_bytes=member.share,
                        traffic=_cache_traffic(cache_stats),
                    )
                )
            per_session = tuple(rows)
            return RegistryStats(
                sessions=len(self._members),
                max_sessions=self.max_sessions,
                bytes=sum(info.bytes for info in per_session),
                max_total_bytes=self.max_total_bytes,
                session_budget_bytes=self.session_budget_bytes(len(self._members)),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                fingerprint_invalidations=self._fingerprint_invalidations,
                per_session=per_session,
                refreshes=self._refreshes,
                serving=serving,
                warm=(
                    None
                    if self._warm_cache is None
                    else self._warm_cache.stats()
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats()
        return (
            f"SessionRegistry(sessions={snapshot.sessions}/{self.max_sessions}, "
            f"bytes={snapshot.bytes}/{self.max_total_bytes}, "
            f"hits={snapshot.hits}, misses={snapshot.misses}, "
            f"evictions={snapshot.evictions})"
        )
