"""Cross-session serving registry with a global byte budget.

One :class:`~repro.core.session.EstimationSession` serves every (ε, δ)
contract against one (model, dataset) pair; a serving *fleet* holds many
pairs live at once.  PR 3 bounded the per-session caches, but a fleet of
sessions still shared nothing: no collective memory bound, no invalidation
when training data changes, and every caller constructing sessions by hand.
:class:`SessionRegistry` is the tier that turns the session layer into a
server:

* **keyed ownership** — :meth:`SessionRegistry.get_or_create` maps an
  application key (e.g. ``"fraud-lr/eu"``) to a live session, constructing
  it on first use and serving the same instance afterwards;
* **single-flight construction** — concurrent ``get_or_create`` calls for
  the same missing key train m_0 exactly once: one thread constructs, the
  others block on the result (the same protocol as
  :meth:`repro.core.caching.LRUCache.get_or_compute`);
* **global byte budget** — the registry owns a byte pool
  (``max_total_bytes``) shared by every member session.  The pool is
  divided evenly and each session's cache caps are rebalanced (via
  :meth:`EstimationSession.resize_cache_budget`) whenever the fleet grows
  or shrinks, so the sum of cache bytes across the fleet stays within the
  pool no matter how many pairs are live;
* **LRU eviction of whole idle sessions** — when admitting a session would
  exceed ``max_sessions``, or would split the pool thinner than
  ``min_session_bytes`` per member, the registry evicts the session that
  has been idle longest (by :attr:`EstimationSession.last_used_at`, which
  every served request refreshes — including requests made directly on a
  session handle, not through the registry);
* **invalidation** — :meth:`SessionRegistry.invalidate` drops a key
  explicitly, and every ``get_or_create`` checks a content fingerprint of
  the offered training/holdout data (:meth:`repro.data.dataset.Dataset.content_digest`)
  against the fingerprint the live session was built from.  A changed
  dataset therefore *always* misses: the stale session is discarded and a
  fresh one is constructed, so stale sorted-difference vectors can never be
  served.

Eviction and invalidation only drop the registry's reference: a caller
still holding the session handle can keep using it (its caches keep their
last caps but no longer count against the pool).  Evicted pairs recompute
bitwise-identically on their next ``get_or_create`` when constructed with
the same seed, because the Monte-Carlo vectors are determined by the cached
base draws, not by request order.

Byte accounting matches the session caches' (approximate ``sizeof``); the
one structural exception is inherited from :class:`~repro.core.caching.LRUCache` —
a single cached value larger than a session's whole share is still stored.
With the default k = 128 parameter samples a difference vector is ~1 KB,
orders of magnitude below any sane share, so the pool bound is tight in
practice.

Thread safety: one registry lock guards the fleet map, counters and
rebalancing; session construction runs *outside* it (single-flight), and
member sessions remain individually thread-safe as before, so worker
threads may mix ``get_or_create`` with direct ``session.answer()`` calls
freely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.config import (
    DEFAULT_REGISTRY_CACHE_BYTES,
    DEFAULT_REGISTRY_MAX_SESSIONS,
    DEFAULT_REGISTRY_MIN_SESSION_BYTES,
)
from repro.core.caching import CacheStats, _InFlight
from repro.core.session import EstimationSession
from repro.data.dataset import Dataset
from repro.exceptions import BlinkMLError
from repro.models.base import ModelClassSpec


@dataclass(frozen=True)
class SessionInfo:
    """Per-session row of a :class:`RegistryStats` snapshot."""

    key: object
    fingerprint: str
    bytes: int
    idle_seconds: float
    cache_stats: dict[str, CacheStats]


@dataclass(frozen=True)
class RegistryStats:
    """Immutable snapshot of the fleet: occupancy, budget, counters.

    ``bytes`` sums the member sessions' cache bytes — the quantity the
    global budget bounds.  ``hits`` counts ``get_or_create`` calls served
    by a live fingerprint-matching session (including single-flight
    followers); ``misses`` counts session constructions.  ``evictions``
    counts whole sessions evicted for capacity/budget/idleness;
    ``invalidations`` explicit :meth:`SessionRegistry.invalidate` drops;
    ``fingerprint_invalidations`` sessions discarded because the offered
    dataset's content digest no longer matched.
    """

    sessions: int
    max_sessions: int | None
    bytes: int
    max_total_bytes: int | None
    session_budget_bytes: int | None
    hits: int
    misses: int
    evictions: int
    invalidations: int
    fingerprint_invalidations: int
    per_session: tuple[SessionInfo, ...]

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get_or_create`` calls served by a live session."""
        return self.hits / self.requests if self.requests else 0.0

    def cache_totals(self) -> dict[str, CacheStats]:
        """Fleet-wide roll-up of the member sessions' cache counters.

        Returns one aggregated :class:`~repro.core.caching.CacheStats` per
        cache name ("diff", "model", "size"), summing hits/misses/evictions/
        entries/bytes across every live session (bounds are reported as the
        per-cache sums too, ``None`` if any member is unbounded).
        """
        totals: dict[str, CacheStats] = {}
        for info in self.per_session:
            for name, stats in info.cache_stats.items():
                base = totals.get(name)
                if base is None:
                    totals[name] = stats
                    continue

                def _add(a: int | None, b: int | None) -> int | None:
                    return None if a is None or b is None else a + b

                totals[name] = CacheStats(
                    name=name,
                    hits=base.hits + stats.hits,
                    misses=base.misses + stats.misses,
                    evictions=base.evictions + stats.evictions,
                    entries=base.entries + stats.entries,
                    bytes=base.bytes + stats.bytes,
                    max_entries=_add(base.max_entries, stats.max_entries),
                    max_bytes=_add(base.max_bytes, stats.max_bytes),
                )
        return totals


class _Member:
    """A live fleet member: the session plus the fingerprint it was built from."""

    __slots__ = ("session", "fingerprint")

    def __init__(self, session: EstimationSession, fingerprint: str) -> None:
        self.session = session
        self.fingerprint = fingerprint


class SessionRegistry:
    """Owns a fleet of keyed :class:`EstimationSession`\\ s under one byte pool.

    Parameters
    ----------
    max_sessions:
        Most sessions live at once (``None`` = unbounded by count); admitting
        one more evicts the longest-idle member first.  Default
        ``DEFAULT_REGISTRY_MAX_SESSIONS``.
    max_total_bytes:
        Global cache-byte pool shared by the whole fleet (``None`` =
        unbounded).  Divided evenly among members and rebalanced on every
        membership change.  Default ``DEFAULT_REGISTRY_CACHE_BYTES``.
    min_session_bytes:
        Smallest useful per-session share of the pool; rather than splitting
        thinner, the registry evicts.  Default
        ``DEFAULT_REGISTRY_MIN_SESSION_BYTES``.
    session_factory:
        Callable with :class:`EstimationSession`'s signature used to
        construct members (injectable for tests).
    """

    def __init__(
        self,
        *,
        max_sessions: int | None = DEFAULT_REGISTRY_MAX_SESSIONS,
        max_total_bytes: int | None = DEFAULT_REGISTRY_CACHE_BYTES,
        min_session_bytes: int = DEFAULT_REGISTRY_MIN_SESSION_BYTES,
        session_factory=EstimationSession,
    ):
        if max_sessions is not None and max_sessions < 1:
            raise BlinkMLError("registry: max_sessions must be at least 1 or None")
        if max_total_bytes is not None and max_total_bytes < 1:
            raise BlinkMLError("registry: max_total_bytes must be at least 1 or None")
        if min_session_bytes < 1:
            raise BlinkMLError("registry: min_session_bytes must be at least 1")
        if max_total_bytes is not None and max_total_bytes < min_session_bytes:
            raise BlinkMLError(
                "registry: max_total_bytes must be at least min_session_bytes "
                f"({max_total_bytes} < {min_session_bytes})"
            )
        self.max_sessions = max_sessions
        self.max_total_bytes = max_total_bytes
        self.min_session_bytes = int(min_session_bytes)
        self._session_factory = session_factory
        self._lock = threading.RLock()
        self._members: dict[object, _Member] = {}
        self._inflight: dict[object, _InFlight] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._fingerprint_invalidations = 0

    # ------------------------------------------------------------------
    # Fleet capacity
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int | None:
        """Most members the configured bounds admit (``None`` = unbounded).

        The byte pool bounds the count too: each member must receive at
        least ``min_session_bytes`` of the pool.
        """
        by_count = self.max_sessions
        if self.max_total_bytes is None:
            return by_count
        by_bytes = max(1, self.max_total_bytes // self.min_session_bytes)
        return by_bytes if by_count is None else min(by_count, by_bytes)

    def session_budget_bytes(self, n_sessions: int | None = None) -> int | None:
        """Each member's share of the pool at the given fleet size."""
        if self.max_total_bytes is None:
            return None
        with self._lock:
            count = len(self._members) if n_sessions is None else n_sessions
        return self.max_total_bytes // max(1, count)

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(train: Dataset, holdout: Dataset) -> str:
        """Joint content digest of the data a session is built from.

        The sorted-difference vectors a session caches depend on the
        holdout as much as on the training set, so both are fingerprinted.
        """
        return f"{train.content_digest()}:{holdout.content_digest()}"

    # ------------------------------------------------------------------
    # The serving entry point
    # ------------------------------------------------------------------
    def get_or_create(
        self,
        key: object,
        spec: ModelClassSpec,
        train: Dataset,
        holdout: Dataset,
        **session_kwargs,
    ) -> EstimationSession:
        """Return the live session for ``key``, constructing it if needed.

        A live session is served only when the offered ``train``/``holdout``
        data still matches the content fingerprint it was built from; a
        mismatch discards the stale session and constructs a fresh one (so
        a changed training set can never be served stale cached answers).
        Construction is single-flight: concurrent calls for the same
        missing key train m_0 once.  ``session_kwargs`` are forwarded to
        the session factory on construction (pass ``rng=<seed>`` for
        reproducible fleets) and ignored on a hit.
        """
        fingerprint = self.fingerprint(train, holdout)
        while True:
            with self._lock:
                member = self._members.get(key)
                if member is not None:
                    if member.fingerprint == fingerprint:
                        self._hits += 1
                        member.session._touch()
                        return member.session
                    # Fingerprint mismatch: the data changed under the key.
                    del self._members[key]
                    self._fingerprint_invalidations += 1
                    self._rebalance_locked()
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                break
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            # Loop rather than trusting the leader's session blindly: this
            # caller's datasets may differ from the leader's, and the member
            # may already have been evicted/invalidated again.  The re-check
            # serves it only on a fingerprint match.

        try:
            session = self._session_factory(spec, train, holdout, **session_kwargs)
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                del self._inflight[key]
            flight.event.set()
            raise
        # Unlike LRUCache.get_or_compute, followers never consume
        # flight.value: they loop back and re-resolve through _members so
        # the fingerprint is re-checked against *their* datasets.
        try:
            with self._lock:
                del self._inflight[key]
                self._misses += 1
                self._members[key] = _Member(session, fingerprint)
                self._evict_to_capacity_locked(protect=key)
                self._rebalance_locked()
        finally:
            flight.event.set()
        return session

    # ------------------------------------------------------------------
    # Lookup / membership
    # ------------------------------------------------------------------
    def get(self, key: object) -> EstimationSession | None:
        """The live session for ``key`` (no construction, no fingerprint check)."""
        with self._lock:
            member = self._members.get(key)
            return None if member is None else member.session

    def keys(self) -> list[object]:
        with self._lock:
            return list(self._members.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._members

    # ------------------------------------------------------------------
    # Invalidation and eviction
    # ------------------------------------------------------------------
    def invalidate(self, key: object) -> bool:
        """Drop ``key``'s session; True if one was live.

        The next ``get_or_create`` for the key constructs afresh.  Byte
        shares of the remaining members grow to fill the freed pool.
        """
        with self._lock:
            member = self._members.pop(key, None)
            if member is None:
                return False
            self._invalidations += 1
            self._rebalance_locked()
            return True

    def clear(self) -> None:
        """Drop every session (counted as invalidations, not evictions)."""
        with self._lock:
            self._invalidations += len(self._members)
            self._members.clear()

    def evict_idle(self, idle_seconds: float) -> int:
        """Evict every member idle for longer than ``idle_seconds``; count."""
        now = time.monotonic()
        with self._lock:
            stale = [
                key
                for key, member in self._members.items()
                if now - member.session.last_used_at > idle_seconds
            ]
            for key in stale:
                del self._members[key]
                self._evictions += 1
            if stale:
                self._rebalance_locked()
            return len(stale)

    def _evict_to_capacity_locked(self, protect: object) -> None:
        """Evict longest-idle members until within capacity (lock held).

        ``protect`` (the key just admitted) is never the victim, so a
        fleet at capacity always turns over its idlest member instead.
        """
        capacity = self.capacity
        if capacity is None:
            return
        while len(self._members) > max(1, capacity):
            victim = min(
                (key for key in self._members if key != protect),
                key=lambda key: self._members[key].session.last_used_at,
                default=None,
            )
            if victim is None:
                return
            del self._members[victim]
            self._evictions += 1

    def _rebalance_locked(self) -> None:
        """Re-split the byte pool across the current members (lock held).

        Each member's session re-caps its caches to an even share; the sum
        of shares never exceeds the pool, so the fleet invariant
        ``stats().bytes <= max_total_bytes`` holds structurally.
        """
        if self.max_total_bytes is None or not self._members:
            return
        share = self.max_total_bytes // len(self._members)
        for member in self._members.values():
            member.session.resize_cache_budget(max(1, share))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> RegistryStats:
        """A snapshot of fleet occupancy, byte usage and counters."""
        with self._lock:
            per_session = tuple(
                SessionInfo(
                    key=key,
                    fingerprint=member.fingerprint,
                    bytes=member.session.cache_bytes(),
                    idle_seconds=member.session.idle_seconds,
                    cache_stats=member.session.cache_stats(),
                )
                for key, member in self._members.items()
            )
            return RegistryStats(
                sessions=len(self._members),
                max_sessions=self.max_sessions,
                bytes=sum(info.bytes for info in per_session),
                max_total_bytes=self.max_total_bytes,
                session_budget_bytes=self.session_budget_bytes(len(self._members)),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                fingerprint_invalidations=self._fingerprint_invalidations,
                per_session=per_session,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats()
        return (
            f"SessionRegistry(sessions={snapshot.sessions}/{self.max_sessions}, "
            f"bytes={snapshot.bytes}/{self.max_total_bytes}, "
            f"hits={snapshot.hits}, misses={snapshot.misses}, "
            f"evictions={snapshot.evictions})"
        )
