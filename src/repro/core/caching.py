"""Thread-safe bounded caches for the contract-serving layer.

PR 2's :class:`~repro.core.session.EstimationSession` made multi-contract
serving cheap by caching sorted difference vectors, trained models and
sample-size searches — but the caches were plain dicts: unbounded, unsafe
under concurrent ``answer()`` calls, and unable to report hit rates.  This
module is the shared substrate every session cache now sits on:

* :class:`LRUCache` — least-recently-used eviction bounded by **entries**
  and/or **approximate bytes**, an ``RLock`` around every mutation, and
  per-cache :class:`CacheStats` hit/miss/eviction counters;
* :meth:`LRUCache.get_or_compute` — the serving primitive: returns
  ``(value, hit)`` so callers learn the hit/miss fact *directly* (never by
  diffing shared counters, which misreports under interleaving), and
  guarantees **single-flight** computation — when two threads ask for the
  same missing key, exactly one runs the compute function and the other
  blocks on the result, so the k streamed GEMMs behind a sorted-difference
  vector can never run twice for one key;
* :meth:`LRUCache.resize` — the cross-session registry
  (:mod:`repro.core.registry`) rebalances each member session's byte caps
  from a global pool as the fleet grows and shrinks, so bounds are mutable
  at runtime: shrinking evicts down to the new bounds immediately;
* ``on_evict`` — an optional callback fired (outside the lock) for every
  entry the cache evicts to stay within bounds, so owners can account for
  released bytes.

Locking discipline (see ``docs/architecture.md``): the cache lock is never
held while a compute function runs.  A miss registers an in-flight marker
under the lock, releases it, computes, then re-acquires the lock to publish
the value.  Compute functions may therefore take other locks (the parameter
sampler's, another cache's) without deadlock risk, as long as no cycle of
``get_or_compute`` calls exists between caches — the session's three caches
never compute through one another.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any, Protocol

import numpy as np

from repro.exceptions import BlinkMLError


class WarmTier(Protocol):
    """A second, slower cache tier probed beneath :meth:`LRUCache.get_or_compute`.

    The protocol the cross-process warm cache adapters implement (see
    :mod:`repro.data.store.warm_cache`): ``load`` returns the value for a
    cache key or ``None`` (a warm miss — including any verification
    failure; the tier must never surface an unverified value), ``store``
    publishes a freshly computed value (may be asynchronous / best-effort).
    Both are called outside the cache lock, on the computing thread, so
    implementations may take their own locks and do I/O freely.
    """

    def load(self, key: Hashable) -> Any | None: ...  # pragma: no cover - protocol

    def store(self, key: Hashable, value: Any) -> None: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of one cache's counters and occupancy.

    ``hits`` counts every request served without running a compute
    function, including single-flight followers that waited on another
    thread's in-progress computation (they performed zero work themselves).
    ``bytes`` is the approximate sum of the stored values' sizes as
    reported by the cache's ``sizeof`` function.
    """

    name: str
    hits: int
    misses: int
    evictions: int
    entries: int
    bytes: int
    max_entries: int | None
    max_bytes: int | None

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from cache (0.0 when never used)."""
        return self.hits / self.requests if self.requests else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold two snapshots of same-named caches into one roll-up.

        Counters and occupancy sum; bounds sum too, with ``None``
        (unbounded) absorbing — any unbounded member makes the roll-up
        unbounded.  Associative and commutative up to the kept ``name``,
        so fleet-wide totals (:meth:`RegistryStats.cache_totals
        <repro.core.registry.RegistryStats.cache_totals>`) can fold
        members in any order.
        """
        if other.name != self.name:
            raise BlinkMLError(
                f"cannot merge cache stats {self.name!r} with {other.name!r}"
            )

        def _add(a: int | None, b: int | None) -> int | None:
            return None if a is None or b is None else a + b

        return CacheStats(
            name=self.name,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            entries=self.entries + other.entries,
            bytes=self.bytes + other.bytes,
            max_entries=_add(self.max_entries, other.max_entries),
            max_bytes=_add(self.max_bytes, other.max_bytes),
        )


def default_sizeof(value: Any) -> int:
    """Approximate in-memory size of a cached value in bytes.

    NumPy arrays report their buffer size; objects exposing ``nbytes``
    (e.g. array wrappers) are trusted; everything else falls back to
    ``sys.getsizeof`` with a small constant when even that is unavailable.
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    try:
        return int(sys.getsizeof(value))
    except TypeError:
        return 64


class _InFlight:
    """Marker for a key whose value is being computed by some thread."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class _Unset:
    """Sentinel distinguishing "leave unchanged" from ``None`` (unbounded)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unset>"


_UNSET = _Unset()


class LRUCache:
    """A thread-safe LRU cache bounded by entry count and approximate bytes.

    Parameters
    ----------
    name:
        Label used in stats snapshots and error messages.
    max_entries:
        Maximum number of stored entries; ``None`` means unbounded.
    max_bytes:
        Approximate byte budget across stored values; ``None`` means
        unbounded.  A single value larger than the whole budget is still
        stored (evicting everything else) so a hot oversized entry is not
        recomputed forever; the budget is honoured whenever at least two
        entries are present.
    sizeof:
        Maps a value to its approximate size in bytes
        (:func:`default_sizeof` when omitted).
    on_evict:
        Optional ``callback(key, value)`` invoked for every entry evicted to
        satisfy the bounds (inserts and :meth:`resize` shrinks).  Called
        *outside* the cache lock, so it may touch other locks freely; it is
        not called for :meth:`clear` or same-key replacement.
    warm_tier:
        Optional second tier (:class:`WarmTier`) probed by
        :meth:`get_or_compute` between an in-memory miss and the compute
        function: miss → ``warm_tier.load(key)`` → compute → write-behind
        ``warm_tier.store(key, value)``.  A warm load publishes into this
        cache and reports ``hit=True`` (the call ran no compute), exactly
        like a single-flight follower; both hooks run outside the cache
        lock on the computing thread.  Plain :meth:`get`/:meth:`put` never
        touch the warm tier.

    Both bounds are enforced on every insert by evicting least-recently-used
    entries; ``get``/``get_or_compute`` refresh recency.  All operations are
    serialised by an internal ``RLock``, but compute functions passed to
    :meth:`get_or_compute` and ``on_evict`` callbacks run *outside* the lock
    (see the module docstring for the single-flight protocol).
    """

    def __init__(
        self,
        name: str = "cache",
        max_entries: int | None = None,
        max_bytes: int | None = None,
        sizeof: Callable[[Any], int] | None = None,
        on_evict: Callable[[Hashable, Any], None] | None = None,
        warm_tier: WarmTier | None = None,
    ):
        self._validate_bound("max_entries", max_entries, name=name)
        self._validate_bound("max_bytes", max_bytes, name=name)
        self.name = name
        self.max_entries = max_entries  # guarded-by: _lock
        self.max_bytes = max_bytes  # guarded-by: _lock
        self._sizeof = sizeof or default_sizeof
        self._on_evict = on_evict
        self._warm_tier = warm_tier
        self._lock = threading.RLock()
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()  # guarded-by: _lock
        self._bytes = 0  # guarded-by: _lock
        self._hits = 0  # guarded-by: _lock
        self._misses = 0  # guarded-by: _lock
        self._evictions = 0  # guarded-by: _lock
        self._inflight: dict[Hashable, _InFlight] = {}  # guarded-by: _lock

    # ------------------------------------------------------------------
    # Plain mapping operations
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing recency) or ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or replace) ``key`` and evict until within bounds."""
        with self._lock:
            evicted = self._store(key, value)
        self._fire_evictions(evicted)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does **not** count as a hit/miss or touch recency."""
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        """The cached keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries.keys())

    def clear(self) -> None:
        """Drop every entry (counters are preserved; not counted as evictions)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    # ------------------------------------------------------------------
    # Single-flight compute
    # ------------------------------------------------------------------
    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> tuple[Any, bool]:
        """Return ``(value, hit)``; run ``compute`` at most once per miss.

        ``hit`` is True when this call did not itself run ``compute`` — a
        cached entry or a wait on another thread's in-progress computation.
        Callers needing the hit/miss fact (e.g. ``SessionAnswer.from_cache``)
        must use this flag rather than diffing the public counters, which
        other threads advance concurrently.

        With a ``warm_tier`` configured, the leader probes it before
        computing: a verified warm entry is published into this cache and
        returned with ``hit=True`` (zero compute ran — the defining fact
        the flag reports), and a fresh compute result is handed to
        ``warm_tier.store`` after local publication so other processes can
        reuse it.

        If ``compute`` raises, the error propagates to the computing thread
        *and* to every thread waiting on the same key; nothing is cached, so
        a later request retries the computation.
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry[0], True
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
            if leader:
                break
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self._hits += 1
            return flight.value, True

        if self._warm_tier is not None:
            try:
                warm_value = self._warm_tier.load(key)
            except BaseException as exc:
                # A raising warm tier must release the in-flight marker or
                # every follower deadlocks (adapters are expected to map
                # corruption to a miss; this path is for genuine bugs).
                flight.error = exc
                with self._lock:
                    del self._inflight[key]
                flight.event.set()
                raise
            if warm_value is not None:
                flight.value = warm_value
                warm_evicted: list[tuple[Hashable, Any]] = []
                try:
                    with self._lock:
                        del self._inflight[key]
                        self._hits += 1
                        warm_evicted = self._store(key, warm_value)
                finally:
                    flight.event.set()
                self._fire_evictions(warm_evicted)
                return warm_value, True
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                del self._inflight[key]
            flight.event.set()
            raise
        flight.value = value
        evicted: list[tuple[Hashable, Any]] = []
        try:
            with self._lock:
                del self._inflight[key]
                self._misses += 1
                evicted = self._store(key, value)
        finally:
            # Set the event even if the publish fails (e.g. a user-supplied
            # sizeof raising in _store): followers already hold
            # flight.value, and leaving the event unset would block them
            # forever.  The value simply is not cached; the leader re-raises.
            flight.event.set()
        self._fire_evictions(evicted)
        if self._warm_tier is not None:
            # Write-behind publication for other processes; best-effort by
            # contract (the adapter may enqueue, drop under pressure, or
            # write synchronously — never block the answer on durability).
            self._warm_tier.store(key, value)
        return value, False

    # ------------------------------------------------------------------
    # Runtime bound changes
    # ------------------------------------------------------------------
    def resize(
        self,
        *,
        max_entries: int | None | _Unset = _UNSET,
        max_bytes: int | None | _Unset = _UNSET,
    ) -> None:
        """Change the bounds at runtime; shrinking evicts down immediately.

        Omitted bounds are left unchanged; ``None`` means unbounded.  The
        cross-session registry calls this to rebalance each member session's
        share of the global byte pool as the fleet grows and shrinks.
        Evicted entries count in ``CacheStats.evictions`` and are reported
        to ``on_evict`` exactly as insert-driven evictions are.
        """
        with self._lock:
            if not isinstance(max_entries, _Unset):
                self._validate_bound("max_entries", max_entries, name=self.name)
                self.max_entries = max_entries
            if not isinstance(max_bytes, _Unset):
                self._validate_bound("max_bytes", max_bytes, name=self.name)
                self.max_bytes = max_bytes
            evicted = self._evict_to_bounds()
        self._fire_evictions(evicted)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_bound(label: str, bound: int | None, *, name: str) -> None:
        if bound is not None and bound < 1:
            raise BlinkMLError(f"{name}: {label} must be at least 1 or None")

    def _fire_evictions(self, evicted: list[tuple[Hashable, Any]]) -> None:
        """Invoke ``on_evict`` for each evicted entry, outside the lock."""
        if self._on_evict is not None:
            for key, value in evicted:
                self._on_evict(key, value)

    def _store(self, key: Hashable, value: Any) -> list[tuple[Hashable, Any]]:  # repro-lint: holds=_lock
        """Insert under the lock; returns the entries evicted to make room."""
        nbytes = max(0, int(self._sizeof(value)))
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._entries[key] = (value, nbytes)
        self._bytes += nbytes
        return self._evict_to_bounds()

    def _evict_to_bounds(self) -> list[tuple[Hashable, Any]]:  # repro-lint: holds=_lock
        """Evict LRU-first until both bounds hold (lock held by caller).

        At least one entry is always retained so a single value larger than
        the whole byte budget is stored rather than recomputed forever.
        """
        evicted: list[tuple[Hashable, Any]] = []
        while len(self._entries) > 1 and (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            evicted_key, (evicted_value, evicted_bytes) = self._entries.popitem(last=False)
            self._bytes -= evicted_bytes
            self._evictions += 1
            evicted.append((evicted_key, evicted_value))
        return evicted

    def stats(self) -> CacheStats:
        """A consistent snapshot of counters and occupancy."""
        with self._lock:
            return CacheStats(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                bytes=self._bytes,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats()
        return (
            f"LRUCache({self.name!r}, entries={snapshot.entries}/{self.max_entries}, "
            f"bytes={snapshot.bytes}/{self.max_bytes}, hits={snapshot.hits}, "
            f"misses={snapshot.misses}, evictions={snapshot.evictions})"
        )
