"""Computation of the H and J statistics (Section 3.4), streamed over blocks.

Theorem 1 needs two model/data-aware quantities evaluated at the trained
parameter θ_n:

* ``J`` — the covariance of the per-example gradients (the Jacobian of
  ``g_n(θ) − r(θ)``);
* ``H`` — the Jacobian of the full gradient ``g_n(θ)`` (the Hessian of the
  objective).

Three methods are implemented, matching the paper:

``closed_form``
    Uses the model's analytic Hessian (available for Lin, LR, ME).  Exact
    but requires the d-by-d matrix, so only suitable for low-dimensional
    models.

``inverse_gradients``
    Numerically reconstructs H from d finite-difference probes of the
    ``grads`` function: ``g_n(θ_n + dθ) ≈ H dθ``.  Model-agnostic but calls
    ``grads`` d times, which Section 5.6 shows is slow for large d.

``observed_fisher`` (default)
    Uses the information-matrix equality: J equals the covariance of the
    per-example gradients, and ``H = J + J_r``.  Implemented through an SVD
    of a thin triangular factor of the per-example gradient matrix so no
    d-by-d matrix is ever formed — the factor feeds straight into the fast
    sampler of Section 4.3.

Every method is driven through the streaming tier: the source may be an
in-memory :class:`~repro.data.dataset.Dataset` or any
:class:`~repro.evaluation.streaming.BlockSource` (e.g. a memory-mapped
:class:`~repro.data.store.ShardedDataset`), consumed as zero-copy row
blocks by a picklable accumulator that folds each block into a
shard-mergeable moment summary (:mod:`repro.linalg.moments`).  Resident
memory is O(block · d) — the full N×d per-example gradient matrix is never
materialised — and the executor fan-out (threads | processes) of
:func:`~repro.evaluation.streaming.stream_accumulate` applies unchanged.

Store-backed sources additionally get a **per-shard statistics index**:
each shard's moment summary is persisted as a sidecar file keyed by
(model-spec digest, θ-digest, method) next to the shard data
(:mod:`repro.data.store.statistics_index`), written lazily on first
computation and reused on every later bootstrap.  After an append, only the
new shards' summaries are computed; the merged result is bitwise identical
to a cold rebuild over the grown store because per-shard summaries are
always folded canonically (serial, fixed-size blocks from the shard start)
and merged in shard order.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.config import DEFAULT_FINITE_DIFFERENCE_EPS, DEFAULT_STATS_BLOCK_ROWS
from repro.data.dataset import Dataset
from repro.evaluation import streaming as _streaming
from repro.evaluation.streaming import BlockSource, StreamingConfig, as_block_source
from repro.exceptions import StatisticsError
from repro.linalg.covariance import FactoredCovariance
from repro.linalg.moments import (
    BlockHessianSummary,
    GradientMomentSummary,
    MomentSummary,
    ProbeMomentSummary,
)
from repro.linalg.utils import symmetrize
from repro.models.base import ModelClassSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.store.statistics_index import StatisticsIndex


class StatisticsMethod(str, Enum):
    """The three statistics-computation strategies of Section 3.4."""

    CLOSED_FORM = "closed_form"
    INVERSE_GRADIENTS = "inverse_gradients"
    OBSERVED_FISHER = "observed_fisher"


@dataclass(frozen=True)
class ModelStatistics:
    """The factored covariance ``H⁻¹JH⁻¹`` plus provenance information.

    Attributes
    ----------
    covariance:
        The :class:`~repro.linalg.covariance.FactoredCovariance` factor L.
    method:
        Which of the three strategies produced it.
    sample_size:
        The number of training examples n the statistics were computed from
        (the initial sample size n0 in the coordinator workflow).
    computation_seconds:
        Wall-clock time spent computing the statistics; the Figure 8a
        runtime-breakdown benchmark reports this.
    reused_shard_summaries / computed_shard_summaries:
        For store-backed sources: how many per-shard moment summaries were
        loaded from the statistics sidecars versus computed from raw rows.
        Both zero for in-memory / generic block sources.
    source_digest:
        The content digest of a store-backed source at computation time
        (``None`` otherwise) — what :meth:`EstimationSession.refresh` and
        the registry compare to detect data growth.
    """

    covariance: FactoredCovariance
    method: StatisticsMethod
    sample_size: int
    computation_seconds: float = 0.0
    reused_shard_summaries: int = 0
    computed_shard_summaries: int = 0
    source_digest: str | None = None

    @property
    def dimension(self) -> int:
        return self.covariance.dimension


# ----------------------------------------------------------------------
# Digests keying the statistics sidecars
# ----------------------------------------------------------------------
def _stable_value_bytes(value: object) -> bytes:
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return repr((array.dtype.str, array.shape)).encode() + array.tobytes()
    return repr(value).encode()


def spec_digest(spec: ModelClassSpec) -> str:
    """Content digest of a model-class specification.

    Hashes the spec's class identity plus its picklable state (the
    ``__getstate__`` view, which already strips per-instance caches), so
    two specs that would train identically share a digest and a spec with
    a different regulariser or hyper-parameter gets a fresh one.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(type(spec).__module__.encode())
    digest.update(b"\x00")
    digest.update(type(spec).__qualname__.encode())
    state = spec.__getstate__()
    for key in sorted(state):
        digest.update(b"\x00")
        digest.update(key.encode())
        digest.update(b"\x00")
        digest.update(_stable_value_bytes(state[key]))
    return digest.hexdigest()


def theta_digest(
    theta: np.ndarray,
    method: StatisticsMethod | str = StatisticsMethod.OBSERVED_FISHER,
    probe_eps: float = DEFAULT_FINITE_DIFFERENCE_EPS,
) -> str:
    """Content digest of the parameter vector a summary was evaluated at.

    For InverseGradients the finite-difference step also participates —
    probe summaries taken with a different ε are not interchangeable.
    """
    theta = np.ascontiguousarray(theta, dtype=np.float64)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(repr(theta.shape).encode())
    digest.update(theta.tobytes())
    if StatisticsMethod(method) is StatisticsMethod.INVERSE_GRADIENTS:
        digest.update(np.float64(probe_eps).tobytes())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Moment accumulators (the streaming replacements for the one-shot paths)
# ----------------------------------------------------------------------
class GradientMomentAccumulator:
    """Streaming ObservedFisher: folds per-example gradient blocks into a
    :class:`~repro.linalg.moments.GradientMomentSummary`.

    Picklable (the spec drops its caches on pickling; the summary is plain
    arrays), so process-backend workers can rebuild one from the task and
    return their partial for the ordinary ``merge`` path.  Memory stays at
    one ``(block_rows, d)`` gradient block plus an ``(≤d, d)`` triangular
    factor — the N×d matrix never exists.
    """

    needs_holdout_blocks = True

    def __init__(self, spec: ModelClassSpec, theta: np.ndarray):
        self.spec = spec
        self.theta = np.asarray(theta, dtype=np.float64)
        self._summary: GradientMomentSummary | None = None

    def update(self, block: Dataset) -> None:
        gradients = self.spec.per_example_gradients(self.theta, block)
        if self._summary is None:
            self._summary = GradientMomentSummary.from_gradients(gradients)
        else:
            self._summary = self._summary.updated(gradients)

    def merge(self, other: "GradientMomentAccumulator") -> None:
        theirs = other._summary
        if theirs is None:
            return
        self._summary = theirs if self._summary is None else self._summary.merge(theirs)

    def finalize(self) -> GradientMomentSummary:
        if self._summary is None:
            raise StatisticsError("no gradient blocks were accumulated")
        return self._summary


class ProbeGradientAccumulator:
    """Streaming InverseGradients: per-probe gradient sums over blocks.

    Evaluates the per-example gradients at θ and at the d finite-difference
    probes ``θ + ε e_j`` block by block, accumulating only the ``(d+1, d)``
    sum matrix — additive, hence trivially mergeable.
    """

    needs_holdout_blocks = True

    def __init__(
        self,
        spec: ModelClassSpec,
        theta: np.ndarray,
        probe_eps: float = DEFAULT_FINITE_DIFFERENCE_EPS,
    ):
        self.spec = spec
        self.theta = np.asarray(theta, dtype=np.float64)
        self.probe_eps = float(probe_eps)
        self._summary: ProbeMomentSummary | None = None

    def update(self, block: Dataset) -> None:
        d = self.theta.shape[0]
        sums = np.empty((d + 1, d), dtype=np.float64)
        sums[0] = self.spec.per_example_gradients(self.theta, block).sum(axis=0)
        for j in range(d):
            probe = self.theta.copy()
            probe[j] += self.probe_eps
            sums[j + 1] = self.spec.per_example_gradients(probe, block).sum(axis=0)
        partial = ProbeMomentSummary(rows=block.n_rows, gradient_sums=sums)
        self._summary = partial if self._summary is None else self._summary.merge(partial)

    def merge(self, other: "ProbeGradientAccumulator") -> None:
        theirs = other._summary
        if theirs is None:
            return
        self._summary = theirs if self._summary is None else self._summary.merge(theirs)

    def finalize(self) -> ProbeMomentSummary:
        if self._summary is None:
            raise StatisticsError("no gradient blocks were accumulated")
        return self._summary


class BlockHessianAccumulator:
    """Streaming ClosedForm: row-weighted per-block Hessian sums.

    Every built-in analytic Hessian has the form ``(1/n) Σ hᵢ(θ) + βI``, so
    ``n_b · (H(θ, block) − βI)`` recovers the block's exact ``Σ hᵢ`` and the
    per-block sums add up to the full-dataset Hessian.
    """

    needs_holdout_blocks = True

    def __init__(self, spec: ModelClassSpec, theta: np.ndarray):
        if not spec.has_closed_form_hessian:
            raise StatisticsError(
                f"model {spec.name!r} has no closed-form Hessian; "
                "use inverse_gradients or observed_fisher"
            )
        self.spec = spec
        self.theta = np.asarray(theta, dtype=np.float64)
        self._summary: BlockHessianSummary | None = None

    def update(self, block: Dataset) -> None:
        hessian = np.asarray(
            self.spec.hessian(self.theta, block), dtype=np.float64
        )
        data_sum = block.n_rows * (
            hessian - self.spec.regularization * np.eye(hessian.shape[0])
        )
        partial = BlockHessianSummary(rows=block.n_rows, hessian_sum=data_sum)
        self._summary = partial if self._summary is None else self._summary.merge(partial)

    def merge(self, other: "BlockHessianAccumulator") -> None:
        theirs = other._summary
        if theirs is None:
            return
        self._summary = theirs if self._summary is None else self._summary.merge(theirs)

    def finalize(self) -> BlockHessianSummary:
        if self._summary is None:
            raise StatisticsError("no Hessian blocks were accumulated")
        return self._summary


@dataclass(frozen=True)
class _StatisticsTask:
    """Picklable recipe for one streamed moment accumulation.

    The statistics-tier counterpart of the diff `_StreamTask`; anything
    :func:`~repro.evaluation.streaming.stream_accumulate` needs.
    """

    spec: ModelClassSpec
    method: StatisticsMethod
    theta: np.ndarray
    probe_eps: float
    source: "Dataset | BlockSource"

    def make_accumulator(
        self,
    ) -> "GradientMomentAccumulator | ProbeGradientAccumulator | BlockHessianAccumulator":
        if self.method is StatisticsMethod.CLOSED_FORM:
            return BlockHessianAccumulator(self.spec, self.theta)
        if self.method is StatisticsMethod.INVERSE_GRADIENTS:
            return ProbeGradientAccumulator(
                self.spec, self.theta, probe_eps=self.probe_eps
            )
        return GradientMomentAccumulator(self.spec, self.theta)


# ----------------------------------------------------------------------
# Summary → covariance
# ----------------------------------------------------------------------
def covariance_from_summary(
    spec: ModelClassSpec,
    summary: MomentSummary,
    probe_eps: float = DEFAULT_FINITE_DIFFERENCE_EPS,
) -> FactoredCovariance:
    """Turn a merged moment summary into the factored covariance.

    The reconstruction the old one-shot helpers performed, now decoupled
    from where the moments came from (fresh blocks, executor partials or
    persisted shard sidecars).
    """
    beta = spec.regularization
    if isinstance(summary, GradientMomentSummary):
        return FactoredCovariance.from_gradient_summary(summary, regularization=beta)
    if isinstance(summary, ProbeMomentSummary):
        d = summary.dimension
        means = summary.gradient_sums / summary.rows
        # g_n(θ + ε e_j) − g_n(θ) ≈ ε H e_j.  The data terms are the probe
        # mean differences; the L2 regulariser contributes exactly βε e_j.
        H = (means[1:] - means[0]).T / probe_eps + beta * np.eye(d)
        H = symmetrize(H)
        J = H - beta * np.eye(d)
        return FactoredCovariance.from_dense(H, J, regularization=beta)
    if isinstance(summary, BlockHessianSummary):
        d = summary.dimension
        H = symmetrize(summary.hessian_sum / summary.rows + beta * np.eye(d))
        J = H - beta * np.eye(d)
        return FactoredCovariance.from_dense(H, J, regularization=beta)
    raise StatisticsError(f"unknown moment summary type {type(summary).__name__}")


# ----------------------------------------------------------------------
# Canonical per-shard summaries (the unit the sidecar index persists)
# ----------------------------------------------------------------------
def _shard_block_bounds(
    start: int, stop: int, block_rows: int
) -> list[tuple[int, int]]:
    """Fixed-size block bounds within one shard, anchored at the shard start.

    THE canonical decomposition: every per-shard summary — computed cold,
    computed during a refresh, or recomputed by a verification — folds the
    same blocks in the same order, which is what makes persisted summaries
    bitwise reproducible.
    """
    return [
        (block_start, min(block_start + block_rows, stop))
        for block_start in range(start, stop, block_rows)
    ]


@dataclass(frozen=True)
class _ShardSummaryTask(_StatisticsTask):
    """One shard's canonical summary computation (picklable for processes)."""

    start: int = 0
    stop: int = 0
    block_rows: int = DEFAULT_STATS_BLOCK_ROWS


def _compute_shard_summary(task: _ShardSummaryTask) -> MomentSummary:
    """Worker body: serial canonical fold over one shard's blocks.

    Top-level so the process backend can pickle it; parallelism across
    shards never leaks into a shard's own fold order.
    """
    accumulator = task.make_accumulator()
    blocks = as_block_source(task.source)
    for block_start, block_stop in _shard_block_bounds(
        task.start, task.stop, task.block_rows
    ):
        accumulator.update(blocks.read_block(block_start, block_stop))
    return accumulator.finalize()


def _map_shard_tasks(
    tasks: list[_ShardSummaryTask], config: StreamingConfig
) -> list[MomentSummary]:
    """Run shard-summary tasks on the configured executor, results in order."""
    if config.n_workers <= 1 or len(tasks) <= 1:
        return [_compute_shard_summary(task) for task in tasks]
    if config.backend == "processes":
        pool = _streaming._shared_process_pool(config.n_workers)
        try:
            return list(pool.map(_compute_shard_summary, tasks))
        except BrokenProcessPool:
            _streaming._discard_process_pool(config.n_workers, pool)
            raise
    n_workers = min(config.n_workers, len(tasks))
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(_compute_shard_summary, tasks))


def _merge_summaries(summaries: list[MomentSummary]) -> MomentSummary:
    """Left fold in shard order — the single merge order used everywhere."""
    merged = summaries[0]
    for summary in summaries[1:]:
        merged = merged.merge(summary)
    return merged


def _is_store_source(source: object) -> bool:
    """Duck-typed detection of a statistics-index-capable store source.

    Checked structurally (``statistics_index()`` + ``manifest``) so this
    module never imports :mod:`repro.data.store`.
    """
    return callable(getattr(source, "statistics_index", None)) and hasattr(
        source, "manifest"
    )


def _store_backed_summary(
    task: _StatisticsTask,
    source: Any,
    config: StreamingConfig,
    persist: bool,
) -> tuple[MomentSummary, int, int]:
    """Merged summary over a store source, reusing / refreshing sidecars.

    Returns ``(summary, reused, computed)``.  Missing shards are computed
    canonically (possibly fanned out across the executor, each shard's own
    fold staying serial) and, when ``persist`` is set, the complete
    per-shard summary set is republished so the next bootstrap — or a cold
    rebuild over the grown store — reads the identical bits.
    """
    index: StatisticsIndex = source.statistics_index()
    manifest = source.manifest
    key_spec = spec_digest(task.spec)
    key_theta = theta_digest(task.theta, task.method, task.probe_eps)
    cached = index.load(key_spec, key_theta, task.method.value)

    shard_summaries: list[MomentSummary | None] = []
    missing: list[tuple[int, _ShardSummaryTask]] = []
    for position, shard in enumerate(manifest.shards):
        summary = cached.get(shard.digest) if cached else None
        if summary is None:
            missing.append(
                (
                    position,
                    _ShardSummaryTask(
                        spec=task.spec,
                        method=task.method,
                        theta=task.theta,
                        probe_eps=task.probe_eps,
                        source=source,
                        start=shard.start,
                        stop=shard.stop,
                        block_rows=config.block_rows,
                    ),
                )
            )
        shard_summaries.append(summary)

    computed = _map_shard_tasks([item[1] for item in missing], config)
    for (position, _), summary in zip(missing, computed):
        shard_summaries[position] = summary

    if missing and persist:
        try:
            index.publish(
                key_spec,
                key_theta,
                task.method.value,
                config.block_rows,
                [shard.digest for shard in manifest.shards],
                shard_summaries,
            )
        except OSError:
            # Read-only stores still get statistics, just not persistence.
            pass

    merged = _merge_summaries(shard_summaries)
    reused = len(shard_summaries) - len(missing)
    return merged, reused, len(missing)


def compute_statistics(
    spec: ModelClassSpec,
    theta: np.ndarray,
    source: "Dataset | BlockSource",
    method: StatisticsMethod | str = StatisticsMethod.OBSERVED_FISHER,
    probe_eps: float = DEFAULT_FINITE_DIFFERENCE_EPS,
    streaming: StreamingConfig | None = None,
    persist: bool = True,
) -> ModelStatistics:
    """Compute the parameter-covariance statistics at a trained θ.

    Parameters
    ----------
    spec:
        The model class specification.
    theta:
        The parameter vector of the (initial or approximate) trained model.
    source:
        The sample the model was trained on (size n); the statistics are
        the sample estimates of H and J at θ.  Accepts an in-memory
        :class:`~repro.data.dataset.Dataset` or any
        :class:`~repro.evaluation.streaming.BlockSource` — a memory-mapped
        :class:`~repro.data.store.ShardedDataset` additionally gets
        per-shard sidecar reuse.
    method:
        One of :class:`StatisticsMethod` (or its string value).  The default
        is ObservedFisher, the paper's default.
    probe_eps:
        Finite-difference step for InverseGradients.
    streaming:
        Block size / executor configuration; defaults to serial folding in
        blocks of :data:`~repro.config.DEFAULT_STATS_BLOCK_ROWS` rows with
        the session-wide worker/backend defaults.
    persist:
        For store-backed sources: whether newly computed per-shard
        summaries may be written back as sidecars.  Pass ``False`` for
        throwaway evaluations (e.g. ``recompute_at_theta_n``) that must not
        garbage-collect the store's standing θ₀ sidecars.
    """
    method = StatisticsMethod(method)
    if streaming is None:
        streaming = StreamingConfig(block_rows=DEFAULT_STATS_BLOCK_ROWS)
    if method is StatisticsMethod.CLOSED_FORM and not spec.has_closed_form_hessian:
        raise StatisticsError(
            f"model {spec.name!r} has no closed-form Hessian; "
            "use inverse_gradients or observed_fisher"
        )

    start = time.perf_counter()
    task = _StatisticsTask(
        spec=spec,
        method=method,
        theta=np.asarray(theta, dtype=np.float64),
        probe_eps=float(probe_eps),
        source=source,
    )
    reused = computed = 0
    source_digest: str | None = None
    if _is_store_source(source):
        summary, reused, computed = _store_backed_summary(
            task, source, streaming, persist
        )
        source_digest = source.content_digest()
    else:
        summary = _streaming.stream_accumulate(task, streaming)
    covariance = covariance_from_summary(spec, summary, probe_eps=task.probe_eps)
    elapsed = time.perf_counter() - start
    return ModelStatistics(
        covariance=covariance,
        method=method,
        sample_size=summary.rows,
        computation_seconds=elapsed,
        reused_shard_summaries=reused,
        computed_shard_summaries=computed,
        source_digest=source_digest,
    )
