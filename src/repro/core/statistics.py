"""Computation of the H and J statistics (Section 3.4).

Theorem 1 needs two model/data-aware quantities evaluated at the trained
parameter θ_n:

* ``J`` — the covariance of the per-example gradients (the Jacobian of
  ``g_n(θ) − r(θ)``);
* ``H`` — the Jacobian of the full gradient ``g_n(θ)`` (the Hessian of the
  objective).

Three methods are implemented, matching the paper:

``closed_form``
    Uses the model's analytic Hessian (available for Lin, LR, ME).  Exact
    but requires the d-by-d matrix, so only suitable for low-dimensional
    models.

``inverse_gradients``
    Numerically reconstructs H from d finite-difference probes of the
    ``grads`` function: ``g_n(θ_n + dθ) ≈ H dθ``.  Model-agnostic but calls
    ``grads`` d times, which Section 5.6 shows is slow for large d.

``observed_fisher`` (default)
    Uses the information-matrix equality: J equals the covariance of the
    per-example gradients, and ``H = J + J_r``.  Implemented through an SVD
    of the per-example gradient matrix so no d-by-d matrix is ever formed —
    the factor feeds straight into the fast sampler of Section 4.3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.config import DEFAULT_FINITE_DIFFERENCE_EPS
from repro.data.dataset import Dataset
from repro.exceptions import StatisticsError
from repro.linalg.covariance import FactoredCovariance
from repro.linalg.utils import symmetrize
from repro.models.base import ModelClassSpec


class StatisticsMethod(str, Enum):
    """The three statistics-computation strategies of Section 3.4."""

    CLOSED_FORM = "closed_form"
    INVERSE_GRADIENTS = "inverse_gradients"
    OBSERVED_FISHER = "observed_fisher"


@dataclass(frozen=True)
class ModelStatistics:
    """The factored covariance ``H⁻¹JH⁻¹`` plus provenance information.

    Attributes
    ----------
    covariance:
        The :class:`~repro.linalg.covariance.FactoredCovariance` factor L.
    method:
        Which of the three strategies produced it.
    sample_size:
        The number of training examples n the statistics were computed from
        (the initial sample size n0 in the coordinator workflow).
    computation_seconds:
        Wall-clock time spent computing the statistics; the Figure 8a
        runtime-breakdown benchmark reports this.
    """

    covariance: FactoredCovariance
    method: StatisticsMethod
    sample_size: int
    computation_seconds: float = 0.0

    @property
    def dimension(self) -> int:
        return self.covariance.dimension


def _closed_form(
    spec: ModelClassSpec, theta: np.ndarray, dataset: Dataset
) -> FactoredCovariance:
    if not spec.has_closed_form_hessian:
        raise StatisticsError(
            f"model {spec.name!r} has no closed-form Hessian; "
            "use inverse_gradients or observed_fisher"
        )
    H = symmetrize(spec.hessian(theta, dataset))
    # J is the Jacobian of g_n − r, i.e. H minus the regulariser's Jacobian
    # (βI for L2 regularisation).
    J = H - spec.regularization * np.eye(H.shape[0])
    return FactoredCovariance.from_dense(H, J, regularization=spec.regularization)


def _inverse_gradients(
    spec: ModelClassSpec,
    theta: np.ndarray,
    dataset: Dataset,
    probe_eps: float = DEFAULT_FINITE_DIFFERENCE_EPS,
) -> FactoredCovariance:
    theta = np.asarray(theta, dtype=np.float64)
    d = theta.shape[0]
    gradient_at_theta = spec.gradient(theta, dataset)
    # g_n(θ_n + ε e_j) − g_n(θ_n) ≈ ε H e_j, one probe per parameter.
    H = np.empty((d, d))
    for j in range(d):
        probe = theta.copy()
        probe[j] += probe_eps
        H[:, j] = (spec.gradient(probe, dataset) - gradient_at_theta) / probe_eps
    H = symmetrize(H)
    J = H - spec.regularization * np.eye(d)
    return FactoredCovariance.from_dense(H, J, regularization=spec.regularization)


def _observed_fisher(
    spec: ModelClassSpec, theta: np.ndarray, dataset: Dataset
) -> FactoredCovariance:
    per_example = spec.per_example_gradients(theta, dataset)
    return FactoredCovariance.from_per_example_gradients(
        per_example, regularization=spec.regularization
    )


def compute_statistics(
    spec: ModelClassSpec,
    theta: np.ndarray,
    dataset: Dataset,
    method: StatisticsMethod | str = StatisticsMethod.OBSERVED_FISHER,
    probe_eps: float = DEFAULT_FINITE_DIFFERENCE_EPS,
) -> ModelStatistics:
    """Compute the parameter-covariance statistics at a trained θ.

    Parameters
    ----------
    spec:
        The model class specification.
    theta:
        The parameter vector of the (initial or approximate) trained model.
    dataset:
        The sample the model was trained on (size n); the statistics are the
        sample estimates of H and J at θ.
    method:
        One of :class:`StatisticsMethod` (or its string value).  The default
        is ObservedFisher, the paper's default.
    probe_eps:
        Finite-difference step for InverseGradients.
    """
    method = StatisticsMethod(method)
    start = time.perf_counter()
    if method is StatisticsMethod.CLOSED_FORM:
        covariance = _closed_form(spec, theta, dataset)
    elif method is StatisticsMethod.INVERSE_GRADIENTS:
        covariance = _inverse_gradients(spec, theta, dataset, probe_eps=probe_eps)
    else:
        covariance = _observed_fisher(spec, theta, dataset)
    elapsed = time.perf_counter() - start
    return ModelStatistics(
        covariance=covariance,
        method=method,
        sample_size=dataset.n_rows,
        computation_seconds=elapsed,
    )
