"""The BlinkML coordinator (Section 2.3).

The coordinator glues the components together:

1. draw an initial sample D0 of size n0 (10 000 by default) from the
   training data and train the initial model m_0;
2. compute the H/J statistics at θ_0 and estimate m_0's accuracy; if it
   already meets the approximation contract, return m_0;
3. otherwise ask the Sample Size Estimator for the smallest n that would
   satisfy the contract — without training any intermediate model;
4. train the final model m_n on a size-n sample (which subsumes D0) and
   return it together with its own accuracy estimate.

At most two models are ever trained, which is where the training-time
savings of Figure 5 come from.
"""

from __future__ import annotations

import time

import numpy as np

from repro.config import (
    DEFAULT_INITIAL_SAMPLE_SIZE,
    DEFAULT_NUM_PARAMETER_SAMPLES,
)
from repro.core.accuracy import ModelAccuracyEstimator
from repro.core.contract import ApproximationContract
from repro.core.parameter_sampler import ParameterSampler
from repro.core.result import ApproximateTrainingResult, TimingBreakdown
from repro.core.sample_size import SampleSizeEstimator
from repro.core.statistics import StatisticsMethod, compute_statistics
from repro.data.dataset import Dataset
from repro.data.sampling import UniformSampler
from repro.exceptions import DataError
from repro.models.base import ModelClassSpec, TrainedModel


class BlinkML:
    """User-facing trainer with an approximation contract.

    Parameters
    ----------
    spec:
        The model class specification to train (Lin, LR, ME, PPCA, or any
        custom :class:`~repro.models.base.ModelClassSpec`).
    initial_sample_size:
        The size n0 of the initial training set D0 (paper default 10 000).
    n_parameter_samples:
        The number k of Monte-Carlo parameter samples used by the accuracy
        and sample-size estimators.
    statistics_method:
        Which of the Section 3.4 strategies to use (ObservedFisher default).
    optimizer:
        Optional optimisation method name forwarded to the trainer
        (``None`` applies the paper's BFGS / L-BFGS dimension rule).
    seed:
        Seed for the sampling of D0/Dn and of the parameter draws.
    """

    def __init__(
        self,
        spec: ModelClassSpec,
        initial_sample_size: int = DEFAULT_INITIAL_SAMPLE_SIZE,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
        statistics_method: StatisticsMethod | str = StatisticsMethod.OBSERVED_FISHER,
        optimizer: str | None = None,
        seed: int | None = None,
        optimizer_kwargs: dict | None = None,
    ):
        self.spec = spec
        self.initial_sample_size = int(initial_sample_size)
        self.n_parameter_samples = int(n_parameter_samples)
        self.statistics_method = StatisticsMethod(statistics_method)
        self.optimizer = optimizer
        self.optimizer_kwargs = dict(optimizer_kwargs or {})
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Training entry points
    # ------------------------------------------------------------------
    def train(
        self,
        train: Dataset,
        holdout: Dataset,
        contract: ApproximationContract,
    ) -> ApproximateTrainingResult:
        """Train an approximate model satisfying ``contract``.

        Parameters
        ----------
        train:
            The full training data D (size N).
        holdout:
            Holdout set used only for estimating prediction differences.
        contract:
            The requested (ε, δ) approximation contract.
        """
        if holdout.n_rows == 0:
            raise DataError("holdout set must not be empty")
        timings = TimingBreakdown()
        N = train.n_rows
        n0 = min(self.initial_sample_size, N)
        sampler = UniformSampler(train, rng=self._rng)

        # Step 1: initial model m_0 on D0.
        start = time.perf_counter()
        initial_data = sampler.nested_sample(n0)
        initial_model = self.spec.fit(
            initial_data, method=self.optimizer, **self.optimizer_kwargs
        )
        timings.initial_training_seconds = time.perf_counter() - start

        # Step 2: statistics at θ_0 and accuracy of m_0.
        statistics = compute_statistics(
            self.spec, initial_model.theta, initial_data, method=self.statistics_method
        )
        timings.statistics_seconds = statistics.computation_seconds
        parameter_sampler = ParameterSampler(statistics, rng=self._rng)
        accuracy_estimator = ModelAccuracyEstimator(
            self.spec, holdout, n_parameter_samples=self.n_parameter_samples
        )
        initial_estimate = accuracy_estimator.estimate(
            initial_model.theta,
            n=n0,
            N=N,
            delta=contract.delta,
            statistics=statistics,
            sampler=parameter_sampler,
        )
        timings.accuracy_estimation_seconds += initial_estimate.estimation_seconds

        if initial_estimate.epsilon <= contract.epsilon or n0 >= N:
            return ApproximateTrainingResult(
                model=initial_model,
                contract=contract,
                estimated_epsilon=initial_estimate.epsilon,
                sample_size=n0,
                initial_sample_size=n0,
                full_size=N,
                used_initial_model=True,
                estimated_minimum_sample_size=n0,
                timings=timings,
                metadata={"statistics_method": self.statistics_method.value},
            )

        # Step 3: estimate the minimum sample size n for the final model.
        size_estimator = SampleSizeEstimator(
            self.spec, holdout, n_parameter_samples=self.n_parameter_samples
        )
        size_estimate = size_estimator.estimate(
            initial_model.theta,
            n0=n0,
            N=N,
            contract=contract,
            statistics=statistics,
            sampler=parameter_sampler,
            # The accuracy estimator just rejected n0, so re-probing the
            # lower endpoint would waste a k-sample Monte-Carlo evaluation.
            skip_lower_probe=True,
        )
        timings.sample_size_search_seconds = size_estimate.estimation_seconds
        final_n = size_estimate.sample_size

        # Step 4: train the final model m_n on a size-n sample (superset of D0).
        start = time.perf_counter()
        final_data = sampler.nested_sample(final_n)
        final_model = self.spec.fit(
            final_data,
            method=self.optimizer,
            theta0=initial_model.theta,  # warm start from m_0
            **self.optimizer_kwargs,
        )
        timings.final_training_seconds = time.perf_counter() - start

        # Accuracy estimate of the final model (statistics recomputed at θ_n
        # would be more faithful but the paper reuses the initial-model
        # statistics for efficiency; we follow the cheaper route and expose
        # the re-estimated bound).
        final_estimate = accuracy_estimator.estimate(
            final_model.theta,
            n=final_n,
            N=N,
            delta=contract.delta,
            statistics=statistics,
            sampler=parameter_sampler,
        )
        timings.accuracy_estimation_seconds += final_estimate.estimation_seconds

        return ApproximateTrainingResult(
            model=final_model,
            contract=contract,
            estimated_epsilon=final_estimate.epsilon,
            sample_size=final_n,
            initial_sample_size=n0,
            full_size=N,
            used_initial_model=False,
            estimated_minimum_sample_size=final_n,
            timings=timings,
            metadata={
                "statistics_method": self.statistics_method.value,
                "size_search_feasible": size_estimate.feasible,
                "size_search_probes": size_estimate.probed_sizes,
            },
        )

    def train_with_accuracy(
        self,
        train: Dataset,
        holdout: Dataset,
        requested_accuracy: float,
        delta: float = 0.05,
    ) -> ApproximateTrainingResult:
        """Convenience wrapper taking a requested accuracy instead of ε."""
        contract = ApproximationContract.from_accuracy(requested_accuracy, delta=delta)
        return self.train(train, holdout, contract)

    # ------------------------------------------------------------------
    # Reference: full-model training (for benchmarking against BlinkML)
    # ------------------------------------------------------------------
    def train_full(self, train: Dataset) -> TrainedModel:
        """Train the exact full model m_N (what a traditional ML library does)."""
        return self.spec.fit(train, method=self.optimizer, **self.optimizer_kwargs)
