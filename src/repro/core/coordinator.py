"""The BlinkML coordinator (Section 2.3) — a facade over the session layer.

The coordinator workflow glues the components together:

1. draw an initial sample D0 of size n0 (10 000 by default) from the
   training data and train the initial model m_0;
2. compute the H/J statistics at θ_0 and estimate m_0's accuracy; if it
   already meets the approximation contract, return m_0;
3. otherwise ask the Sample Size Estimator for the smallest n that would
   satisfy the contract — without training any intermediate model;
4. train the final model m_n on a size-n sample (which subsumes D0) and
   return it together with its own accuracy estimate.

At most two models are ever trained, which is where the training-time
savings of Figure 5 come from.

Since the session refactor the workflow itself lives in
:class:`repro.core.session.EstimationSession`; :class:`BlinkML` only
assembles a session per ``train()`` call.  ``train()`` stays deterministic
per seed, and with ``probe_batch=1`` it reproduces the pre-refactor
monolithic coordinator exactly (same seeds → same outputs).  The default
``probe_batch`` > 1 changes only the sample-size-search probe schedule —
under the Theorem 2 monotonicity the search relies on, both schedules land
on the same minimum n.  Serving deployments hold a session open and answer
many contracts from its caches (see :meth:`BlinkML.session`).
"""

from __future__ import annotations

from repro.config import (
    DEFAULT_DELTA,
    DEFAULT_INITIAL_SAMPLE_SIZE,
    DEFAULT_NUM_PARAMETER_SAMPLES,
    DEFAULT_SIZE_SEARCH_PROBE_BATCH,
)
import numpy as np

from repro.core.contract import ApproximationContract
from repro.core.result import ApproximateTrainingResult
from repro.core.session import EstimationSession
from repro.core.statistics import StatisticsMethod
from repro.data.dataset import Dataset
from repro.evaluation.streaming import StreamingConfig
from repro.exceptions import SampleSizeError
from repro.models.base import ModelClassSpec, TrainedModel


class BlinkML:
    """User-facing trainer with an approximation contract.

    Parameters
    ----------
    spec:
        The model class specification to train (Lin, LR, ME, PPCA, or any
        custom :class:`~repro.models.base.ModelClassSpec`).
    initial_sample_size:
        The size n0 of the initial training set D0 (paper default 10 000).
    n_parameter_samples:
        The number k of Monte-Carlo parameter samples used by the accuracy
        and sample-size estimators.
    statistics_method:
        Which of the Section 3.4 strategies to use (ObservedFisher default).
    optimizer:
        Optional optimisation method name forwarded to the trainer
        (``None`` applies the paper's BFGS / L-BFGS dimension rule).
    seed:
        Seed for the sampling of D0/Dn and of the parameter draws.
    streaming:
        Holdout sharding configuration for the streamed diff evaluations
        (``None`` uses the module default block size, serial).
    probe_batch:
        Candidate sample sizes evaluated per stacked sample-size-search
        pass (1 restores the paper's plain bisection).
    """

    def __init__(
        self,
        spec: ModelClassSpec,
        initial_sample_size: int = DEFAULT_INITIAL_SAMPLE_SIZE,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
        statistics_method: StatisticsMethod | str = StatisticsMethod.OBSERVED_FISHER,
        optimizer: str | None = None,
        seed: int | None = None,
        optimizer_kwargs: dict | None = None,
        streaming: StreamingConfig | None = None,
        probe_batch: int = DEFAULT_SIZE_SEARCH_PROBE_BATCH,
    ):
        self.spec = spec
        self.initial_sample_size = int(initial_sample_size)
        self.n_parameter_samples = int(n_parameter_samples)
        self.statistics_method = StatisticsMethod(statistics_method)
        self.optimizer = optimizer
        self.optimizer_kwargs = dict(optimizer_kwargs or {})
        self.streaming = streaming
        self.probe_batch = int(probe_batch)
        if self.probe_batch < 1:
            raise SampleSizeError(
                f"probe_batch must be at least 1, got {self.probe_batch} "
                "(1 = paper bisection; larger values stack candidates per "
                "size-search pass)"
            )
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def session(self, train: Dataset, holdout: Dataset) -> EstimationSession:
        """Open an estimation session: m_0 + statistics computed once.

        The session answers any number of (ε, δ) contracts against the same
        initial model from its caches; see
        :class:`repro.core.session.EstimationSession`.  Successive sessions
        from one ``BlinkML`` share its random stream (each consumes draws in
        workflow order), so ``train()`` remains seed-reproducible.
        """
        return EstimationSession(
            self.spec,
            train,
            holdout,
            initial_sample_size=self.initial_sample_size,
            n_parameter_samples=self.n_parameter_samples,
            statistics_method=self.statistics_method,
            optimizer=self.optimizer,
            optimizer_kwargs=self.optimizer_kwargs,
            streaming=self.streaming,
            probe_batch=self.probe_batch,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    # Training entry points
    # ------------------------------------------------------------------
    def train(
        self,
        train: Dataset,
        holdout: Dataset,
        contract: ApproximationContract,
    ) -> ApproximateTrainingResult:
        """Train an approximate model satisfying ``contract``.

        Each call runs the full one-shot workflow in a fresh session:
        deterministic per seed, and identical to the pre-session coordinator
        when ``probe_batch=1`` (the default batched probes change only the
        search schedule).  To amortise the initial model across contracts,
        keep the :meth:`session` instead.

        Parameters
        ----------
        train:
            The full training data D (size N).
        holdout:
            Holdout set used only for estimating prediction differences.
        contract:
            The requested (ε, δ) approximation contract.
        """
        return self.session(train, holdout).train_to(contract)

    def train_with_accuracy(
        self,
        train: Dataset,
        holdout: Dataset,
        requested_accuracy: float,
        delta: float = DEFAULT_DELTA,
    ) -> ApproximateTrainingResult:
        """Convenience wrapper taking a requested accuracy instead of ε."""
        contract = ApproximationContract.from_accuracy(requested_accuracy, delta=delta)
        return self.train(train, holdout, contract)

    # ------------------------------------------------------------------
    # Reference: full-model training (for benchmarking against BlinkML)
    # ------------------------------------------------------------------
    def train_full(self, train: Dataset) -> TrainedModel:
        """Train the exact full model m_N (what a traditional ML library does)."""
        return self.spec.fit(train, method=self.optimizer, **self.optimizer_kwargs)
