"""BlinkML core: the paper's primary contribution.

The components mirror Figure 2 of the paper:

* :class:`repro.core.contract.ApproximationContract` — the (ε, δ) request;
* :class:`repro.core.statistics.ModelStatistics` and
  :func:`repro.core.statistics.compute_statistics` — the H/J statistics
  (ClosedForm, InverseGradients, ObservedFisher; Section 3.4);
* :class:`repro.core.parameter_sampler.ParameterSampler` — fast sampling
  from ``N(θ, α H⁻¹JH⁻¹)`` using sampling-by-scaling and the ``L = UΛ``
  factor (Section 4.3);
* :class:`repro.core.accuracy.ModelAccuracyEstimator` — the error bound on
  an approximate model (Section 3);
* :class:`repro.core.sample_size.SampleSizeEstimator` — the minimum sample
  size search (Section 4);
* :class:`repro.core.session.EstimationSession` — the contract-serving
  session: one initial model + statistics answering many (ε, δ) contracts
  from cached sorted difference vectors;
* :class:`repro.core.coordinator.BlinkML` — the coordinator workflow
  (Section 2.3), a thin facade over one-shot sessions and the user-facing
  entry point;
* :mod:`repro.core.guarantees` — Lemma 1 (generalisation bound) and
  Lemma 2 (conservative quantile).
"""

from repro.core.caching import CacheStats, LRUCache
from repro.core.contract import ApproximationContract
from repro.core.result import ApproximateTrainingResult, TimingBreakdown
from repro.core.statistics import (
    GradientMomentAccumulator,
    ModelStatistics,
    StatisticsMethod,
    compute_statistics,
    spec_digest,
    theta_digest,
)
from repro.core.parameter_sampler import ParameterSampler
from repro.core.accuracy import AccuracyEstimate, ModelAccuracyEstimator
from repro.core.sample_size import SampleSizeEstimate, SampleSizeEstimator
from repro.core.session import EstimationSession, SessionAnswer, SessionRefresh
from repro.core.coordinator import BlinkML
from repro.core.guarantees import (
    conservative_quantile_level,
    conservative_upper_bound,
    satisfies_probability_threshold,
    generalization_error_bound,
)

__all__ = [
    "ApproximationContract",
    "ApproximateTrainingResult",
    "CacheStats",
    "LRUCache",
    "TimingBreakdown",
    "GradientMomentAccumulator",
    "ModelStatistics",
    "compute_statistics",
    "spec_digest",
    "theta_digest",
    "StatisticsMethod",
    "ParameterSampler",
    "AccuracyEstimate",
    "ModelAccuracyEstimator",
    "SampleSizeEstimate",
    "SampleSizeEstimator",
    "EstimationSession",
    "SessionAnswer",
    "SessionRefresh",
    "BlinkML",
    "conservative_quantile_level",
    "conservative_upper_bound",
    "satisfies_probability_threshold",
    "generalization_error_bound",
]
