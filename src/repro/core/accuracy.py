"""Model Accuracy Estimator (Section 3).

Given an approximate model ``m_n`` (parameter θ_n trained on a sample of
size n) and the confidence level δ, the estimator computes an ε such that
the prediction difference ``v(m_n)`` between m_n and the *untrained* full
model m_N is at most ε with probability at least 1 − δ.

The procedure follows Section 3.3:

1. draw k i.i.d. full-model parameters ``θ_N,i ~ N(θ_n, α H⁻¹JH⁻¹)`` with
   ``α = 1/n − 1/N`` (Corollary 1), using the fast sampler;
2. evaluate the model difference ``v(m_n; θ_N,i)`` on the holdout set via
   the streaming sharded diff engine (the MCS ``diff`` function, evaluated
   block by block so memory stays O(k · block) on arbitrarily large
   holdouts);
3. return the conservative empirical quantile of those differences
   (Lemma 2).

The sampled differences are returned *ascending*: the conservative bound is
a pure quantile lookup on the sorted vector, which is what lets the
estimation session (:mod:`repro.core.session`) cache one vector per
(θ, n, N) and answer any number of (ε, δ) contracts against it with zero
further model evaluations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_NUM_PARAMETER_SAMPLES, validate_delta
from repro.core.guarantees import conservative_upper_bound
from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import ModelStatistics
from repro.data.dataset import Dataset
from repro.evaluation.streaming import StreamingConfig, streaming_prediction_differences
from repro.exceptions import ContractError
from repro.linalg.utils import freeze
from repro.models.base import ModelClassSpec


@dataclass(frozen=True)
class AccuracyEstimate:
    """Result of one accuracy estimation.

    Attributes
    ----------
    epsilon:
        The conservative bound on ``v(m_n)`` holding with probability 1 − δ.
    delta:
        The confidence parameter the bound was computed for.
    sampled_differences:
        The k sampled model differences in *ascending* order (useful for
        diagnostics and tests).  The array is **read-only**: the estimation
        session shares one cached vector across every estimate for the same
        (θ, n, N), so mutating it would corrupt the bounds of every past and
        future contract answered from that cache entry.  Copy it
        (``estimate.sampled_differences.copy()``) if you need a writable
        version.
    estimation_seconds:
        Wall-clock cost of the estimate.
    """

    epsilon: float
    delta: float
    sampled_differences: np.ndarray
    estimation_seconds: float = 0.0

    def __post_init__(self) -> None:
        # Hand out a read-only view regardless of what was passed in; see
        # the attribute docstring for the aliasing contract.
        differences = freeze(np.asarray(self.sampled_differences, dtype=np.float64).view())
        object.__setattr__(self, "sampled_differences", differences)

    @property
    def estimated_accuracy(self) -> float:
        """The accuracy ``1 − ε`` implied by the bound."""
        return 1.0 - self.epsilon


class ModelAccuracyEstimator:
    """Estimates the accuracy of an approximate model without training m_N.

    Parameters
    ----------
    spec / holdout / n_parameter_samples:
        As in Section 3.3: the model class, the holdout set the ``diff``
        metric is evaluated on, and the number k of Monte-Carlo parameter
        samples.
    streaming:
        Sharding configuration for the holdout evaluation; ``None`` uses the
        module default (:data:`repro.config.DEFAULT_HOLDOUT_BLOCK_ROWS` rows
        per block, serial).
    """

    def __init__(
        self,
        spec: ModelClassSpec,
        holdout: Dataset,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
        streaming: StreamingConfig | None = None,
    ):
        if n_parameter_samples < 2:
            raise ContractError("need at least two parameter samples")
        self._spec = spec
        self._holdout = holdout
        self._n_parameter_samples = n_parameter_samples
        self._streaming = streaming

    def sorted_differences(  # repro-lint: returns-frozen
        self,
        theta_n: np.ndarray,
        n: int,
        N: int,
        sampler: ParameterSampler,
        tag: str = "accuracy",
    ) -> np.ndarray:
        """The k sampled model differences, ascending and read-only.

        This is steps 1–2 of Section 3.3 without the quantile: the vector is
        contract-independent, which is what the session cache exploits —
        every (ε, δ) against the same (θ, n, N) is a lookup into this array.
        """
        theta_n = np.asarray(theta_n, dtype=np.float64)
        if n >= N:
            # The "approximate" model is the full model: zero difference.
            differences = np.zeros(self._n_parameter_samples)
        else:
            theta_N_samples = sampler.sample_around(
                theta_n, n=n, N=N, count=self._n_parameter_samples, tag=tag
            )
            differences = np.sort(
                np.asarray(
                    streaming_prediction_differences(
                        self._spec, theta_n, theta_N_samples, self._holdout,
                        config=self._streaming,
                    ),
                    dtype=np.float64,
                )
            )
        return freeze(differences)

    def estimate(
        self,
        theta_n: np.ndarray,
        n: int,
        N: int,
        delta: float,
        statistics: ModelStatistics,
        sampler: ParameterSampler | None = None,
    ) -> AccuracyEstimate:
        """Estimate the error bound ε of the model with parameter ``theta_n``.

        Parameters
        ----------
        theta_n:
            Parameter vector of the approximate model.
        n:
            Sample size the model was trained on.
        N:
            Full training-set size.
        delta:
            Contract violation probability.
        statistics:
            Factored H/J statistics (normally computed at θ_n).
        sampler:
            Optional pre-built sampler to share base draws with the sample
            size estimator; a fresh one is created when omitted.
        """
        validate_delta(delta)
        start = time.perf_counter()
        sampler = sampler or ParameterSampler(statistics)
        differences = self.sorted_differences(theta_n, n, N, sampler)
        if n >= N:
            epsilon = 0.0
        else:
            epsilon = conservative_upper_bound(differences, delta, assume_sorted=True)
        elapsed = time.perf_counter() - start
        return AccuracyEstimate(
            epsilon=float(epsilon),
            delta=delta,
            sampled_differences=differences,
            estimation_seconds=elapsed,
        )
