"""Model Accuracy Estimator (Section 3).

Given an approximate model ``m_n`` (parameter θ_n trained on a sample of
size n) and the confidence level δ, the estimator computes an ε such that
the prediction difference ``v(m_n)`` between m_n and the *untrained* full
model m_N is at most ε with probability at least 1 − δ.

The procedure follows Section 3.3:

1. draw k i.i.d. full-model parameters ``θ_N,i ~ N(θ_n, α H⁻¹JH⁻¹)`` with
   ``α = 1/n − 1/N`` (Corollary 1), using the fast sampler;
2. evaluate the model difference ``v(m_n; θ_N,i)`` on the holdout set via
   the MCS ``diff`` function;
3. return the conservative empirical quantile of those differences
   (Lemma 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_NUM_PARAMETER_SAMPLES
from repro.core.guarantees import conservative_upper_bound
from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import ModelStatistics
from repro.data.dataset import Dataset
from repro.exceptions import ContractError
from repro.models.base import ModelClassSpec


@dataclass(frozen=True)
class AccuracyEstimate:
    """Result of one accuracy estimation.

    Attributes
    ----------
    epsilon:
        The conservative bound on ``v(m_n)`` holding with probability 1 − δ.
    delta:
        The confidence parameter the bound was computed for.
    sampled_differences:
        The k sampled model differences (useful for diagnostics and tests).
    estimation_seconds:
        Wall-clock cost of the estimate.
    """

    epsilon: float
    delta: float
    sampled_differences: np.ndarray
    estimation_seconds: float = 0.0

    @property
    def estimated_accuracy(self) -> float:
        """The accuracy ``1 − ε`` implied by the bound."""
        return 1.0 - self.epsilon


class ModelAccuracyEstimator:
    """Estimates the accuracy of an approximate model without training m_N."""

    def __init__(
        self,
        spec: ModelClassSpec,
        holdout: Dataset,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
    ):
        if n_parameter_samples < 2:
            raise ContractError("need at least two parameter samples")
        self._spec = spec
        self._holdout = holdout
        self._n_parameter_samples = n_parameter_samples

    def estimate(
        self,
        theta_n: np.ndarray,
        n: int,
        N: int,
        delta: float,
        statistics: ModelStatistics,
        sampler: ParameterSampler | None = None,
    ) -> AccuracyEstimate:
        """Estimate the error bound ε of the model with parameter ``theta_n``.

        Parameters
        ----------
        theta_n:
            Parameter vector of the approximate model.
        n:
            Sample size the model was trained on.
        N:
            Full training-set size.
        delta:
            Contract violation probability.
        statistics:
            Factored H/J statistics (normally computed at θ_n).
        sampler:
            Optional pre-built sampler to share base draws with the sample
            size estimator; a fresh one is created when omitted.
        """
        start = time.perf_counter()
        sampler = sampler or ParameterSampler(statistics)
        if n >= N:
            # The "approximate" model is the full model: zero difference.
            differences = np.zeros(self._n_parameter_samples)
            epsilon = 0.0
        else:
            theta_N_samples = sampler.sample_around(
                theta_n, n=n, N=N, count=self._n_parameter_samples, tag="accuracy"
            )
            # Batched MCS diff: all k sampled full-model parameters are
            # evaluated in one BLAS-level call (model families without a
            # vectorised override fall back to the per-sample loop).
            differences = np.asarray(
                self._spec.prediction_differences(theta_n, theta_N_samples, self._holdout),
                dtype=np.float64,
            )
            epsilon = conservative_upper_bound(differences, delta)
        elapsed = time.perf_counter() - start
        return AccuracyEstimate(
            epsilon=float(epsilon),
            delta=delta,
            sampled_differences=differences,
            estimation_seconds=elapsed,
        )
