"""Fast sampling of model parameters from their asymptotic distribution.

Corollary 1 gives ``θ̂_N | θ_n ~ N(θ_n, α H⁻¹JH⁻¹)`` with
``α = 1/n − 1/N``.  The accuracy and sample-size estimators need many i.i.d.
draws from such distributions for *many different values of α* (the binary
search over n), so Section 4.3 describes two optimisations, both implemented
here:

* **Sampling by scaling** — draw base samples from the *unscaled*
  distribution ``N(0, H⁻¹JH⁻¹)`` once, then multiply by ``sqrt(α)`` whenever
  a specific α is needed.
* **Avoiding the dense covariance** — the base samples are produced as
  ``L z`` with ``z ~ N(0, I)`` and ``L Lᵀ = H⁻¹JH⁻¹`` taken from the
  factored statistics, so the d-by-d covariance never exists in memory.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.statistics import ModelStatistics
from repro.exceptions import StatisticsError
from repro.linalg.utils import freeze


class ParameterSampler:
    """Draws parameter vectors from ``N(center, α · H⁻¹JH⁻¹)``.

    Parameters
    ----------
    statistics:
        The factored statistics computed at the initial model.
    rng:
        Seeded NumPy generator.
    cache_base_samples:
        When true (default), the largest block of base draws from the
        unscaled distribution is cached *per tag*, implementing
        sampling-by-scaling: the binary search over n re-uses the same base
        draws and only rescales them, exactly as Section 4.3 prescribes.
        Smaller requests return prefix slices of the cached block and larger
        requests extend it in place, so every request against a tag shares a
        common prefix of draws — even when callers ask for different counts.
    """

    def __init__(
        self,
        statistics: ModelStatistics,
        rng: np.random.Generator | None = None,
        cache_base_samples: bool = True,
    ):
        self._statistics = statistics
        self._rng = rng or np.random.default_rng()
        self._cache_base_samples = cache_base_samples
        # Cached blocks are stored read-only (callers receive views of
        # them); the lock serialises cache growth and RNG consumption so
        # concurrent callers cannot tear the grow-in-place update or
        # interleave draws from the shared generator.
        self._base_cache: dict[str, np.ndarray] = {}  # guarded-by: _lock  # repro-lint: frozen-attr
        self._lock = threading.RLock()

    @property
    def statistics(self) -> ModelStatistics:
        return self._statistics

    @staticmethod
    def alpha(n: int, N: int) -> float:
        """The variance scale ``α = 1/n − 1/N`` from Theorem 1."""
        if n <= 0 or N <= 0:
            raise StatisticsError("sample sizes must be positive")
        if n > N:
            raise StatisticsError(f"sample size n={n} cannot exceed N={N}")
        return 1.0 / n - 1.0 / N

    # ------------------------------------------------------------------
    # Base (unscaled) draws
    # ------------------------------------------------------------------
    def base_samples(self, count: int, tag: str = "default") -> np.ndarray:
        """Draws from the unscaled ``N(0, H⁻¹JH⁻¹)``, shape ``(count, d)``.

        ``tag`` keys the cache so callers needing two *independent* streams
        (the two-stage sampling of Section 4.1) do not accidentally share
        draws.  Within a tag the cache holds the largest block drawn so far:
        a smaller request returns a prefix slice of that block and a larger
        request extends it with fresh rows, so two callers sharing a tag but
        requesting different counts still share a common prefix of draws —
        the Section 4.3 sampling-by-scaling reuse.

        The returned array is **read-only**: the cached block is shared by
        every caller (and by every rescaled draw derived from it), so an
        in-place mutation would silently corrupt all later samples for the
        tag.  Copy it if you need a writable version.  Thread-safe: cache
        growth is serialised, so concurrent callers see consistent prefixes.
        """
        if count <= 0:
            raise StatisticsError("sample count must be positive")
        covariance = self._statistics.covariance
        if not self._cache_base_samples:
            with self._lock:
                z = self._rng.standard_normal(size=(count, covariance.rank))
            return covariance.apply(z)
        with self._lock:
            cached = self._base_cache.get(tag)
            have = 0 if cached is None else cached.shape[0]
            if have < count:
                z = self._rng.standard_normal(size=(count - have, covariance.rank))
                fresh = covariance.apply(z)
                cached = freeze(
                    fresh if cached is None else np.concatenate([cached, fresh], axis=0)
                )
                self._base_cache[tag] = cached
            if cached.shape[0] == count:
                # Return the block itself (not a view of it) so repeated
                # same-count requests keep array identity, which callers use
                # as the "draws were reused" signal.
                return cached
            return cached[:count]

    # ------------------------------------------------------------------
    # Scaled draws
    # ------------------------------------------------------------------
    def sample_around(
        self,
        center: np.ndarray,
        n: int,
        N: int,
        count: int,
        tag: str = "default",
    ) -> np.ndarray:
        """Draws from ``N(center, (1/n − 1/N) H⁻¹JH⁻¹)``.

        Used by the Model Accuracy Estimator with ``center = θ_n`` to sample
        plausible full-model parameters θ_N (Corollary 1).
        """
        center = np.asarray(center, dtype=np.float64)
        if center.shape[0] != self._statistics.dimension:
            raise StatisticsError(
                f"center has dimension {center.shape[0]}, statistics expect "
                f"{self._statistics.dimension}"
            )
        alpha = self.alpha(n, N)
        base = self.base_samples(count, tag=tag)
        return center[None, :] + np.sqrt(alpha) * base

    def two_stage_samples(
        self,
        theta0: np.ndarray,
        n0: int,
        n: int,
        N: int,
        count: int,
    ) -> tuple[np.ndarray, np.ndarray]:
        """The Section 4.1 joint draws ``(θ_n,i, θ_N,i)`` given the initial θ_0.

        Stage one samples ``θ_n,i ~ N(θ_0, α₁ Cov)`` with ``α₁ = 1/n₀ − 1/n``;
        stage two samples ``θ_N,i ~ N(θ_n,i, α₂ Cov)`` with
        ``α₂ = 1/n − 1/N``.  The two stages use independent base draws.
        """
        theta0 = np.asarray(theta0, dtype=np.float64)
        if n < n0:
            raise StatisticsError(f"candidate sample size n={n} is below n0={n0}")
        alpha1 = self.alpha(n0, n) if n > n0 else 0.0
        alpha2 = self.alpha(n, N)
        stage_one = self.base_samples(count, tag="stage-one")
        stage_two = self.base_samples(count, tag="stage-two")
        theta_n = theta0[None, :] + np.sqrt(alpha1) * stage_one
        theta_N = theta_n + np.sqrt(alpha2) * stage_two
        return theta_n, theta_N
