"""Probabilistic guarantee helpers: Lemma 1 and Lemma 2 of the paper.

* **Lemma 2** converts the Monte-Carlo estimate of
  ``Pr[v(m_n) ≤ ε]`` over k sampled full-model parameters into a
  conservative statement that accounts for the sampling error of the
  estimate itself (via Hoeffding's inequality).  The required empirical
  quantile level is ``(1 − δ)/0.95 + sqrt(log 0.95 / (−2k))``.

* **Lemma 1** converts the model-difference guarantee into a bound on the
  *full* model's generalisation error given the approximate model's
  observed generalisation error: ``ε_N ≤ ε_g + ε − ε_g·ε``.

Note on the quantile level: with the paper's default δ = 0.05 the level
``(1 − δ)/0.95`` is exactly 1, and the Hoeffding slack pushes it above 1.
A level above 1 cannot be met by any finite sample, so — as any practical
implementation must — we cap the level at 1.0, which corresponds to taking
the maximum of the sampled differences (the most conservative choice the
empirical distribution supports).  The cap is made explicit here so the
behaviour is easy to audit and test.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import DEFAULT_CONFIDENCE_SLACK
from repro.exceptions import ContractError


def conservative_quantile_level(
    delta: float,
    n_samples: int,
    slack: float = DEFAULT_CONFIDENCE_SLACK,
) -> float:
    """The empirical-quantile level required by Lemma 2, capped at 1.

    Parameters
    ----------
    delta:
        Contract violation probability δ.
    n_samples:
        Number k of i.i.d. parameter samples used in the Monte-Carlo
        estimate.
    slack:
        The 0.95 constant from Lemma 2 (how the overall confidence is split
        between the quantile statement and the Hoeffding bound).
    """
    if not 0.0 < delta < 1.0:
        raise ContractError(f"delta must lie in (0, 1), got {delta}")
    if n_samples < 1:
        raise ContractError("at least one parameter sample is required")
    if not 0.0 < slack < 1.0:
        raise ContractError("slack must lie in (0, 1)")
    hoeffding = math.sqrt(math.log(slack) / (-2.0 * n_samples))
    level = (1.0 - delta) / slack + hoeffding
    return min(level, 1.0)


def conservative_upper_bound(
    values: np.ndarray,
    delta: float,
    slack: float = DEFAULT_CONFIDENCE_SLACK,
    assume_sorted: bool = False,
) -> float:
    """Return the conservative ε for observed model differences ``values``.

    This is the Model Accuracy Estimator's final step (Section 3.3): find
    the smallest ε such that the required fraction of sampled differences
    falls below it.  With the level capped at 1 this is the maximum of the
    sampled values.

    ``assume_sorted`` skips the internal sort; the estimation session caches
    ascending difference vectors per (θ, n, N) and answers every (ε, δ)
    contract against them by pure quantile lookup.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise ContractError("values must be a non-empty 1-D array")
    level = conservative_quantile_level(delta, values.size, slack)
    if level >= 1.0:
        return float(values[-1] if assume_sorted else values.max())
    sorted_values = values if assume_sorted else np.sort(values)
    # Smallest value whose empirical CDF reaches the level ("higher"
    # interpolation keeps the bound conservative).
    index = int(math.ceil(level * values.size)) - 1
    index = min(max(index, 0), values.size - 1)
    return float(sorted_values[index])


def satisfies_probability_threshold(
    values: np.ndarray,
    epsilon: float,
    delta: float,
    slack: float = DEFAULT_CONFIDENCE_SLACK,
) -> bool:
    """Check whether the sampled differences certify ``Pr[v ≤ ε] ≥ 1 − δ``.

    Used by the Sample Size Estimator (Equation (8) with the Lemma 2
    correction): the empirical fraction of sampled differences below ε must
    reach the conservative level.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ContractError("values must be non-empty")
    level = conservative_quantile_level(delta, values.size, slack)
    fraction = float(np.mean(values <= epsilon))
    return fraction >= level


def generalization_error_bound(approx_generalization_error: float, epsilon: float) -> float:
    """Lemma 1: bound on the full model's generalisation error.

    Given the approximate model's generalisation error ε_g and the contract
    bound ε on the prediction difference, the full model's generalisation
    error is at most ``ε_g + ε − ε_g·ε`` with probability at least 1 − δ.
    """
    if not 0.0 <= approx_generalization_error <= 1.0:
        raise ContractError("generalisation error must lie in [0, 1]")
    if not 0.0 <= epsilon <= 1.0:
        raise ContractError("epsilon must lie in [0, 1]")
    return approx_generalization_error + epsilon - approx_generalization_error * epsilon
