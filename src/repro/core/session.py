"""Contract-serving estimation sessions.

A serving deployment answers many (ε, δ) approximation contracts against
the *same* initial model: the paper trains at most two models per contract,
but everything the estimators need — the initial model m_0, the factored
H/J statistics, the parameter sampler's cached base draws, and the sampled
model-difference distribution — is *contract-independent*.  An
:class:`EstimationSession` computes those once and serves any number of
contracts from them:

* the sorted sampled-difference vector for each (θ, n, N) triple is cached,
  so a repeat contract against the same model is answered by a pure
  conservative-quantile lookup (:func:`repro.core.guarantees.conservative_upper_bound`
  with ``assume_sorted=True``) — **zero new model evaluations, zero GEMMs**;
* models trained for one contract are cached by sample size and reused by
  any later contract that lands on the same n;
* all holdout evaluations stream through the sharded diff engine
  (:mod:`repro.evaluation.streaming`), so memory stays O(k · block).

The caches are thread-safe bounded LRUs (:mod:`repro.core.caching`):
``answer()`` / ``train_to()`` / ``sorted_differences()`` may be called from
a thread pool, concurrent misses for the same key run the computation once
(single-flight), and :meth:`EstimationSession.cache_stats` exposes
hit/miss/eviction counters per cache.  Capacity defaults come from
``repro.config`` (``DEFAULT_SESSION_DIFF_CACHE_ENTRIES`` etc.) and can be
overridden per session; ``None`` means unbounded.

Layer boundaries (see ``docs/architecture.md``)::

    BlinkML (facade) → EstimationSession → estimators → streaming engine → model specs

:class:`repro.core.coordinator.BlinkML` is a thin facade: each ``train()``
call builds a fresh single-use session, which reproduces the paper's
one-shot workflow exactly.  Long-lived serving callers construct the
session directly and call :meth:`EstimationSession.answer` /
:meth:`EstimationSession.train_to` per contract.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from collections.abc import Hashable, Sequence
from dataclasses import dataclass
from typing import cast

import numpy as np

from repro.config import (
    DEFAULT_DELTA,
    DEFAULT_INITIAL_SAMPLE_SIZE,
    DEFAULT_NUM_PARAMETER_SAMPLES,
    DEFAULT_SESSION_DIFF_CACHE_BYTES,
    DEFAULT_SESSION_DIFF_CACHE_ENTRIES,
    DEFAULT_SESSION_MODEL_CACHE_ENTRIES,
    DEFAULT_SESSION_SIZE_CACHE_ENTRIES,
    DEFAULT_SIZE_SEARCH_PROBE_BATCH,
    validate_delta,
)
from repro.core.accuracy import AccuracyEstimate, ModelAccuracyEstimator
from repro.core.caching import CacheStats, LRUCache
from repro.core.contract import ApproximationContract
from repro.core.guarantees import conservative_upper_bound
from repro.core.parameter_sampler import ParameterSampler
from repro.core.result import ApproximateTrainingResult, TimingBreakdown
from repro.core.sample_size import SampleSizeEstimate, SampleSizeEstimator
from repro.core.statistics import (
    ModelStatistics,
    StatisticsMethod,
    compute_statistics,
    spec_digest,
)
from repro.data.dataset import Dataset
from repro.data.sampling import UniformSampler
from repro.data.store import ShardedDataset
from repro.data.store.warm_cache import (
    DIFF_KIND,
    SIZE_KIND,
    WarmCacheStats,
    WarmCacheTier,
    array_digest,
    diff_entry_key,
    resolve_warm_cache,
    size_entry_key,
)
from repro.evaluation.streaming import StreamingConfig
from repro.exceptions import BlinkMLError, DataError, SampleSizeError
from repro.linalg.utils import freeze
from repro.models.base import ModelClassSpec, TrainedModel
from repro.obs import get_metrics, maybe_span, obs_enabled, pass_scope

# Serving-latency histograms (repro.obs): observed only when telemetry is
# enabled, labelled by the session's model-spec class so fleets mixing
# model families stay distinguishable in one scrape.
_ANSWER_SECONDS = get_metrics().histogram(
    "repro_session_answer_seconds",
    "Wall time of EstimationSession.answer() — quantile lookup when the "
    "difference vector is cached, one streamed evaluation otherwise.",
    ("session",),
)
_TRAIN_SECONDS = get_metrics().histogram(
    "repro_session_train_seconds",
    "Wall time of one EstimationSession.train_to() call or one "
    "train_to_many() coalesced dispatch.",
    ("session",),
)


@dataclass(frozen=True)
class SessionAnswer:
    """Outcome of answering one contract without training anything new.

    Attributes
    ----------
    contract:
        The (ε, δ) contract that was asked.
    satisfied:
        Whether the session's initial model already meets the contract (in
        which case :meth:`EstimationSession.train_to` would return it
        directly).
    estimate:
        The initial model's accuracy estimate at the contract's δ, computed
        by quantile lookup on the session's cached difference vector.
    from_cache:
        True when this call performed zero model-difference evaluations:
        the difference vector was already cached, was being computed by a
        concurrent caller (single-flight wait), or was the degenerate
        all-zeros vector of the n ≥ N case.  Reported directly by the
        cache's ``get_or_compute``, so it stays accurate no matter how
        other threads interleave.
    """

    contract: ApproximationContract
    satisfied: bool
    estimate: AccuracyEstimate
    from_cache: bool


@dataclass(frozen=True)
class CoalescedTrainOutcome:
    """Outcome of one :meth:`EstimationSession.train_to_many` dispatch.

    Attributes
    ----------
    results:
        One :class:`~repro.core.result.ApproximateTrainingResult` per input
        contract, in input order — each bitwise identical (model θ, sample
        size, ε estimate, probe schedule) to what a serial
        :meth:`EstimationSession.train_to` call would have produced.
    fused_search_passes / serial_search_passes:
        Exact size-search pass accounting from the fused lockstep search
        (:class:`~repro.core.sample_size.FusedSizeSearch`): evaluation
        rounds actually executed versus the rounds the same contracts would
        have cost run back-to-back against this session (warm caches — the
        savings counted here come purely from cross-contract round sharing,
        not from cache effects a serial caller would also enjoy).  Zero /
        zero when every contract was already satisfied or size-cached.
    """

    results: tuple[ApproximateTrainingResult, ...]
    fused_search_passes: int
    serial_search_passes: int

    @property
    def passes_saved(self) -> int:
        """Streamed search passes the coalesced dispatch avoided."""
        return self.serial_search_passes - self.fused_search_passes


@dataclass(frozen=True)
class SessionRefresh:
    """Outcome of one :meth:`EstimationSession.refresh` call.

    Attributes
    ----------
    train_rows_before / train_rows_after / holdout_rows_before /
    holdout_rows_after:
        Row counts around the manifest reload (equal when nothing grew).
    train_changed / holdout_changed:
        Whether each side's content digest actually moved.
    statistics_recomputed:
        True when the session's H/J statistics were re-merged over the
        grown train store (``statistics_scope="train"`` only — sample-scope
        statistics describe the frozen initial sample and stay valid).
    reused_shard_summaries / computed_shard_summaries:
        The sidecar economics of that re-merge: how many per-shard moment
        summaries were loaded versus computed.  Refresh cost is O(new
        shards) precisely when ``reused`` covers the old shards.
    reanswered:
        Fresh :class:`SessionAnswer` for every standing contract this
        session has served, re-evaluated against the refreshed data (empty
        when nothing changed).
    """

    train_rows_before: int
    train_rows_after: int
    holdout_rows_before: int
    holdout_rows_after: int
    train_changed: bool
    holdout_changed: bool
    statistics_recomputed: bool
    reused_shard_summaries: int
    computed_shard_summaries: int
    reanswered: tuple[SessionAnswer, ...]

    @property
    def changed(self) -> bool:
        return self.train_changed or self.holdout_changed


class EstimationSession:
    """Owns one initial model and serves any number of (ε, δ) contracts.

    Construction runs steps 1–2 of the coordinator workflow (Section 2.3)
    once: draw D0, train m_0, compute the H/J statistics, build the shared
    :class:`~repro.core.parameter_sampler.ParameterSampler`.  Everything
    after that is per-contract and served from caches wherever possible.

    Parameters
    ----------
    spec / train / holdout:
        The model class, full training data D (size N), and the holdout set
        used only for estimating prediction differences.  Both datasets may
        be in-memory :class:`Dataset` objects or out-of-core
        :class:`~repro.data.store.ShardedDataset` stores: a sharded train
        set is sampled by index (only the drawn rows are ever gathered into
        memory), and a sharded holdout streams through the diff engine as
        zero-copy memory-mapped blocks — row *data* is never materialised.
        Caveat: the nested-sampling machinery still keeps an O(N) *index*
        permutation (8 bytes per train row — see
        :class:`~repro.data.sampling.UniformSampler`), so train-set scale
        is bounded by index memory, holdout scale by disk alone.
    initial_sample_size / n_parameter_samples / statistics_method /
    optimizer / optimizer_kwargs:
        As on :class:`repro.core.coordinator.BlinkML`.
    streaming:
        Sharding configuration forwarded to both estimators (``None`` uses
        the module default).
    probe_batch:
        Candidate sizes per stacked sample-size-search pass (ROADMAP
        "batched two-stage probes").
    rng:
        Seed or ``numpy.random.Generator``.  The facade passes its own
        generator so ``BlinkML.train()`` consumes randomness in exactly the
        order the monolithic coordinator did.
    diff_cache_entries / diff_cache_bytes / model_cache_entries /
    size_cache_entries:
        LRU bounds for the three session caches (``None`` = unbounded);
        defaults come from :mod:`repro.config`.  The initial model m_0 is
        pinned outside the model cache and can never be evicted.
    warm_cache:
        Optional cross-process warm tier
        (:class:`~repro.data.store.warm_cache.WarmCacheTier`) persisted
        beneath the diff and size caches: an in-memory miss probes the
        tier's digest-keyed ``.npz`` artifacts before computing, and fresh
        computes are written behind, so a restarted process answers repeat
        contracts with zero streamed passes.  Accepts a tier instance, a
        directory path (shared per-path within the process), ``None`` /
        ``True`` to consult ``REPRO_WARM_CACHE_DIR`` /
        ``DEFAULT_WARM_CACHE_DIR`` (disabled when unset), or ``False`` to
        force the cold path regardless of environment.  Entry keys fold in
        the spec / holdout / θ digests *and* a digest of the sampler's base
        draws, so equal keys imply bitwise-identical Monte-Carlo inputs —
        a warm hit returns exactly the bytes a cold compute would produce.
    """

    def __init__(
        self,
        spec: ModelClassSpec,
        train: Dataset | ShardedDataset,
        holdout: Dataset | ShardedDataset,
        *,
        initial_sample_size: int = DEFAULT_INITIAL_SAMPLE_SIZE,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
        statistics_method: StatisticsMethod | str = StatisticsMethod.OBSERVED_FISHER,
        statistics_scope: str = "sample",
        optimizer: str | None = None,
        optimizer_kwargs: dict | None = None,
        streaming: StreamingConfig | None = None,
        probe_batch: int = DEFAULT_SIZE_SEARCH_PROBE_BATCH,
        rng: np.random.Generator | int | None = None,
        diff_cache_entries: int | None = DEFAULT_SESSION_DIFF_CACHE_ENTRIES,
        diff_cache_bytes: int | None = DEFAULT_SESSION_DIFF_CACHE_BYTES,
        model_cache_entries: int | None = DEFAULT_SESSION_MODEL_CACHE_ENTRIES,
        size_cache_entries: int | None = DEFAULT_SESSION_SIZE_CACHE_ENTRIES,
        warm_cache: WarmCacheTier | str | os.PathLike[str] | bool | None = None,
    ):
        if holdout.n_rows == 0:
            raise DataError("holdout set must not be empty")
        if statistics_scope not in ("sample", "train"):
            raise BlinkMLError(
                f"statistics_scope must be 'sample' or 'train', got "
                f"{statistics_scope!r}"
            )
        self.spec = spec
        # Label streamed passes / latency series are attributed to: the
        # model-spec class name distinguishes sessions in a mixed fleet
        # without leaking dataset contents into metric labels.
        self._session_label = type(spec).__name__
        self.train_data = train
        self.holdout = holdout
        self.statistics_method = StatisticsMethod(statistics_method)
        self.statistics_scope = statistics_scope
        self._optimizer = optimizer
        self._optimizer_kwargs = dict(optimizer_kwargs or {})
        probe_batch = int(probe_batch)
        if probe_batch < 1:
            raise SampleSizeError(
                f"probe_batch must be at least 1, got {probe_batch} "
                "(1 = paper bisection; larger values stack candidates per "
                "size-search pass)"
            )
        self._probe_batch = probe_batch
        self._n_parameter_samples = int(n_parameter_samples)
        self._streaming = streaming
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

        self._N = train.n_rows  # guarded-by: _refresh_lock
        self._n0 = min(int(initial_sample_size), self._N)
        self._data_sampler = UniformSampler(train, rng=self._rng)  # guarded-by: _refresh_lock

        # Step 1: initial model m_0 on D0 (once per session).
        start = time.perf_counter()
        initial_data = self._data_sampler.nested_sample(self._n0)
        initial_model = spec.fit(
            initial_data, method=optimizer, **self._optimizer_kwargs
        )
        self._initial_training_seconds = time.perf_counter() - start

        # Step 2: H/J statistics at θ_0 and the shared parameter sampler.
        # Scope "sample" (default, the paper's workflow) evaluates them on
        # the frozen initial sample D0; scope "train" streams them over the
        # full train source — with a sharded store this persists per-shard
        # sidecar summaries, which is what makes refresh() after an append
        # O(new shards) instead of a cold rebuild.
        self._statistics = self._compute_scope_statistics(  # guarded-by: _refresh_lock
            initial_model.theta, initial_data
        )
        self._parameter_sampler = ParameterSampler(self._statistics, rng=self._rng)  # guarded-by: _refresh_lock
        self._accuracy_estimator = ModelAccuracyEstimator(
            spec, holdout, n_parameter_samples=n_parameter_samples, streaming=streaming
        )
        self._size_estimator = SampleSizeEstimator(
            spec, holdout, n_parameter_samples=n_parameter_samples, streaming=streaming
        )

        # Caches: sorted difference vectors per (θ-digest, n, N), trained
        # models per sample size, and sample-size search outcomes per (ε, δ)
        # so a repeated contract is served without re-running the search.
        # All three are thread-safe bounded LRUs with single-flight computes
        # (repro.core.caching); m_0 lives only in its pinned attribute —
        # never in the model cache — so eviction can never lose it
        # (_train_cached short-circuits n == n0 before consulting the cache).
        self._initial_model = initial_model
        # Warm tier beneath the diff and size caches: digest-keyed on-disk
        # artifacts shared across restarts and co-located processes.  Keys
        # fold in a digest of the sampler's base draws — building a key
        # *draws* those frozen blocks, which keeps RNG consumption identical
        # between a warm hit and the cold compute it replaces.
        self._warm_cache = resolve_warm_cache(warm_cache)
        self._spec_digest = spec_digest(spec)
        self._diff_cache = LRUCache(  # repro-lint: frozen-cache
            "diff",
            max_entries=diff_cache_entries,
            max_bytes=diff_cache_bytes,
            sizeof=lambda vector: int(vector.nbytes),
            warm_tier=None if self._warm_cache is None else _DiffWarmAdapter(self),
        )
        self._model_cache = LRUCache(
            "model",
            max_entries=model_cache_entries,
            sizeof=lambda model: int(model.theta.nbytes),
        )
        self._size_cache = LRUCache(
            "size",
            max_entries=size_cache_entries,
            warm_tier=None if self._warm_cache is None else _SizeWarmAdapter(self),
        )
        # Shared read-only zeros vector for the degenerate n >= N estimate:
        # the full model differs from itself by exactly zero, so there is
        # nothing to sample and nothing worth a per-n cache entry.
        self._full_data_differences = freeze(  # repro-lint: frozen-attr
            np.zeros(self._n_parameter_samples, dtype=np.float64)
        )
        # The session-construction costs (initial training, statistics) are
        # reported in the first train_to() result only; later results from
        # the same session report them as zero so aggregating timings across
        # contracts does not double-count the amortised one-time work.  The
        # lock makes the claim-once race-free under concurrent train_to().
        self._construction_costs_reported = False  # guarded-by: _construction_costs_lock
        self._construction_costs_lock = threading.Lock()
        # Serving-time bookkeeping for the cross-session registry
        # (repro.core.registry): when this session last served a request
        # (monotonic clock; plain float writes are atomic under the GIL, so
        # no lock is needed for a freshness heuristic).
        self._last_used_at = time.monotonic()
        # Standing contracts: every (ε, δ) this session has been asked,
        # insertion-ordered, so refresh() can re-answer them against grown
        # data.  Guarded by its own lock (answer() runs from thread pools).
        self._standing_contracts: dict[ApproximationContract, None] = {}  # guarded-by: _standing_contracts_lock
        self._standing_contracts_lock = threading.Lock()
        # refresh() is serialized: concurrent refreshes would race the
        # sampler / statistics swaps against each other.  The swapped state
        # itself — N, the nested sampler, the statistics and the parameter
        # sampler derived from them — may therefore only be *mutated* under
        # this lock (reads are lock-free: each is an atomic reference swap
        # and every serving path tolerates either the old or new snapshot).
        self._refresh_lock = threading.Lock()

    def _compute_scope_statistics(
        self, theta: np.ndarray, initial_data: Dataset, persist: bool = True
    ) -> ModelStatistics:
        """H/J statistics at ``theta`` on the session's configured scope."""
        source = self.train_data if self.statistics_scope == "train" else initial_data
        with pass_scope("statistics", session=self._session_label):
            return compute_statistics(
                self.spec,
                theta,
                source,
                method=self.statistics_method,
                streaming=self._streaming,
                persist=persist,
            )

    # ------------------------------------------------------------------
    # Registry integration: byte accounting, resizable caps, idle time
    # ------------------------------------------------------------------
    # How a registry-assigned byte budget is split across the three caches.
    # The sorted-difference vectors dominate (k float64s per (θ, n) pair);
    # models hold one θ each; size-search results are tiny dataclasses.
    CACHE_BUDGET_SPLIT = {"diff": 0.70, "model": 0.20, "size": 0.10}

    def cache_bytes(self) -> int:
        """Approximate bytes currently held across the three session caches."""
        return sum(stats.bytes for stats in self.cache_stats().values())

    def cache_byte_caps(self) -> dict[str, int | None]:
        """The current per-cache byte caps (``None`` = unbounded)."""
        return {
            "diff": self._diff_cache.max_bytes,
            "model": self._model_cache.max_bytes,
            "size": self._size_cache.max_bytes,
        }

    def resize_cache_budget(self, total_bytes: int) -> None:
        """Re-cap the session's caches to a combined ``total_bytes`` budget.

        Called by :class:`repro.core.registry.SessionRegistry` whenever the
        fleet grows or shrinks: the global pool is divided among member
        sessions and each session re-splits its share across its caches
        according to :data:`CACHE_BUDGET_SPLIT`.  Shrinking evicts down
        immediately (m_0 is pinned outside the model cache and can never be
        evicted; evicted entries recompute bitwise-identically on next use).
        """
        total_bytes = int(total_bytes)
        if total_bytes < 1:
            raise BlinkMLError(f"cache budget must be >= 1 byte, got {total_bytes}")
        self._diff_cache.resize(
            max_bytes=max(1, int(total_bytes * self.CACHE_BUDGET_SPLIT["diff"]))
        )
        self._model_cache.resize(
            max_bytes=max(1, int(total_bytes * self.CACHE_BUDGET_SPLIT["model"]))
        )
        self._size_cache.resize(
            max_bytes=max(1, int(total_bytes * self.CACHE_BUDGET_SPLIT["size"]))
        )

    @property
    def last_used_at(self) -> float:
        """Monotonic-clock timestamp of the last served request."""
        return self._last_used_at

    @property
    def idle_seconds(self) -> float:
        """Seconds since this session last served a request."""
        return time.monotonic() - self._last_used_at

    def _touch(self) -> None:
        self._last_used_at = time.monotonic()

    # ------------------------------------------------------------------
    # Session-owned state
    # ------------------------------------------------------------------
    @property
    def initial_model(self) -> TrainedModel:
        return self._initial_model

    @property
    def initial_sample_size(self) -> int:
        return self._n0

    @property
    def full_size(self) -> int:
        return self._N

    @property
    def statistics(self) -> ModelStatistics:
        return self._statistics

    @property
    def parameter_sampler(self) -> ParameterSampler:
        return self._parameter_sampler

    # ------------------------------------------------------------------
    # Cache introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, CacheStats]:
        """Hit/miss/eviction snapshots of the three session caches."""
        return {
            "diff": self._diff_cache.stats(),
            "model": self._model_cache.stats(),
            "size": self._size_cache.stats(),
        }

    @property
    def diff_cache_hits(self) -> int:
        """Total difference-vector cache hits (see :meth:`cache_stats`)."""
        return self._diff_cache.stats().hits

    @property
    def diff_cache_misses(self) -> int:
        """Total difference-vector cache misses (see :meth:`cache_stats`)."""
        return self._diff_cache.stats().misses

    # ------------------------------------------------------------------
    # Warm tier: cross-process persistent artifacts beneath the LRUs
    # ------------------------------------------------------------------
    @property
    def warm_cache(self) -> WarmCacheTier | None:
        """The cross-process warm tier, or ``None`` when disabled."""
        return self._warm_cache

    def warm_cache_stats(self) -> WarmCacheStats | None:
        """Hit/miss/quarantine snapshot of the warm tier (``None`` = off)."""
        return None if self._warm_cache is None else self._warm_cache.stats()

    def _warm_draws_digest(self, tags: tuple[str, ...]) -> str:
        """Digest of the sampler's frozen base-draw blocks for ``tags``.

        Folding the *actual draws* into warm keys is what makes equal keys
        imply bitwise-identical Monte-Carlo inputs: the blocks bake in both
        the H/J statistics and the RNG seed.  Materialising them here (the
        probe path) rather than inside the compute keeps RNG consumption
        identical whether the entry hits or misses — blocks are per-tag
        frozen caches, so the later compute reuses these exact draws.
        """
        blocks = [
            self._parameter_sampler.base_samples(self._n_parameter_samples, tag=tag)
            for tag in tags
        ]
        return array_digest(*blocks)

    def _warm_diff_key(self, key: Hashable) -> str:
        """Warm-tier key for a diff-cache key ``(θ-digest, n, N)``."""
        theta_digest_bytes, n, N = cast("tuple[bytes, int, int]", key)
        return diff_entry_key(
            spec_digest=self._spec_digest,
            holdout_digest=self.holdout.content_digest(),
            draws_digest=self._warm_draws_digest(("accuracy",)),
            theta_digest=theta_digest_bytes.hex(),
            n=n,
            N=N,
            k=self._n_parameter_samples,
        )

    def _warm_size_key(self, key: Hashable) -> str:
        """Warm-tier key for a size-cache key ``(ε, δ)``."""
        epsilon, delta = cast("tuple[float, float]", key)
        return size_entry_key(
            spec_digest=self._spec_digest,
            holdout_digest=self.holdout.content_digest(),
            draws_digest=self._warm_draws_digest(("stage-one", "stage-two")),
            theta_digest=self._theta_digest(self._initial_model.theta).hex(),
            n0=self._n0,
            N=self._N,
            k=self._n_parameter_samples,
            probe_batch=self._probe_batch,
            epsilon=epsilon,
            delta=delta,
        )

    # ------------------------------------------------------------------
    # Cached difference vectors and contract answers
    # ------------------------------------------------------------------
    @staticmethod
    def _theta_digest(theta: np.ndarray) -> bytes:
        payload = np.ascontiguousarray(theta, dtype=np.float64).tobytes()
        return hashlib.blake2b(payload, digest_size=16).digest()

    def _sorted_differences(self, theta: np.ndarray, n: int) -> tuple[np.ndarray, bool]:
        """The cached ascending difference vector plus the hit/miss fact.

        The boolean is the *per-call* answer from the cache's single-flight
        compute (True = this call ran zero streamed GEMMs), never inferred
        from the shared counters, which other threads advance concurrently.
        """
        n = int(n)
        if n >= self._N:
            # The "approximate" model is the full model: the difference
            # vector is identically zero for every such n, so short-circuit
            # with one shared read-only vector instead of polluting the
            # cache with an entry per distinct n.
            return self._full_data_differences, True
        key = (self._theta_digest(theta), n, self._N)
        with pass_scope("accuracy", session=self._session_label):
            return self._diff_cache.get_or_compute(
                key,
                lambda: freeze(
                    self._accuracy_estimator.sorted_differences(
                        theta, n, self._N, self._parameter_sampler
                    )
                ),
            )

    def sorted_differences(self, theta: np.ndarray, n: int) -> np.ndarray:
        """The ascending sampled-difference vector for (θ, n, N), cached.

        First call per key evaluates the k streamed model diffs (exactly
        once, even under concurrent requests for the same key); every later
        call — any δ, any ε — is a cache lookup returning the same
        read-only array.
        """
        self._touch()
        return self._sorted_differences(theta, n)[0]

    def _accuracy_estimate(
        self, theta: np.ndarray, n: int, delta: float
    ) -> tuple[AccuracyEstimate, bool]:
        validate_delta(delta)
        self._touch()
        start = time.perf_counter()
        n = int(n)
        differences, from_cache = self._sorted_differences(theta, n)
        if n >= self._N:
            epsilon = 0.0
        else:
            epsilon = conservative_upper_bound(differences, delta, assume_sorted=True)
        estimate = AccuracyEstimate(
            epsilon=float(epsilon),
            delta=delta,
            sampled_differences=differences,
            estimation_seconds=time.perf_counter() - start,
        )
        return estimate, from_cache

    def accuracy_estimate(
        self, theta: np.ndarray, n: int, delta: float = DEFAULT_DELTA
    ) -> AccuracyEstimate:
        """Accuracy estimate for any (θ, n) — quantile lookup when cached."""
        return self._accuracy_estimate(theta, n, delta)[0]

    def answer(self, contract: ApproximationContract) -> SessionAnswer:
        """Does the session's initial model satisfy ``contract``?

        After the first contract (any ε, δ) the answer involves zero model
        evaluations: the cached sorted vector plus one quantile lookup.
        Safe to call from a thread pool; concurrent first requests for the
        same vector trigger exactly one computation (single-flight) and the
        waiting callers report ``from_cache=True``.
        """
        with self._standing_contracts_lock:
            self._standing_contracts[contract] = None
        if not obs_enabled():
            return self._answer_impl(contract)
        start = time.perf_counter()
        with maybe_span(
            "session.answer",
            session=self._session_label,
            epsilon=contract.epsilon,
            delta=contract.delta,
        ):
            result = self._answer_impl(contract)
        _ANSWER_SECONDS.observe(
            time.perf_counter() - start, session=self._session_label
        )
        return result

    def _answer_impl(self, contract: ApproximationContract) -> SessionAnswer:
        estimate, from_cache = self._accuracy_estimate(
            self.initial_model.theta, self._n0, contract.delta
        )
        satisfied = estimate.epsilon <= contract.epsilon or self._n0 >= self._N
        return SessionAnswer(
            contract=contract,
            satisfied=satisfied,
            estimate=estimate,
            from_cache=from_cache,
        )

    def answer_many(
        self, contracts: "Sequence[ApproximationContract]"
    ) -> tuple[SessionAnswer, ...]:
        """Answer a batch of contracts, in order, against the initial model.

        Every answer keys the same (θ_0, n_0, N) difference vector, so a
        batch of B contracts costs at most one streamed evaluation no
        matter how many distinct (ε, δ) pairs it mixes — the first miss
        computes the vector, every other member is a quantile lookup.
        Order-independent and bitwise identical to B serial
        :meth:`answer` calls (it *is* B serial calls; the method exists so
        the coalescing batcher has a single dispatch surface).
        """
        return tuple(self.answer(contract) for contract in contracts)

    # ------------------------------------------------------------------
    # Data growth
    # ------------------------------------------------------------------
    def refresh(self) -> SessionRefresh:
        """Adopt appended train/holdout data and re-answer standing contracts.

        The serving path for continuously arriving data: after a writer
        appends shards to a store this session reads
        (:meth:`~repro.data.store.ShardStore.append_shards`), ``refresh()``
        reloads the manifests, folds the new shards' statistics summaries
        into the session's :class:`ModelStatistics` (when
        ``statistics_scope="train"`` — the per-shard sidecar index makes
        this O(new shards), and the merged result is bitwise identical to a
        cold rebuild over the grown store), invalidates every cache whose
        contents depended on the grown data, and re-answers each standing
        contract.  In-memory datasets have no reload surface and report
        unchanged.  Serialized: concurrent refreshes run one at a time.
        """
        with self._refresh_lock:
            train_rows_before = self._N
            holdout_rows_before = self.holdout.n_rows

            reload_train = getattr(self.train_data, "reload", None)
            train_changed = bool(reload_train()) if callable(reload_train) else False
            reload_holdout = getattr(self.holdout, "reload", None)
            holdout_changed = (
                bool(reload_holdout()) if callable(reload_holdout) else False
            )

            statistics_recomputed = False
            reused = computed = 0
            if train_changed:
                self._N = self.train_data.n_rows
                # Fresh nested sampling over the grown index space; trained
                # models / difference vectors / size searches all baked the
                # old N into their keys or contents, so they go wholesale.
                self._data_sampler = UniformSampler(self.train_data, rng=self._rng)
                self._diff_cache.clear()
                self._model_cache.clear()
                self._size_cache.clear()
                if self.statistics_scope == "train":
                    self._statistics = self._compute_scope_statistics(
                        self._initial_model.theta, None
                    )
                    self._parameter_sampler = ParameterSampler(
                        self._statistics, rng=self._rng
                    )
                    statistics_recomputed = True
                    reused = self._statistics.reused_shard_summaries
                    computed = self._statistics.computed_shard_summaries
            if holdout_changed and not train_changed:
                # The estimators hold the (mutated in place) holdout, so
                # only the cached evaluation products need invalidating.
                self._diff_cache.clear()
                self._size_cache.clear()

            reanswered: tuple[SessionAnswer, ...] = ()
            if train_changed or holdout_changed:
                with self._standing_contracts_lock:
                    contracts = list(self._standing_contracts)
                reanswered = tuple(self.answer(contract) for contract in contracts)

            return SessionRefresh(
                train_rows_before=train_rows_before,
                train_rows_after=self._N,
                holdout_rows_before=holdout_rows_before,
                holdout_rows_after=self.holdout.n_rows,
                train_changed=train_changed,
                holdout_changed=holdout_changed,
                statistics_recomputed=statistics_recomputed,
                reused_shard_summaries=reused,
                computed_shard_summaries=computed,
                reanswered=reanswered,
            )

    # ------------------------------------------------------------------
    # Full workflow per contract
    # ------------------------------------------------------------------
    def _train_cached(self, n: int, theta0: np.ndarray | None) -> tuple[TrainedModel, float, bool]:
        """Train (or reuse) the model for sample size n; returns seconds + hit flag.

        Single-flight: two contracts landing concurrently on the same n
        train one model between them.  n0 is pinned to the initial model so
        an eviction can never force a retrain that would drift from m_0.
        """
        n = int(n)
        if n == self._n0:
            return self._initial_model, 0.0, True
        elapsed_holder: list[float] = []

        def train() -> TrainedModel:
            start = time.perf_counter()
            data = self._data_sampler.nested_sample(n)
            model = self.spec.fit(
                data, method=self._optimizer, theta0=theta0, **self._optimizer_kwargs
            )
            elapsed_holder.append(time.perf_counter() - start)
            return model

        model, hit = self._model_cache.get_or_compute(n, train)
        return model, (elapsed_holder[0] if elapsed_holder else 0.0), hit

    def _claim_construction_timings(self) -> TimingBreakdown:
        """A fresh timing record, carrying the one-time construction costs at most once.

        The session-construction costs (initial training, statistics) are
        claimed by exactly one result per session — race-free under
        concurrent ``train_to`` — so aggregating timings across contracts
        never double-counts the amortised work.
        """
        timings = TimingBreakdown()
        with self._construction_costs_lock:
            report_construction = not self._construction_costs_reported
            self._construction_costs_reported = True
        if report_construction:
            timings.initial_training_seconds = self._initial_training_seconds
            timings.statistics_seconds = self._statistics.computation_seconds
        return timings

    def _initial_model_result(
        self,
        contract: ApproximationContract,
        answer: SessionAnswer,
        timings: TimingBreakdown,
        metadata: dict,
    ) -> ApproximateTrainingResult:
        """The early-return result when m_0 already satisfies the contract."""
        return ApproximateTrainingResult(
            model=self.initial_model,
            contract=contract,
            estimated_epsilon=answer.estimate.epsilon,
            sample_size=self._n0,
            initial_sample_size=self._n0,
            full_size=self._N,
            used_initial_model=True,
            estimated_minimum_sample_size=self._n0,
            timings=timings,
            metadata=metadata,
        )

    def train_to(
        self,
        contract: ApproximationContract,
        *,
        recompute_at_theta_n: bool = False,
    ) -> ApproximateTrainingResult:
        """Train an approximate model satisfying ``contract`` (Section 2.3).

        The workflow of the monolithic coordinator, with every
        contract-independent quantity served from the session: statistics
        and the initial model are never recomputed, difference vectors are
        cached per (θ, n, N), and final models are cached per sample size.

        ``recompute_at_theta_n=True`` re-evaluates the H/J statistics at the
        *final* model's θ_n (the paper reuses the θ_0 statistics for
        efficiency) and reports the bound those tighter statistics yield as
        ``estimated_epsilon``; the result metadata records both bounds and
        their difference (``bound_tightening``).  The extra cost is one
        streamed statistics pass plus one fresh difference-vector sample —
        skipped automatically when the initial model already satisfies the
        contract or the search fell back to the full data (ε = 0 either way).
        """
        if not obs_enabled():
            return self._train_to_impl(contract, recompute_at_theta_n)
        start = time.perf_counter()
        with maybe_span(
            "session.train_to",
            session=self._session_label,
            epsilon=contract.epsilon,
            delta=contract.delta,
        ):
            result = self._train_to_impl(contract, recompute_at_theta_n)
        _TRAIN_SECONDS.observe(
            time.perf_counter() - start, session=self._session_label
        )
        return result

    def _train_to_impl(
        self, contract: ApproximationContract, recompute_at_theta_n: bool
    ) -> ApproximateTrainingResult:
        self._touch()
        timings = self._claim_construction_timings()
        answer = self.answer(contract)
        timings.accuracy_estimation_seconds += answer.estimate.estimation_seconds
        metadata = {"statistics_method": self.statistics_method.value}
        if answer.satisfied:
            return self._initial_model_result(contract, answer, timings, metadata)

        # Step 3: smallest n satisfying the contract (batched probes; the
        # accuracy estimate above already rejected n0, so skip re-probing it).
        # The search depends only on (ε, δ), so repeats are served cached;
        # single-flight ensures concurrent requests for the same contract
        # run one search between them.
        size_key = (contract.epsilon, contract.delta)

        def run_search() -> SampleSizeEstimate:
            with pass_scope("size-search", session=self._session_label):
                return self._size_estimator.estimate(
                    self.initial_model.theta,
                    n0=self._n0,
                    N=self._N,
                    contract=contract,
                    statistics=self._statistics,
                    sampler=self._parameter_sampler,
                    skip_lower_probe=True,
                    probe_batch=self._probe_batch,
                )

        size_estimate, size_cache_hit = self._size_cache.get_or_compute(
            size_key, run_search
        )
        return self._complete_with_size(
            contract,
            size_estimate,
            size_cache_hit,
            timings,
            metadata,
            recompute_at_theta_n,
        )

    def _complete_with_size(
        self,
        contract: ApproximationContract,
        size_estimate: SampleSizeEstimate,
        size_cache_hit: bool,
        timings: TimingBreakdown,
        metadata: dict,
        recompute_at_theta_n: bool,
    ) -> ApproximateTrainingResult:
        """Steps 4+ of the workflow, shared by serial and coalesced dispatch."""
        if not size_cache_hit:
            timings.sample_size_search_seconds = size_estimate.estimation_seconds
        final_n = size_estimate.sample_size

        # Step 4: train m_n on a size-n sample (superset of D0), warm-started
        # from m_0, unless an earlier contract already landed on the same n.
        final_model, training_seconds, model_cache_hit = self._train_cached(
            final_n, theta0=self.initial_model.theta
        )
        timings.final_training_seconds = training_seconds

        # Accuracy estimate of the final model (statistics recomputed at θ_n
        # would be more faithful but the paper reuses the initial-model
        # statistics for efficiency; we follow the cheaper route and expose
        # the re-estimated bound).
        final_estimate = self.accuracy_estimate(
            final_model.theta, final_n, contract.delta
        )
        timings.accuracy_estimation_seconds += final_estimate.estimation_seconds
        estimated_epsilon = final_estimate.epsilon

        if recompute_at_theta_n and final_n < self._N:
            stats_start = time.perf_counter()
            if self.statistics_scope == "train":
                stats_source: Dataset | ShardedDataset = self.train_data
            else:
                stats_source = self._data_sampler.nested_sample(final_n)
            # persist=False: publishing θ_n sidecars would garbage-collect
            # the θ_0 sidecars every later bootstrap of this store reuses.
            with pass_scope("statistics", session=self._session_label):
                stats_n = compute_statistics(
                    self.spec,
                    final_model.theta,
                    stats_source,
                    method=self.statistics_method,
                    streaming=self._streaming,
                    persist=False,
                )
            seed = int.from_bytes(self._theta_digest(final_model.theta)[:8], "little")
            sampler_n = ParameterSampler(stats_n, rng=np.random.default_rng(seed))
            # Bypasses the diff cache deliberately: its key is (θ, n, N),
            # which cannot distinguish a θ_0-statistics vector from this
            # θ_n-statistics one.
            with pass_scope("accuracy", session=self._session_label):
                differences_n = self._accuracy_estimator.sorted_differences(
                    final_model.theta, final_n, self._N, sampler_n, tag="theta_n"
                )
            epsilon_n = float(
                conservative_upper_bound(
                    differences_n, contract.delta, assume_sorted=True
                )
            )
            timings.statistics_seconds += time.perf_counter() - stats_start
            metadata.update(
                {
                    "recomputed_at_theta_n": True,
                    "epsilon_theta0_stats": float(final_estimate.epsilon),
                    "epsilon_theta_n_stats": epsilon_n,
                    "bound_tightening": float(final_estimate.epsilon) - epsilon_n,
                }
            )
            estimated_epsilon = epsilon_n

        metadata.update(
            {
                "size_search_feasible": size_estimate.feasible,
                "size_search_probes": size_estimate.probed_sizes,
                # Satellite contract: an infeasible search must fall back to
                # the full data and say so in the result metadata.
                "trained_on_full_data": final_n >= self._N,
                "model_cache_hit": model_cache_hit,
            }
        )
        return ApproximateTrainingResult(
            model=final_model,
            contract=contract,
            estimated_epsilon=estimated_epsilon,
            sample_size=final_n,
            initial_sample_size=self._n0,
            full_size=self._N,
            used_initial_model=False,
            estimated_minimum_sample_size=final_n,
            timings=timings,
            metadata=metadata,
        )

    def train_to_many(
        self,
        contracts: Sequence[ApproximationContract],
        *,
        recompute_at_theta_n: bool = False,
    ) -> CoalescedTrainOutcome:
        """Serve a batch of contracts with their size searches fused.

        The coalesced counterpart of calling :meth:`train_to` once per
        contract: answers are computed first (one shared difference vector),
        then the *distinct, unsatisfied, not-yet-cached* contracts run one
        fused lockstep search
        (:meth:`~repro.core.sample_size.SampleSizeEstimator.estimate_many`)
        — every active search contributes its round's candidates to a
        single streamed union pass — and finally each request completes
        steps 4+ exactly as serial ``train_to`` would (model training,
        final estimate, metadata), in input order.

        Results are bitwise identical to serial per-contract calls: the
        fused search evaluates each candidate as its own segment (identical
        GEMM shapes and block order to a lone evaluation), the sampler's
        cached base draws make Monte-Carlo vectors order-independent, and
        duplicated contracts resolve through the same single-flight size
        cache a serial repeat would hit.  One exception is timing metadata:
        coalesced members report the shared fused search wall-clock as
        their search cost.

        The returned :class:`CoalescedTrainOutcome` carries the exact
        fused/serial pass accounting (zero/zero when nothing needed a
        search); ``results`` is ordered like ``contracts``.
        """
        contracts = list(contracts)
        if not contracts:
            return CoalescedTrainOutcome(
                results=(), fused_search_passes=0, serial_search_passes=0
            )
        if not obs_enabled():
            return self._train_to_many_impl(contracts, recompute_at_theta_n)
        start = time.perf_counter()
        with maybe_span(
            "session.train_to_many",
            session=self._session_label,
            contracts=len(contracts),
        ) as span:
            outcome = self._train_to_many_impl(contracts, recompute_at_theta_n)
            if span is not None:
                span.set_attribute("fused_passes", outcome.fused_search_passes)
                span.set_attribute("serial_passes", outcome.serial_search_passes)
        _TRAIN_SECONDS.observe(
            time.perf_counter() - start, session=self._session_label
        )
        return outcome

    def _train_to_many_impl(
        self,
        contracts: list[ApproximationContract],
        recompute_at_theta_n: bool,
    ) -> CoalescedTrainOutcome:
        self._touch()

        requests = []
        for contract in contracts:
            timings = self._claim_construction_timings()
            answer = self.answer(contract)
            timings.accuracy_estimation_seconds += answer.estimate.estimation_seconds
            requests.append((contract, answer, timings))

        # The fused search set: distinct (ε, δ) pairs whose answer was
        # unsatisfied, in arrival order.  Pairs already size-cached are
        # filtered inside the runner (membership is checked without
        # touching the hit/miss counters, so accounting matches serial).
        needing: list[ApproximationContract] = []
        seen: set[tuple[float, float]] = set()
        for contract, answer, _ in requests:
            key = (contract.epsilon, contract.delta)
            if not answer.satisfied and key not in seen:
                seen.add(key)
                needing.append(contract)

        fused_passes = 0
        serial_passes = 0
        resolved: dict[tuple[float, float], SampleSizeEstimate] = {}
        cache_hits: dict[tuple[float, float], bool] = {}

        for contract in needing:
            size_key = (contract.epsilon, contract.delta)

            def run_fused(
                pivot: ApproximationContract = contract,
            ) -> SampleSizeEstimate:
                nonlocal fused_passes, serial_passes
                pivot_key = (pivot.epsilon, pivot.delta)
                if pivot_key in resolved:
                    # An earlier leader's fused batch already covered this
                    # pair; hand its estimate to the cache.
                    return resolved[pivot_key]
                batch = [
                    candidate
                    for candidate in needing
                    if (candidate.epsilon, candidate.delta) == pivot_key
                    or (
                        (candidate.epsilon, candidate.delta) not in resolved
                        and (candidate.epsilon, candidate.delta)
                        not in self._size_cache
                    )
                ]
                with pass_scope("size-search", session=self._session_label):
                    outcome = self._size_estimator.estimate_many(
                        self.initial_model.theta,
                        n0=self._n0,
                        N=self._N,
                        contracts=batch,
                        statistics=self._statistics,
                        sampler=self._parameter_sampler,
                        skip_lower_probe=True,
                        probe_batch=self._probe_batch,
                    )
                fused_passes += outcome.fused_passes
                serial_passes += outcome.serial_passes
                for member, estimate in zip(batch, outcome.estimates):
                    resolved[(member.epsilon, member.delta)] = estimate
                return resolved[pivot_key]

            estimate, hit = self._size_cache.get_or_compute(size_key, run_fused)
            resolved[size_key] = estimate
            cache_hits[size_key] = hit

        results = []
        for contract, answer, timings in requests:
            metadata = {"statistics_method": self.statistics_method.value}
            if answer.satisfied:
                results.append(
                    self._initial_model_result(contract, answer, timings, metadata)
                )
                continue
            size_key = (contract.epsilon, contract.delta)
            results.append(
                self._complete_with_size(
                    contract,
                    resolved[size_key],
                    cache_hits[size_key],
                    timings,
                    metadata,
                    recompute_at_theta_n,
                )
            )
        return CoalescedTrainOutcome(
            results=tuple(results),
            fused_search_passes=fused_passes,
            serial_search_passes=serial_passes,
        )


def _size_estimate_payload(estimate: SampleSizeEstimate) -> dict[str, np.ndarray]:
    """Deterministic array payload for a size-search outcome.

    ``estimation_seconds`` is stored as 0.0: warm entries are
    content-addressed, and racing processes must publish byte-identical
    files for last-writer-wins to be benign — wall-clock timing is the one
    field that would differ between otherwise identical searches.
    """
    return {
        "sample_size": np.array(estimate.sample_size, dtype=np.int64),
        "feasible": np.array(estimate.feasible, dtype=np.bool_),
        "n_probability_evaluations": np.array(
            estimate.n_probability_evaluations, dtype=np.int64
        ),
        "probed_sizes": np.asarray(estimate.probed_sizes, dtype=np.int64),
        "estimation_seconds": np.array(0.0, dtype=np.float64),
    }


def _size_estimate_from_payload(
    payload: dict[str, np.ndarray],
) -> SampleSizeEstimate | None:
    """Rebuild a size estimate from a warm entry; ``None`` when malformed.

    Scalars are stored as single-element arrays (the serializer promotes
    0-d arrays to contiguous 1-d), so each is read back through ``ravel``;
    any missing or misshapen member degrades to ``None`` — the caller then
    treats the entry as a miss and simply reruns the search.
    """

    def scalar(name: str) -> np.ndarray:
        values = np.ravel(payload[name])
        if values.shape != (1,):
            raise ValueError(f"warm size entry field {name!r} is not scalar")
        return values[0]

    try:
        return SampleSizeEstimate(
            sample_size=int(scalar("sample_size")),
            feasible=bool(scalar("feasible")),
            n_probability_evaluations=int(scalar("n_probability_evaluations")),
            probed_sizes=tuple(
                int(size) for size in np.ravel(payload["probed_sizes"])
            ),
            estimation_seconds=float(scalar("estimation_seconds")),
        )
    except (KeyError, TypeError, ValueError):
        return None


class _DiffWarmAdapter:
    """Second-tier hook mapping diff-cache keys onto warm-tier entries.

    Installed as the diff cache's ``warm_tier``: an in-memory miss probes
    the persistent tier before streaming the k model diffs, and a fresh
    compute is written behind.  Payload validation (dtype, length) means a
    foreign or truncated entry degrades to a recompute, never a wrong
    answer.  Loaded vectors are frozen, honouring the diff cache's
    read-only invariant.
    """

    __slots__ = ("_session",)

    def __init__(self, session: EstimationSession) -> None:
        self._session = session

    def load(self, key: Hashable) -> np.ndarray | None:
        session = self._session
        tier = session.warm_cache
        if tier is None:  # pragma: no cover - adapter only installed with a tier
            return None
        payload = tier.get(DIFF_KIND, session._warm_diff_key(key))
        if payload is None:
            return None
        vector = payload.get("differences")
        if (
            vector is None
            or vector.dtype != np.float64
            or vector.shape != (session._n_parameter_samples,)
        ):
            return None
        return vector

    def store(self, key: Hashable, value: np.ndarray) -> None:
        session = self._session
        tier = session.warm_cache
        if tier is not None:
            tier.put(DIFF_KIND, session._warm_diff_key(key), {"differences": value})


class _SizeWarmAdapter:
    """Second-tier hook mapping size-cache keys onto warm-tier entries.

    Same contract as :class:`_DiffWarmAdapter` for (ε, δ) search outcomes:
    the dataclass round-trips through a fixed array schema
    (:func:`_size_estimate_payload`), and a malformed payload degrades to a
    miss so the search simply reruns.
    """

    __slots__ = ("_session",)

    def __init__(self, session: EstimationSession) -> None:
        self._session = session

    def load(self, key: Hashable) -> SampleSizeEstimate | None:
        session = self._session
        tier = session.warm_cache
        if tier is None:  # pragma: no cover - adapter only installed with a tier
            return None
        payload = tier.get(SIZE_KIND, session._warm_size_key(key))
        if payload is None:
            return None
        return _size_estimate_from_payload(payload)

    def store(self, key: Hashable, value: SampleSizeEstimate) -> None:
        session = self._session
        tier = session.warm_cache
        if tier is not None:
            tier.put(SIZE_KIND, session._warm_size_key(key), _size_estimate_payload(value))
