"""Sample Size Estimator (Section 4).

Given only the *initial* model m_0 (trained on n0 rows), the estimator finds
the smallest sample size n such that a model trained on n rows would satisfy
the approximation contract — without training any additional model.

For a candidate n the probability ``Pr[v(m_n, m_N) ≤ ε]`` is estimated via
the two-stage sampling of Section 4.1 (θ_n | θ_0, then θ_N | θ_n) and the
conservative correction of Lemma 2.  Theorem 2 shows this probability is
increasing in n, which justifies the binary search of Section 4.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.config import DEFAULT_NUM_PARAMETER_SAMPLES
from repro.core.contract import ApproximationContract
from repro.core.guarantees import satisfies_probability_threshold
from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import ModelStatistics
from repro.data.dataset import Dataset
from repro.exceptions import SampleSizeError
from repro.models.base import ModelClassSpec


@dataclass(frozen=True)
class SampleSizeEstimate:
    """Outcome of the minimum-sample-size search.

    Attributes
    ----------
    sample_size:
        The estimated minimum n.
    feasible:
        False when even n = N did not certify the contract through the
        Monte-Carlo check (the coordinator then trains on the full data).
    n_probability_evaluations:
        How many candidate sizes the binary search probed.
    probed_sizes:
        The candidate n values actually Monte-Carlo-evaluated, in order
        (diagnostics).  With ``skip_lower_probe`` the lower endpoint ``n0``
        is never evaluated and therefore never appears here.
    estimation_seconds:
        Wall-clock cost of the search.
    """

    sample_size: int
    feasible: bool
    n_probability_evaluations: int
    probed_sizes: tuple[int, ...] = field(default_factory=tuple)
    estimation_seconds: float = 0.0


class SampleSizeEstimator:
    """Finds the smallest n satisfying the contract using only the initial model."""

    def __init__(
        self,
        spec: ModelClassSpec,
        holdout: Dataset,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
    ):
        if n_parameter_samples < 2:
            raise SampleSizeError("need at least two parameter samples")
        self._spec = spec
        self._holdout = holdout
        self._n_parameter_samples = n_parameter_samples

    # ------------------------------------------------------------------
    # Probability of contract satisfaction for one candidate n
    # ------------------------------------------------------------------
    def contract_satisfied(
        self,
        theta0: np.ndarray,
        n0: int,
        candidate_n: int,
        N: int,
        contract: ApproximationContract,
        sampler: ParameterSampler,
    ) -> bool:
        """Monte-Carlo check of ``Pr[v(m_n, m_N) ≤ ε] ≥ 1 − δ`` for one n."""
        theta_n_samples, theta_N_samples = sampler.two_stage_samples(
            theta0, n0=n0, n=candidate_n, N=N, count=self._n_parameter_samples
        )
        # Batched pairwise MCS diff: the k two-stage pairs (θ_n,i, θ_N,i)
        # are compared in one BLAS-level call per probe (specs without a
        # vectorised override fall back to the per-pair loop).
        differences = np.asarray(
            self._spec.pairwise_prediction_differences(
                theta_n_samples, theta_N_samples, self._holdout
            ),
            dtype=np.float64,
        )
        return satisfies_probability_threshold(differences, contract.epsilon, contract.delta)

    # ------------------------------------------------------------------
    # Binary search (Section 4.2)
    # ------------------------------------------------------------------
    def estimate(
        self,
        theta0: np.ndarray,
        n0: int,
        N: int,
        contract: ApproximationContract,
        statistics: ModelStatistics,
        sampler: ParameterSampler | None = None,
        skip_lower_probe: bool = False,
    ) -> SampleSizeEstimate:
        """Binary-search the smallest n in [n0, N] satisfying the contract.

        Parameters
        ----------
        theta0:
            Parameter vector of the initial model m_0.
        n0:
            Size of the initial sample D0.
        N:
            Full training-set size.
        contract:
            The (ε, δ) approximation contract.
        statistics:
            Factored statistics computed at θ_0.
        sampler:
            Optional shared sampler (base draws are cached inside it, so the
            whole search re-uses the same base normal draws — the
            sampling-by-scaling optimisation).
        skip_lower_probe:
            When true, ``n0`` is assumed to fail the contract and is not
            re-probed.  The coordinator sets this because it only reaches
            the search after the accuracy estimator has already rejected
            ``n0``, so the k-sample Monte-Carlo evaluation at the lower
            endpoint would be wasted.  ``probed_sizes`` then starts at the
            upper endpoint ``N`` and never contains ``n0``; if ``n0``
            actually satisfies the contract the search conservatively
            returns a size in ``(n0, N]`` instead of ``n0``.
        """
        if n0 <= 0 or N <= 0:
            raise SampleSizeError("sample sizes must be positive")
        if n0 > N:
            raise SampleSizeError(f"initial sample size {n0} exceeds N={N}")

        start = time.perf_counter()
        sampler = sampler or ParameterSampler(statistics)
        probed: list[int] = []

        def satisfied(candidate: int) -> bool:
            probed.append(candidate)
            return self.contract_satisfied(theta0, n0, candidate, N, contract, sampler)

        # Quick exits: if n0 already satisfies, the coordinator will have
        # caught it via the accuracy estimator, but the search still handles
        # it gracefully; if even N fails the Monte-Carlo check, fall back to
        # the full data.
        low, high = n0, N
        if not skip_lower_probe and satisfied(low):
            elapsed = time.perf_counter() - start
            return SampleSizeEstimate(
                sample_size=low,
                feasible=True,
                n_probability_evaluations=len(probed),
                probed_sizes=tuple(probed),
                estimation_seconds=elapsed,
            )
        if not satisfied(high):
            elapsed = time.perf_counter() - start
            return SampleSizeEstimate(
                sample_size=N,
                feasible=False,
                n_probability_evaluations=len(probed),
                probed_sizes=tuple(probed),
                estimation_seconds=elapsed,
            )

        # Invariant: low fails, high satisfies.  Theorem 2 (monotonicity)
        # makes the bisection valid.
        while high - low > 1:
            mid = (low + high) // 2
            if satisfied(mid):
                high = mid
            else:
                low = mid

        elapsed = time.perf_counter() - start
        return SampleSizeEstimate(
            sample_size=high,
            feasible=True,
            n_probability_evaluations=len(probed),
            probed_sizes=tuple(probed),
            estimation_seconds=elapsed,
        )
