"""Sample Size Estimator (Section 4).

Given only the *initial* model m_0 (trained on n0 rows), the estimator finds
the smallest sample size n such that a model trained on n rows would satisfy
the approximation contract — without training any additional model.

For a candidate n the probability ``Pr[v(m_n, m_N) ≤ ε]`` is estimated via
the two-stage sampling of Section 4.1 (θ_n | θ_0, then θ_N | θ_n) and the
conservative correction of Lemma 2.  Theorem 2 shows this probability is
increasing in n, which justifies the bracketing search of Section 4.2.

Two implementation-level optimisations sit on top of the paper's search:

* the per-candidate pairwise diffs run through the streaming sharded
  holdout engine (:mod:`repro.evaluation.streaming`), so memory stays
  O(k · block) regardless of holdout size;
* with ``probe_batch > 1`` each search round evaluates several candidate
  sizes in a *single stacked pass* — the two-stage draws of all candidates
  share the same cached base samples (sampling-by-scaling), so stacking
  them into one ``(batch · k)``-candidate diff evaluation amortises the
  per-pass overhead and cuts the number of passes from log₂ to
  log_{batch+1} of the search range;
* the per-round batch is **adaptive** (:func:`adaptive_probe_count`):
  ``probe_batch`` is a ceiling, and each round stacks only as many
  candidates as still pay for themselves given the current bracket width —
  a bracket the full batch would over-resolve gets a smaller stack with
  the *same* number of passes, so tiny brackets stop paying for
  Monte-Carlo evaluations that cannot narrow them further.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.config import DEFAULT_NUM_PARAMETER_SAMPLES
from repro.core.contract import ApproximationContract
from repro.core.guarantees import satisfies_probability_threshold
from repro.core.parameter_sampler import ParameterSampler
from repro.core.statistics import ModelStatistics
from repro.data.dataset import Dataset
from repro.evaluation.streaming import (
    StreamingConfig,
    streaming_fanout_pairwise_prediction_differences,
)
from repro.exceptions import SampleSizeError
from repro.models.base import ModelClassSpec
from repro.obs import get_metrics, maybe_span, obs_enabled

# Size-search round economics (repro.obs): every round is one streamed
# candidate pass, so rounds-by-mode plus the fused passes-saved counter
# reproduce the coalescing tier's exact pass accounting at scrape time.
# Ticked only when telemetry is enabled (obs_enabled()).
_SEARCH_ROUNDS = get_metrics().counter(
    "repro_size_search_rounds_total",
    "Size-search evaluation rounds executed (one streamed candidate pass "
    "each), by search mode.",
    ("mode",),
)
_SEARCHES_TOTAL = get_metrics().counter(
    "repro_size_search_searches_total",
    "Completed size searches, by search mode (fused counts each member "
    "contract).",
    ("mode",),
)
_PASSES_SAVED_TOTAL = get_metrics().counter(
    "repro_size_search_passes_saved_total",
    "Streamed passes fused lockstep searches avoided versus running the "
    "same contracts serially (exact accounting).",
)


@dataclass(frozen=True)
class SampleSizeEstimate:
    """Outcome of the minimum-sample-size search.

    Attributes
    ----------
    sample_size:
        The estimated minimum n.
    feasible:
        False when even n = N did not certify the contract through the
        Monte-Carlo check (the coordinator then trains on the full data).
    n_probability_evaluations:
        How many candidate sizes were Monte-Carlo-evaluated in total (with
        ``probe_batch > 1`` several of these happen per stacked pass).
    probed_sizes:
        The candidate n values actually Monte-Carlo-evaluated, in order
        (diagnostics).  With ``skip_lower_probe`` the lower endpoint ``n0``
        is never evaluated and therefore never appears here.
    estimation_seconds:
        Wall-clock cost of the search.
    """

    sample_size: int
    feasible: bool
    n_probability_evaluations: int
    probed_sizes: tuple[int, ...] = field(default_factory=tuple)
    estimation_seconds: float = 0.0


@dataclass(frozen=True)
class FusedSizeSearch:
    """Outcome of one fused multi-contract search (:meth:`SampleSizeEstimator.estimate_many`).

    Attributes
    ----------
    estimates:
        One :class:`SampleSizeEstimate` per input contract, in input order.
        Each is bitwise identical to what a lone :meth:`SampleSizeEstimator.estimate`
        call for that contract would return, except ``estimation_seconds``,
        which reports the *shared* fused wall-clock for every member.
    fused_passes:
        Evaluation rounds the fused search actually executed — each is one
        streamed holdout pass (for block-streaming model families) carrying
        the union of that round's candidates across all active searches.
    serial_passes:
        Evaluation rounds the same contracts would have cost executed
        serially (each search's own round count, summed).  Exact, not
        estimated: every member search follows the identical bracket
        trajectory fused or serial, so its serial round count is simply the
        number of fused rounds it contributed candidates to.
    """

    estimates: tuple[SampleSizeEstimate, ...]
    fused_passes: int
    serial_passes: int

    @property
    def passes_saved(self) -> int:
        """Streamed passes the fusion avoided versus serial execution."""
        return self.serial_passes - self.fused_passes


def adaptive_probe_count(span: int, probe_batch: int) -> int:
    """Candidates to stack this round for a bracket of width ``span``.

    ``probe_batch`` candidates narrow a bracket by a factor of
    ``probe_batch + 1`` per pass, so a bracket of width ``span`` resolves
    in ``r = ceil(log_{probe_batch+1}(span))`` passes.  The full batch is
    only worth stacking while the bracket is wide: once ``span`` is small,
    fewer candidates finish in the *same* ``r`` passes.  This returns the
    smallest per-round count ``b`` with ``(b + 1)^r >= span`` — never more
    passes than the fixed policy, never more stacked Monte-Carlo
    evaluations than the bracket can use (ROADMAP "adaptive probe
    batching").

    Edge cases are explicit rather than emergent from the cap arithmetic:
    a resolved bracket (``span <= 1``) needs no candidates at all; a
    width-2 bracket has exactly one interior point regardless of how large
    ``probe_batch`` is; a ``probe_batch`` of 1 is the classic bisection
    midpoint whatever the width.  ``probe_batch < 1`` is a caller bug and
    raises (the session/coordinator boundary validates it too).

    Examples with ``probe_batch=3``: a width-1024 bracket stacks 3 (5
    passes either way), a width-9 bracket stacks 2 instead of 3 (2 passes
    either way), a width-2 bracket stacks the single useful midpoint.
    """
    if probe_batch < 1:
        raise SampleSizeError(
            f"probe_batch must be at least 1, got {probe_batch}"
        )
    if span <= 1:
        # Bracket already resolved: nothing left to probe.
        return 0
    if span == 2 or probe_batch == 1:
        # A width-2 bracket has exactly one interior point; bisection
        # stacks exactly one midpoint however wide the bracket is.
        return 1
    cap = min(probe_batch, span - 1)
    rounds = 1
    while (cap + 1) ** rounds < span:
        rounds += 1
    count = 1
    while (count + 1) ** rounds < span:
        count += 1
    return min(count, cap)


def _bracket_candidates(low: int, high: int, count: int) -> list[int]:
    """The ``count`` evenly spaced interior candidates of ``(low, high)``.

    Shared by the serial search and the fused lockstep search so both
    schedule byte-identical probe sequences — the foundation of the exact
    ``passes_saved`` accounting.
    """
    span = high - low
    return sorted({low + (span * (j + 1)) // (count + 1) for j in range(count)})


class SampleSizeEstimator:
    """Finds the smallest n satisfying the contract using only the initial model.

    ``streaming`` configures the sharded holdout evaluation of the pairwise
    diffs (``None`` uses the module default).
    """

    def __init__(
        self,
        spec: ModelClassSpec,
        holdout: Dataset,
        n_parameter_samples: int = DEFAULT_NUM_PARAMETER_SAMPLES,
        streaming: StreamingConfig | None = None,
    ):
        if n_parameter_samples < 2:
            raise SampleSizeError("need at least two parameter samples")
        self._spec = spec
        self._holdout = holdout
        self._n_parameter_samples = n_parameter_samples
        self._streaming = streaming

    # ------------------------------------------------------------------
    # Probability of contract satisfaction for candidate sizes
    # ------------------------------------------------------------------
    def contract_satisfied(
        self,
        theta0: np.ndarray,
        n0: int,
        candidate_n: int,
        N: int,
        contract: ApproximationContract,
        sampler: ParameterSampler,
    ) -> bool:
        """Monte-Carlo check of ``Pr[v(m_n, m_N) ≤ ε] ≥ 1 − δ`` for one n."""
        return self.contract_satisfied_batch(
            theta0, n0, (candidate_n,), N, contract, sampler
        )[0]

    def candidate_differences_batch(
        self,
        theta0: np.ndarray,
        n0: int,
        candidate_ns: Sequence[int],
        N: int,
        sampler: ParameterSampler,
    ) -> list[np.ndarray]:
        """Sampled diff vectors for several candidate sizes, one streamed pass.

        The two-stage draws (Section 4.1) for every candidate reuse the same
        cached base samples, so the only per-candidate cost is the rescale;
        each candidate's k parameter pairs then form one *segment* of a
        single fan-out streamed evaluation
        (:func:`~repro.evaluation.streaming.streaming_fanout_pairwise_prediction_differences`).
        Per-candidate segmentation — rather than stacking all candidates
        into one wide GEMM — is what makes results demultiplex bitwise
        identically: every segment runs the same per-block GEMM shapes, in
        the same block order, that a lone single-candidate evaluation would,
        so the vector a candidate gets is independent of which (or whose)
        other candidates shared the pass.  This is the contract the
        request-coalescing tier (:mod:`repro.serving`) is built on.
        """
        if not candidate_ns:
            return []
        segments = [
            sampler.two_stage_samples(
                theta0, n0=n0, n=int(candidate), N=N, count=self._n_parameter_samples
            )
            for candidate in candidate_ns
        ]
        return streaming_fanout_pairwise_prediction_differences(
            self._spec, segments, self._holdout, config=self._streaming
        )

    def contract_satisfied_batch(
        self,
        theta0: np.ndarray,
        n0: int,
        candidate_ns: Sequence[int],
        N: int,
        contract: ApproximationContract,
        sampler: ParameterSampler,
    ) -> list[bool]:
        """Monte-Carlo check of several candidate sizes in one streamed pass.

        A thin threshold layer over :meth:`candidate_differences_batch`
        (the ROADMAP "batched two-stage probes"): evaluate every candidate's
        segment in one fan-out pass, then apply the contract's Lemma 2
        threshold per candidate.
        """
        if not candidate_ns:
            return []
        differences = self.candidate_differences_batch(
            theta0, n0, candidate_ns, N, sampler
        )
        return [
            satisfies_probability_threshold(
                vector, contract.epsilon, contract.delta
            )
            for vector in differences
        ]

    # ------------------------------------------------------------------
    # Bracketing search (Section 4.2, batched probes)
    # ------------------------------------------------------------------
    def estimate(
        self,
        theta0: np.ndarray,
        n0: int,
        N: int,
        contract: ApproximationContract,
        statistics: ModelStatistics,
        sampler: ParameterSampler | None = None,
        skip_lower_probe: bool = False,
        probe_batch: int = 1,
    ) -> SampleSizeEstimate:
        """Search the smallest n in [n0, N] satisfying the contract.

        Parameters
        ----------
        theta0:
            Parameter vector of the initial model m_0.
        n0:
            Size of the initial sample D0.
        N:
            Full training-set size.
        contract:
            The (ε, δ) approximation contract.
        statistics:
            Factored statistics computed at θ_0.
        sampler:
            Optional shared sampler (base draws are cached inside it, so the
            whole search re-uses the same base normal draws — the
            sampling-by-scaling optimisation).
        skip_lower_probe:
            When true, ``n0`` is assumed to fail the contract and is not
            re-probed.  The coordinator sets this because it only reaches
            the search after the accuracy estimator has already rejected
            ``n0``, so the k-sample Monte-Carlo evaluation at the lower
            endpoint would be wasted.  ``probed_sizes`` then starts at the
            upper endpoint ``N`` and never contains ``n0``; if ``n0``
            actually satisfies the contract the search conservatively
            returns a size in ``(n0, N]`` instead of ``n0``.
        probe_batch:
            Ceiling on candidate sizes evaluated per stacked Monte-Carlo
            pass.  1 is the classic bisection (one midpoint per round);
            larger values place up to that many evenly spaced candidates
            inside the bracket and evaluate them in one pass, narrowing
            the bracket by a factor of ``batch + 1`` per round under the
            Theorem 2 monotonicity.  The per-round count adapts to the
            bracket width (:func:`adaptive_probe_count`): narrow brackets
            stack fewer candidates without taking extra passes.
        """
        if n0 <= 0 or N <= 0:
            raise SampleSizeError("sample sizes must be positive")
        if n0 > N:
            raise SampleSizeError(f"initial sample size {n0} exceeds N={N}")
        if probe_batch < 1:
            raise SampleSizeError("probe_batch must be at least 1")
        sampler = sampler or ParameterSampler(statistics)
        if not obs_enabled():
            return self._estimate_impl(
                theta0, n0, N, contract, sampler, skip_lower_probe, probe_batch
            )
        with maybe_span(
            "size_search.estimate",
            epsilon=contract.epsilon,
            delta=contract.delta,
            n0=n0,
            N=N,
        ) as span:
            estimate = self._estimate_impl(
                theta0, n0, N, contract, sampler, skip_lower_probe, probe_batch
            )
            if span is not None:
                span.set_attribute("sample_size", estimate.sample_size)
                span.set_attribute("feasible", estimate.feasible)
        _SEARCHES_TOTAL.inc(1, mode="serial")
        return estimate

    def _estimate_impl(
        self,
        theta0: np.ndarray,
        n0: int,
        N: int,
        contract: ApproximationContract,
        sampler: ParameterSampler,
        skip_lower_probe: bool,
        probe_batch: int,
    ) -> SampleSizeEstimate:
        start = time.perf_counter()
        telemetry = obs_enabled()
        probed: list[int] = []

        def satisfied(candidate: int) -> bool:
            if telemetry:
                _SEARCH_ROUNDS.inc(1, mode="serial")
            probed.append(candidate)
            return self.contract_satisfied(theta0, n0, candidate, N, contract, sampler)

        def finish(sample_size: int, feasible: bool) -> SampleSizeEstimate:
            return SampleSizeEstimate(
                sample_size=sample_size,
                feasible=feasible,
                n_probability_evaluations=len(probed),
                probed_sizes=tuple(probed),
                estimation_seconds=time.perf_counter() - start,
            )

        # Quick exits: if n0 already satisfies, the coordinator will have
        # caught it via the accuracy estimator, but the search still handles
        # it gracefully; if even N fails the Monte-Carlo check, fall back to
        # the full data.
        low, high = n0, N
        if not skip_lower_probe and satisfied(low):
            return finish(low, True)
        if not satisfied(high):
            return finish(N, False)

        # Invariant: low fails, high satisfies.  Theorem 2 (monotonicity)
        # makes the bracket narrowing valid; with probe_batch == 1 the loop
        # is exactly the paper's bisection.
        while high - low > 1:
            count = adaptive_probe_count(high - low, probe_batch)
            candidates = _bracket_candidates(low, high, count)
            probed.extend(candidates)
            if telemetry:
                _SEARCH_ROUNDS.inc(1, mode="serial")
            outcomes = self.contract_satisfied_batch(
                theta0, n0, candidates, N, contract, sampler
            )
            first_true = next(
                (i for i, outcome in enumerate(outcomes) if outcome), None
            )
            if first_true is None:
                low = candidates[-1]
            else:
                high = candidates[first_true]
                if first_true > 0:
                    low = candidates[first_true - 1]

        return finish(high, True)

    # ------------------------------------------------------------------
    # Fused multi-contract search (request coalescing)
    # ------------------------------------------------------------------
    def estimate_many(
        self,
        theta0: np.ndarray,
        n0: int,
        N: int,
        contracts: Sequence[ApproximationContract],
        statistics: ModelStatistics,
        sampler: ParameterSampler | None = None,
        skip_lower_probe: bool = False,
        probe_batch: int = 1,
    ) -> FusedSizeSearch:
        """Run several contracts' searches in lockstep, sharing each round's pass.

        The cross-caller generalisation of ``probe_batch``: where the serial
        search stacks one *caller's* candidates into a round, this stacks
        one *round's* candidates across every active search.  Each member
        search follows exactly the bracket trajectory it would follow alone
        — same endpoint probes, same :func:`adaptive_probe_count` schedule,
        same narrowing decisions — but all searches still active at a given
        round contribute their candidates to one deduplicated union, which
        is evaluated as a single fan-out streamed pass
        (:meth:`candidate_differences_batch`).  Per-candidate segmentation
        makes the demultiplexed outcomes bitwise identical to serial runs,
        so the member estimates (sample size, feasibility, probe schedule)
        are exactly what ``estimate()`` would have produced, while the pass
        count drops from the sum of the members' round counts to the
        maximum of them.

        Duplicated (ε, δ) contracts in the input are legal and cost nothing
        extra (their candidates always coincide, so the union absorbs
        them); callers that want duplicate *results* shared should dedupe a
        level up (the session's size cache does).  Returns a
        :class:`FusedSizeSearch` with the per-contract estimates in input
        order plus the exact fused/serial pass accounting.
        """
        if n0 <= 0 or N <= 0:
            raise SampleSizeError("sample sizes must be positive")
        if n0 > N:
            raise SampleSizeError(f"initial sample size {n0} exceeds N={N}")
        if probe_batch < 1:
            raise SampleSizeError(
                f"probe_batch must be at least 1, got {probe_batch}"
            )
        contracts = list(contracts)
        if not contracts:
            return FusedSizeSearch(estimates=(), fused_passes=0, serial_passes=0)
        sampler = sampler or ParameterSampler(statistics)
        if not obs_enabled():
            return self._estimate_many_impl(
                theta0, n0, N, contracts, sampler, skip_lower_probe, probe_batch
            )
        with maybe_span(
            "size_search.estimate_many",
            contracts=len(contracts),
            n0=n0,
            N=N,
        ) as span:
            outcome = self._estimate_many_impl(
                theta0, n0, N, contracts, sampler, skip_lower_probe, probe_batch
            )
            if span is not None:
                span.set_attribute("fused_passes", outcome.fused_passes)
                span.set_attribute("serial_passes", outcome.serial_passes)
        _SEARCHES_TOTAL.inc(len(contracts), mode="fused")
        _PASSES_SAVED_TOTAL.inc(outcome.passes_saved)
        return outcome

    def _estimate_many_impl(
        self,
        theta0: np.ndarray,
        n0: int,
        N: int,
        contracts: list[ApproximationContract],
        sampler: ParameterSampler,
        skip_lower_probe: bool,
        probe_batch: int,
    ) -> FusedSizeSearch:
        start = time.perf_counter()
        telemetry = obs_enabled()
        searches = [_LockstepSearch(contract) for contract in contracts]
        fused_passes = 0
        serial_passes = 0

        def evaluate(
            active: list[tuple["_LockstepSearch", list[int]]],
        ) -> list[list[bool]]:
            """One fused round: union pass, per-search demultiplexed outcomes."""
            nonlocal fused_passes, serial_passes
            fused_passes += 1
            serial_passes += len(active)
            if telemetry:
                _SEARCH_ROUNDS.inc(1, mode="fused")
            for search, candidates in active:
                search.probed.extend(candidates)
            if len(active) == 1:
                # A lone search takes the exact serial path (including the
                # overridable contract_satisfied_batch hook tests rely on).
                search, candidates = active[0]
                return [
                    self.contract_satisfied_batch(
                        theta0, n0, candidates, N, search.contract, sampler
                    )
                ]
            union = sorted({c for _, candidates in active for c in candidates})
            differences = self.candidate_differences_batch(
                theta0, n0, union, N, sampler
            )
            index = {candidate: i for i, candidate in enumerate(union)}
            return [
                [
                    satisfies_probability_threshold(
                        differences[index[candidate]],
                        search.contract.epsilon,
                        search.contract.delta,
                    )
                    for candidate in candidates
                ]
                for search, candidates in active
            ]

        # Round 0a (optional): every search probes the lower endpoint n0.
        if not skip_lower_probe:
            active = [(search, [n0]) for search in searches]
            for (search, _), outcomes in zip(active, evaluate(active)):
                if outcomes[0]:
                    search.finish(n0, True)

        # Round 0b: remaining searches probe the upper endpoint N; a search
        # the full data cannot certify falls back to N, infeasible.
        pending = [search for search in searches if not search.done]
        if pending:
            active = [(search, [N]) for search in pending]
            for (search, _), outcomes in zip(active, evaluate(active)):
                if not outcomes[0]:
                    search.finish(N, False)
                else:
                    search.low, search.high = n0, N

        # Bracket rounds in lockstep: searches drop out as their brackets
        # resolve; the survivors keep sharing one union pass per round.
        while True:
            active = []
            for search in searches:
                if search.done:
                    continue
                if search.high - search.low <= 1:
                    search.finish(search.high, True)
                    continue
                count = adaptive_probe_count(search.high - search.low, probe_batch)
                active.append(
                    (search, _bracket_candidates(search.low, search.high, count))
                )
            if not active:
                break
            for (search, candidates), outcomes in zip(active, evaluate(active)):
                first_true = next(
                    (i for i, outcome in enumerate(outcomes) if outcome), None
                )
                if first_true is None:
                    search.low = candidates[-1]
                else:
                    search.high = candidates[first_true]
                    if first_true > 0:
                        search.low = candidates[first_true - 1]

        elapsed = time.perf_counter() - start
        return FusedSizeSearch(
            estimates=tuple(search.estimate(elapsed) for search in searches),
            fused_passes=fused_passes,
            serial_passes=serial_passes,
        )


class _LockstepSearch:
    """Mutable per-contract state threaded through one fused search."""

    __slots__ = ("contract", "probed", "low", "high", "done", "sample_size", "feasible")

    def __init__(self, contract: ApproximationContract) -> None:
        self.contract = contract
        self.probed: list[int] = []
        self.low = 0
        self.high = 0
        self.done = False
        self.sample_size = 0
        self.feasible = True

    def finish(self, sample_size: int, feasible: bool) -> None:
        self.done = True
        self.sample_size = int(sample_size)
        self.feasible = feasible

    def estimate(self, elapsed: float) -> SampleSizeEstimate:
        return SampleSizeEstimate(
            sample_size=self.sample_size,
            feasible=self.feasible,
            n_probability_evaluations=len(self.probed),
            probed_sizes=tuple(self.probed),
            estimation_seconds=elapsed,
        )
