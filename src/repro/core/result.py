"""Result records returned by the BlinkML coordinator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.contract import ApproximationContract
from repro.models.base import TrainedModel


@dataclass
class TimingBreakdown:
    """Wall-clock breakdown matching the Figure 8a decomposition.

    The four phases of the coordinator workflow: training the initial model,
    computing the H/J statistics, searching for the minimum sample size, and
    training the final model (zero when the initial model already satisfied
    the contract).
    """

    initial_training_seconds: float = 0.0
    statistics_seconds: float = 0.0
    sample_size_search_seconds: float = 0.0
    final_training_seconds: float = 0.0
    accuracy_estimation_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.initial_training_seconds
            + self.statistics_seconds
            + self.sample_size_search_seconds
            + self.final_training_seconds
            + self.accuracy_estimation_seconds
        )

    def as_dict(self) -> dict:
        return {
            "initial_training_seconds": self.initial_training_seconds,
            "statistics_seconds": self.statistics_seconds,
            "sample_size_search_seconds": self.sample_size_search_seconds,
            "final_training_seconds": self.final_training_seconds,
            "accuracy_estimation_seconds": self.accuracy_estimation_seconds,
            "total_seconds": self.total_seconds,
        }


@dataclass
class ApproximateTrainingResult:
    """Everything BlinkML returns for one approximate-training request.

    Attributes
    ----------
    model:
        The approximate model m_n handed back to the user.
    contract:
        The approximation contract that was requested.
    estimated_epsilon:
        The conservative bound on the model difference v(m_n) (so the
        estimated accuracy is ``1 − estimated_epsilon``).
    sample_size:
        The sample size n the returned model was trained on.
    initial_sample_size:
        The size n0 of the initial sample D0.
    full_size:
        The full training-set size N.
    used_initial_model:
        True when the initial model already satisfied the contract and no
        second model was trained (the Section 5.3 discussion of identical
        actual accuracies across different requests).
    estimated_minimum_sample_size:
        The n produced by the Sample Size Estimator (equal to
        ``sample_size`` unless the initial model was returned directly).
    timings:
        Wall-clock breakdown of the coordinator phases.
    """

    model: TrainedModel
    contract: ApproximationContract
    estimated_epsilon: float
    sample_size: int
    initial_sample_size: int
    full_size: int
    used_initial_model: bool
    estimated_minimum_sample_size: int
    timings: TimingBreakdown = field(default_factory=TimingBreakdown)
    metadata: dict = field(default_factory=dict)

    @property
    def estimated_accuracy(self) -> float:
        return 1.0 - self.estimated_epsilon

    @property
    def sample_fraction(self) -> float:
        """Fraction of the full training set the final model consumed."""
        return self.sample_size / self.full_size if self.full_size else 1.0

    def summary(self) -> str:
        """One-line description used by the examples."""
        return (
            f"model {self.model.spec.name} trained on {self.sample_size}/{self.full_size} rows "
            f"({100 * self.sample_fraction:.2f}%), estimated accuracy "
            f"{100 * self.estimated_accuracy:.2f}% "
            f"(requested {100 * self.contract.requested_accuracy:.2f}% "
            f"at confidence {100 * self.contract.confidence:.0f}%)"
        )
