"""The approximation contract: the (ε, δ) request a user hands to BlinkML.

Section 2.1: "BlinkML needs one extra input: an approximation contract that
consists of an error bound ε and a confidence level δ.  Then, BlinkML
returns an approximate model m_n such that the prediction difference between
m_n and m_N is within ε with probability at least 1 − δ."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_DELTA
from repro.exceptions import ContractError


@dataclass(frozen=True)
class ApproximationContract:
    """Error bound ε and violation probability δ.

    Attributes
    ----------
    epsilon:
        Maximum tolerated prediction difference ``v(m_n)`` between the
        approximate and full models.  Must lie in (0, 1).
    delta:
        Probability with which the bound may be violated.  Must lie in
        (0, 1); the paper's experiments use 0.05.
    """

    epsilon: float
    delta: float = DEFAULT_DELTA

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ContractError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ContractError(f"delta must lie in (0, 1), got {self.delta}")

    @classmethod
    def from_accuracy(cls, accuracy: float, delta: float = DEFAULT_DELTA) -> ApproximationContract:
        """Build a contract from a requested accuracy ``(1 − ε) × 100 %``.

        The paper's figures are parameterised by requested accuracy (80 %,
        95 %, 99 %, ...); this helper converts that into the ε the estimators
        work with.
        """
        if not 0.0 < accuracy < 1.0:
            raise ContractError(
                f"requested accuracy must lie in (0, 1) exclusive, got {accuracy}"
            )
        return cls(epsilon=1.0 - accuracy, delta=delta)

    @property
    def requested_accuracy(self) -> float:
        """The accuracy ``1 − ε`` this contract corresponds to."""
        return 1.0 - self.epsilon

    @property
    def confidence(self) -> float:
        """The confidence level ``1 − δ``."""
        return 1.0 - self.delta

    def describe(self) -> dict:
        return {
            "epsilon": self.epsilon,
            "delta": self.delta,
            "requested_accuracy": self.requested_accuracy,
        }
