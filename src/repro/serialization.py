"""Saving and loading trained models and training results.

A model trained under an approximation contract is only useful if it can be
persisted together with the contract it was trained under and the sample
size it consumed — otherwise a downstream consumer cannot tell an exact
model from an approximate one.  This module stores exactly that:

* the model class name and its constructor arguments (from ``describe()``),
* the flattened parameter vector,
* the contract, sample sizes and estimated accuracy when a full
  :class:`~repro.core.result.ApproximateTrainingResult` is saved.

The format is a single ``.npz`` file (NumPy archive) holding the parameter
vector plus a JSON-encoded metadata blob, so no extra dependencies are
needed and the file stays portable.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.contract import ApproximationContract
from repro.core.result import ApproximateTrainingResult
from repro.exceptions import BlinkMLError
from repro.models.base import TrainedModel
from repro.models.registry import get_model_spec

_FORMAT_VERSION = 1

#: constructor arguments worth round-tripping, per model class name.
_SPEC_KWARG_KEYS = {
    "lin": ("regularization", "noise_variance", "normalize_difference"),
    "lr": ("regularization",),
    "me": ("regularization", "n_classes"),
    "poisson": ("regularization", "normalize_difference"),
    "ppca": ("regularization", "n_factors", "sigma2"),
}


def _spec_metadata(model: TrainedModel) -> dict:
    description = model.spec.describe()
    name = description["model"]
    if name not in _SPEC_KWARG_KEYS:
        raise BlinkMLError(
            f"model class {name!r} is not registered for serialisation"
        )
    kwargs = {key: description[key] for key in _SPEC_KWARG_KEYS[name] if key in description}
    return {"model": name, "kwargs": kwargs}


def save_model(path: str | Path, model: TrainedModel, extra_metadata: dict | None = None) -> Path:
    """Persist a trained model to ``path`` (``.npz``)."""
    path = Path(path)
    metadata = {
        "format_version": _FORMAT_VERSION,
        "spec": _spec_metadata(model),
        "n_train": model.n_train,
        "extra": extra_metadata or {},
    }
    np.savez(path, theta=model.theta, metadata=json.dumps(metadata))
    # np.savez appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(path: str | Path) -> TrainedModel:
    """Load a model previously written by :func:`save_model` or :func:`save_result`."""
    path = Path(path)
    if not path.exists() and path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise BlinkMLError(f"model file not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        theta = np.asarray(archive["theta"], dtype=np.float64)
        metadata = json.loads(str(archive["metadata"]))
    if metadata.get("format_version") != _FORMAT_VERSION:
        raise BlinkMLError(
            f"unsupported model file version: {metadata.get('format_version')!r}"
        )
    spec_info = metadata["spec"]
    spec = get_model_spec(spec_info["model"], **spec_info["kwargs"])
    return TrainedModel(
        spec=spec,
        theta=theta,
        n_train=int(metadata["n_train"]),
        metadata=metadata.get("extra", {}),
    )


def save_result(path: str | Path, result: ApproximateTrainingResult) -> Path:
    """Persist an approximate-training result (model + contract + provenance)."""
    extra = {
        "contract": {"epsilon": result.contract.epsilon, "delta": result.contract.delta},
        "estimated_epsilon": result.estimated_epsilon,
        "sample_size": result.sample_size,
        "initial_sample_size": result.initial_sample_size,
        "full_size": result.full_size,
        "used_initial_model": result.used_initial_model,
        "timings": result.timings.as_dict(),
    }
    return save_model(path, result.model, extra_metadata=extra)


def load_result_metadata(path: str | Path) -> tuple[TrainedModel, ApproximationContract, dict]:
    """Load a saved result: the model, its contract and the provenance record."""
    model = load_model(path)
    provenance = dict(model.metadata)
    contract_info = provenance.get("contract")
    if contract_info is None:
        raise BlinkMLError("file does not contain an approximate-training result")
    contract = ApproximationContract(
        epsilon=float(contract_info["epsilon"]), delta=float(contract_info["delta"])
    )
    return model, contract, provenance
