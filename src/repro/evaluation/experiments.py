"""Reusable experiment runners shared by the benchmark modules.

Each runner corresponds to a *shape* of experiment the paper repeats across
several figures:

* :func:`run_accuracy_sweep` — the Figure 5 / Figure 6 shape: sweep the
  requested accuracy, train a BlinkML model per level, compare against the
  full model (training time, sample size, actual agreement);
* :func:`run_baseline_comparison` — the Figure 7 shape: same workload, but
  each sample-size policy (FixedRatio, RelativeRatio, IncEstimator,
  BlinkML) trains a model and is scored against the full model;
* :func:`measure_full_training` — trains the exact model once and reports
  its wall-clock cost, reused as the denominator of every speed-up.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.baselines.base import SampleSizeBaseline
from repro.config import DEFAULT_DELTA
from repro.core.contract import ApproximationContract
from repro.core.coordinator import BlinkML
from repro.data.splits import DataSplits
from repro.evaluation.metrics import model_agreement
from repro.models.base import ModelClassSpec, TrainedModel


@dataclass
class SweepRecord:
    """One row of an accuracy-sweep experiment (Figure 5 / 6 / Table 4 / 5)."""

    requested_accuracy: float
    actual_accuracy: float
    estimated_accuracy: float
    training_seconds: float
    full_training_seconds: float
    sample_size: int
    full_size: int
    used_initial_model: bool
    extras: dict = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.training_seconds <= 0:
            return float("inf")
        return self.full_training_seconds / self.training_seconds

    @property
    def time_saving(self) -> float:
        """Fraction of full-training time saved (the right axis of Figure 5)."""
        if self.full_training_seconds <= 0:
            return 0.0
        return 1.0 - self.training_seconds / self.full_training_seconds

    @property
    def sample_fraction(self) -> float:
        return self.sample_size / self.full_size if self.full_size else 1.0

    def as_dict(self) -> dict:
        return {
            "requested_accuracy": self.requested_accuracy,
            "actual_accuracy": self.actual_accuracy,
            "estimated_accuracy": self.estimated_accuracy,
            "training_seconds": self.training_seconds,
            "full_training_seconds": self.full_training_seconds,
            "speedup": self.speedup,
            "time_saving": self.time_saving,
            "sample_size": self.sample_size,
            "sample_fraction": self.sample_fraction,
            "used_initial_model": self.used_initial_model,
            **self.extras,
        }


def measure_full_training(spec: ModelClassSpec, splits: DataSplits) -> tuple[TrainedModel, float]:
    """Train the exact full model and return it with its wall-clock cost."""
    start = time.perf_counter()
    model = spec.fit(splits.train)
    elapsed = time.perf_counter() - start
    return model, elapsed


def run_accuracy_sweep(
    spec_factory: Callable[[], ModelClassSpec],
    splits: DataSplits,
    requested_accuracies: Sequence[float],
    delta: float = DEFAULT_DELTA,
    repetitions: int = 1,
    initial_sample_size: int = 2_000,
    n_parameter_samples: int = 64,
    seed: int = 0,
    full_model: TrainedModel | None = None,
    full_training_seconds: float | None = None,
) -> list[SweepRecord]:
    """Sweep requested accuracies and record BlinkML vs. full-model behaviour.

    A fresh spec is created per repetition (so stateful specs such as
    MaxEntropy re-infer their class count cleanly) and the full model is
    trained once and shared across the sweep, as it would be in practice.
    """
    if full_model is None or full_training_seconds is None:
        full_model, full_training_seconds = measure_full_training(spec_factory(), splits)

    records: list[SweepRecord] = []
    for accuracy in requested_accuracies:
        for repetition in range(repetitions):
            spec = spec_factory()
            coordinator = BlinkML(
                spec,
                initial_sample_size=initial_sample_size,
                n_parameter_samples=n_parameter_samples,
                seed=seed + repetition,
            )
            contract = ApproximationContract.from_accuracy(accuracy, delta=delta)
            start = time.perf_counter()
            outcome = coordinator.train(splits.train, splits.holdout, contract)
            elapsed = time.perf_counter() - start
            agreement = model_agreement(
                spec, outcome.model.theta, full_model.theta, splits.holdout
            )
            records.append(
                SweepRecord(
                    requested_accuracy=accuracy,
                    actual_accuracy=agreement,
                    estimated_accuracy=outcome.estimated_accuracy,
                    training_seconds=elapsed,
                    full_training_seconds=full_training_seconds,
                    sample_size=outcome.sample_size,
                    full_size=outcome.full_size,
                    used_initial_model=outcome.used_initial_model,
                    extras={
                        "repetition": repetition,
                        "timings": outcome.timings.as_dict(),
                    },
                )
            )
    return records


def run_baseline_comparison(
    baselines: Sequence[SampleSizeBaseline],
    splits: DataSplits,
    requested_accuracies: Sequence[float],
    full_model: TrainedModel,
    delta: float = DEFAULT_DELTA,
) -> list[dict]:
    """Run every baseline policy at every requested accuracy (Figure 7 shape)."""
    rows: list[dict] = []
    for accuracy in requested_accuracies:
        contract = ApproximationContract.from_accuracy(accuracy, delta=delta)
        for baseline in baselines:
            outcome = baseline.run(splits.train, splits.holdout, contract)
            agreement = model_agreement(
                baseline.spec, outcome.model.theta, full_model.theta, splits.holdout
            )
            rows.append(
                {
                    "policy": outcome.policy,
                    "requested_accuracy": accuracy,
                    "actual_accuracy": agreement,
                    "sample_size": outcome.sample_size,
                    "training_seconds": outcome.training_seconds,
                    "n_models_trained": outcome.n_models_trained,
                }
            )
    return rows
