"""Streaming sharded holdout evaluation.

The PR 1 batched diff engine evaluates all k candidate parameters against
the holdout in one GEMM but materialises the full ``(k, n_holdout)``
prediction block, which caps holdout size well below the million-user
target.  This module is the driver half of the streaming replacement:

* the holdout is sharded into contiguous row blocks (zero-copy views);
* each block is fed to a :class:`~repro.models.base.DiffAccumulator`
  obtained from the model spec, which folds the block into per-candidate
  disagreement counts / squared-error sums;
* memory therefore stays O(k · block) no matter how large the holdout is;
* optionally, contiguous block ranges fan out across a thread pool (NumPy
  releases the GIL inside the per-block GEMMs) and the per-worker partials
  are merged in holdout order.

Layering (see ``docs/architecture.md``): the estimation session and the
accuracy / sample-size estimators call the two ``streaming_*`` functions
below; the functions drive the spec's accumulators; only the model families
know how to decompose their metric over blocks.
"""

from __future__ import annotations

from collections.abc import Iterator
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.config import DEFAULT_HOLDOUT_BLOCK_ROWS, DEFAULT_STREAMING_WORKERS
from repro.data.dataset import Dataset
from repro.exceptions import DataError
from repro.models.base import DiffAccumulator, ModelClassSpec


@dataclass(frozen=True)
class StreamingConfig:
    """How the holdout is sharded.

    Parameters
    ----------
    block_rows:
        Rows per holdout block; peak memory of a streamed diff is
        O(k · block_rows).
    n_workers:
        0 or 1 processes blocks serially on the calling thread; larger
        values split the block sequence into that many contiguous ranges
        and run them on a thread pool, merging partials in holdout order.
    """

    block_rows: int = DEFAULT_HOLDOUT_BLOCK_ROWS
    n_workers: int = DEFAULT_STREAMING_WORKERS

    def __post_init__(self) -> None:
        if self.block_rows < 1:
            raise DataError("block_rows must be at least 1")
        if self.n_workers < 0:
            raise DataError("n_workers must be non-negative")


#: module default used whenever a caller passes ``config=None``.
DEFAULT_STREAMING_CONFIG = StreamingConfig()


def _block_view(dataset: Dataset, start: int, stop: int) -> Dataset:
    """A zero-copy row-slice view of ``dataset`` (contiguous slices only).

    The X/y buffers are views; metadata is propagated like every other
    Dataset transformation so metadata-aware custom accumulators see the
    same context on the streaming path as on the materialised one.
    """
    y = None if dataset.y is None else dataset.y[start:stop]
    return Dataset(
        dataset.X[start:stop], y, name=dataset.name, metadata=dict(dataset.metadata)
    )


def iter_holdout_blocks(dataset: Dataset, block_rows: int) -> Iterator[Dataset]:
    """Yield the holdout as contiguous zero-copy blocks of ``block_rows`` rows."""
    if block_rows < 1:
        raise DataError("block_rows must be at least 1")
    for start in range(0, dataset.n_rows, block_rows):
        yield _block_view(dataset, start, min(start + block_rows, dataset.n_rows))


def _drive(
    make_accumulator,
    dataset: Dataset,
    config: StreamingConfig,
) -> np.ndarray:
    """Run one accumulator (or one per worker) over the sharded holdout."""
    first = make_accumulator()
    if not first.needs_holdout_blocks:
        # Parameter-space metrics (PPCA) and the generic materialised
        # fallback: nothing to shard.
        return first.finalize()

    starts = list(range(0, dataset.n_rows, config.block_rows))
    if config.n_workers <= 1 or len(starts) <= 1:
        for block in iter_holdout_blocks(dataset, config.block_rows):
            first.update(block)
        return first.finalize()

    # Contiguous block ranges per worker so merge order equals holdout order.
    # Each range is itself a contiguous row-slice view, so the workers share
    # the single block-iteration implementation.
    n_workers = min(config.n_workers, len(starts))
    ranges = np.array_split(np.asarray(starts), n_workers)

    def run_range(accumulator: DiffAccumulator, range_starts: np.ndarray) -> DiffAccumulator:
        first_row = int(range_starts[0])
        stop_row = min(int(range_starts[-1]) + config.block_rows, dataset.n_rows)
        for block in iter_holdout_blocks(
            _block_view(dataset, first_row, stop_row), config.block_rows
        ):
            accumulator.update(block)
        return accumulator

    accumulators = [first] + [make_accumulator() for _ in range(n_workers - 1)]
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        done = list(pool.map(run_range, accumulators, ranges))
    for partial in done[1:]:
        done[0].merge(partial)
    return done[0].finalize()


def streaming_prediction_differences(
    spec: ModelClassSpec,
    theta_ref: np.ndarray,
    Thetas: np.ndarray,
    dataset: Dataset,
    config: StreamingConfig | None = None,
) -> np.ndarray:
    """Sharded equivalent of :meth:`ModelClassSpec.prediction_differences`.

    Agrees with the materialised batched path to floating-point accuracy
    (bitwise for the classification families, whose block statistics are
    integer counts) while keeping memory at O(k · block_rows).
    """
    config = config or DEFAULT_STREAMING_CONFIG
    return _drive(
        lambda: spec.diff_accumulator(theta_ref, Thetas, dataset), dataset, config
    )


def streaming_pairwise_prediction_differences(
    spec: ModelClassSpec,
    Thetas_a: np.ndarray,
    Thetas_b: np.ndarray,
    dataset: Dataset,
    config: StreamingConfig | None = None,
) -> np.ndarray:
    """Sharded equivalent of :meth:`ModelClassSpec.pairwise_prediction_differences`."""
    config = config or DEFAULT_STREAMING_CONFIG
    return _drive(
        lambda: spec.pairwise_diff_accumulator(Thetas_a, Thetas_b, dataset),
        dataset,
        config,
    )
